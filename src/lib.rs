//! # segment-indexes
//!
//! Umbrella crate for the [Segment Indexes](https://dl.acm.org/doi/10.1145/115790.115806)
//! workspace — a production-quality Rust implementation of Kolovson &
//! Stonebraker's dynamic indexing techniques for multi-dimensional interval
//! data (SIGMOD 1991), including a full reproduction of the paper's
//! evaluation.
//!
//! ```
//! use segment_indexes::core::{IntervalIndex, SRTree, RecordId};
//! use segment_indexes::geom::Rect;
//!
//! let mut index = SRTree::<2>::new();
//! index.insert(Rect::new([1985.0, 30_000.0], [1991.0, 30_000.0]), RecordId(1));
//! assert_eq!(
//!     index.search(&Rect::new([1987.0, 20_000.0], [1988.0, 40_000.0])),
//!     vec![RecordId(1)],
//! );
//! ```
//!
//! See the member crates for the substance:
//! [`core`] (the index engine), [`geom`] (rectangle/interval geometry),
//! [`storage`] (paged files with variable page sizes and a buffer pool),
//! [`concurrent`] (epoch-based snapshot reads over a single-writer
//! group-commit service), [`workloads`] (the paper's data and query
//! distributions), [`temporal`] (a valid-time table layer), and
//! [`server`] (a pipelined TCP front-end with a textual query language —
//! the `segidx_server` and `loadgen` binaries). The `segidx-bench` crate
//! provides the `reproduce` binary that regenerates the paper's
//! Graphs 1–6.

#![warn(missing_docs)]

pub use segidx_concurrent as concurrent;
pub use segidx_core as core;
pub use segidx_geom as geom;
pub use segidx_server as server;
pub use segidx_storage as storage;
pub use segidx_temporal as temporal;
pub use segidx_workloads as workloads;
