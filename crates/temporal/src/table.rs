//! The temporal table.

use crate::lsm::{TieredConfig, TieredTemporalIndex};
use segidx_core::{IndexConfig, RecordId, StatsSnapshot, Tree};
use segidx_geom::{Interval, Rect};
use segidx_storage::StorageError;
use std::collections::HashMap;

/// Identifier of one version of one key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VersionId(pub u64);

impl VersionId {
    fn record(self) -> RecordId {
        RecordId(self.0)
    }
}

/// One version of a key: an attribute value valid over a time interval.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Version {
    /// The key this version belongs to.
    pub key: u64,
    /// The attribute value during the interval.
    pub value: f64,
    /// Start of validity (inclusive).
    pub from: f64,
    /// End of validity, or `None` while the version is current.
    pub to: Option<f64>,
}

impl Version {
    /// Whether the version is valid at `t` (closed-open interval
    /// `[from, to)`, current versions open-ended).
    pub fn valid_at(&self, t: f64) -> bool {
        t >= self.from && self.to.map_or(true, |to| t < to)
    }
}

/// Which index structure backs a [`TemporalTable`].
#[derive(Clone, Debug, Default)]
pub enum TemporalBackend {
    /// One flat in-place tree — the paper's dynamic SR-Tree.
    #[default]
    Flat,
    /// The append-optimized LSM of packed trees
    /// ([`TieredTemporalIndex`]): memtable inserts, sealed immutable
    /// tiers, leveled merging. Queries are bit-identical to [`Flat`].
    /// The `index` field of the tiered configuration is used as-is.
    ///
    /// [`Flat`]: TemporalBackend::Flat
    Tiered(TieredConfig),
}

/// Configuration for a [`TemporalTable`].
#[derive(Clone, Debug)]
pub struct TemporalConfig {
    /// Upper bound used to index open (current) versions. Writes and
    /// queries at or beyond the horizon are rejected with
    /// [`TemporalError::BeyondHorizon`], so pick it past any timestamp
    /// you will use.
    pub time_horizon: f64,
    /// Configuration of the underlying index; defaults to the paper's
    /// SR-Tree (spanning records hold the long-lived versions). Ignored by
    /// the tiered backend, which carries its own index configuration.
    pub index: IndexConfig,
    /// The index structure versions are stored in.
    pub backend: TemporalBackend,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self {
            time_horizon: f64::MAX / 2.0,
            index: IndexConfig::srtree(),
            backend: TemporalBackend::Flat,
        }
    }
}

/// Typed failures of temporal operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalError {
    /// A timestamp fell at or beyond the table's time horizon. Open
    /// versions are indexed only up to the horizon, so such a query would
    /// silently see no open versions — rejected instead.
    BeyondHorizon {
        /// The offending timestamp.
        t: f64,
        /// The table's configured horizon.
        horizon: f64,
    },
    /// A key's history must be appended in nondecreasing time order.
    OutOfOrder {
        /// The key being updated.
        key: u64,
        /// The offending timestamp.
        at: f64,
        /// Start of the key's current version.
        current_start: f64,
    },
    /// The tiered backend failed to persist a seal or checkpoint.
    Storage(String),
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::BeyondHorizon { t, horizon } => {
                write!(f, "timestamp {t} at or beyond horizon {horizon}")
            }
            TemporalError::OutOfOrder {
                key,
                at,
                current_start,
            } => write!(
                f,
                "out-of-order update for key {key}: {at} < {current_start}"
            ),
            TemporalError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for TemporalError {}

impl From<StorageError> for TemporalError {
    fn from(e: StorageError) -> Self {
        TemporalError::Storage(e.to_string())
    }
}

#[derive(Debug)]
// Both variants boxed: a `Tree` header is ~336 bytes and the tiered
// index (memtable + tier vec + merge worker + telemetry) is larger
// still, so inline storage would bloat every `TemporalTable`.
enum IndexBackend {
    Flat(Box<Tree<2>>),
    Tiered(Box<TieredTemporalIndex<2>>),
}

impl IndexBackend {
    fn insert(&mut self, rect: Rect<2>, record: RecordId) -> Result<(), TemporalError> {
        match self {
            IndexBackend::Flat(tree) => {
                tree.insert(rect, record);
                Ok(())
            }
            IndexBackend::Tiered(t) => t.insert(rect, record).map_err(Into::into),
        }
    }

    fn delete(&mut self, rect: &Rect<2>, record: RecordId) -> Result<bool, TemporalError> {
        match self {
            IndexBackend::Flat(tree) => Ok(tree.delete(rect, record)),
            IndexBackend::Tiered(t) => t.delete(rect, record).map_err(Into::into),
        }
    }

    fn search(&self, query: &Rect<2>) -> Vec<RecordId> {
        match self {
            IndexBackend::Flat(tree) => tree.search(query),
            IndexBackend::Tiered(t) => t.search(query),
        }
    }
}

/// A keyed, versioned table indexed by a segment index over
/// (valid time × attribute value).
///
/// Updates never destroy history: inserting a new value for a key closes
/// the current version at the update time and opens a new one, exactly the
/// append-only regime the paper designs for ("historical data indexes only
/// need to support insertion and search operations", §3.1.1 — though
/// [`TemporalTable::expire`] is provided for retention trimming).
///
/// The version index is either one flat tree or the tiered LSM backend
/// ([`TemporalBackend`]); every query behaves identically on both.
#[derive(Debug)]
pub struct TemporalTable {
    index: IndexBackend,
    versions: Vec<Version>,
    current: HashMap<u64, VersionId>,
    horizon: f64,
}

impl TemporalTable {
    /// Creates an empty table.
    ///
    /// # Panics
    /// Panics if the horizon is not finite-positive or the index
    /// configuration is invalid.
    pub fn new(config: TemporalConfig) -> Self {
        assert!(
            config.time_horizon.is_finite() && config.time_horizon > 0.0,
            "time_horizon must be finite and positive"
        );
        let index = match config.backend {
            TemporalBackend::Flat => IndexBackend::Flat(Box::new(Tree::new(config.index))),
            TemporalBackend::Tiered(tiered) => {
                IndexBackend::Tiered(Box::new(TieredTemporalIndex::new(tiered)))
            }
        };
        Self {
            index,
            versions: Vec::new(),
            current: HashMap::new(),
            horizon: config.time_horizon,
        }
    }

    /// Records that `key` took `value` at time `at`, closing the key's
    /// previous version (if any). Returns the new version's id.
    ///
    /// # Panics
    /// Panics on any [`TemporalError`] — see [`try_insert`] for the
    /// non-panicking form.
    ///
    /// [`try_insert`]: TemporalTable::try_insert
    pub fn insert(&mut self, key: u64, value: f64, at: f64) -> VersionId {
        match self.try_insert(key, value, at) {
            Ok(id) => id,
            Err(TemporalError::BeyondHorizon { t, .. }) => {
                panic!("timestamp {t} beyond horizon")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Records that `key` took `value` at time `at`, closing the key's
    /// previous version (if any). Returns the new version's id, or a typed
    /// error if `at` is at/beyond the horizon or precedes the key's
    /// current version start (history must be appended in order per key).
    pub fn try_insert(
        &mut self,
        key: u64,
        value: f64,
        at: f64,
    ) -> Result<VersionId, TemporalError> {
        if at >= self.horizon {
            return Err(TemporalError::BeyondHorizon {
                t: at,
                horizon: self.horizon,
            });
        }
        if let Some(&open) = self.current.get(&key) {
            let prev = self.versions[open.0 as usize];
            if at < prev.from {
                return Err(TemporalError::OutOfOrder {
                    key,
                    at,
                    current_start: prev.from,
                });
            }
            self.close_version(open, at)?;
        }
        let id = VersionId(self.versions.len() as u64);
        self.versions.push(Version {
            key,
            value,
            from: at,
            to: None,
        });
        self.index.insert(self.rect_of(id), id.record())?;
        self.current.insert(key, id);
        Ok(id)
    }

    /// Deletes `key` at time `at`: closes its current version without
    /// opening a new one. Returns `false` if the key has no open version.
    pub fn delete_key(&mut self, key: u64, at: f64) -> bool {
        match self.current.remove(&key) {
            Some(open) => {
                self.close_version(open, at).expect("close version");
                true
            }
            None => false,
        }
    }

    /// Physically removes a closed version from the index and catalog slot
    /// (retention trimming). Current versions cannot be expired. Returns
    /// `false` if the version is open or was already expired.
    pub fn expire(&mut self, id: VersionId) -> bool {
        let Some(v) = self.versions.get(id.0 as usize).copied() else {
            return false;
        };
        if v.to.is_none() || v.from.is_nan() {
            return false;
        }
        let removed = self
            .index
            .delete(&self.rect_of(id), id.record())
            .expect("expire");
        if removed {
            // Tombstone the catalog entry.
            self.versions[id.0 as usize].from = f64::NAN;
        }
        removed
    }

    fn close_version(&mut self, id: VersionId, at: f64) -> Result<(), TemporalError> {
        let old_rect = self.rect_of(id);
        let v = &mut self.versions[id.0 as usize];
        debug_assert!(v.to.is_none());
        v.to = Some(at.max(v.from));
        let new_rect = {
            let v = self.versions[id.0 as usize];
            Rect::new([v.from, v.value], [v.to.unwrap(), v.value])
        };
        // Re-index with the real end time.
        let deleted = self.index.delete(&old_rect, id.record())?;
        debug_assert!(deleted, "open version was indexed");
        self.index.insert(new_rect, id.record())?;
        Ok(())
    }

    fn rect_of(&self, id: VersionId) -> Rect<2> {
        let v = self.versions[id.0 as usize];
        let to = v.to.unwrap_or(self.horizon);
        Rect::new([v.from, v.value], [to, v.value])
    }

    /// Looks up a version.
    pub fn version(&self, id: VersionId) -> Option<Version> {
        let v = *self.versions.get(id.0 as usize)?;
        if v.from.is_nan() {
            None // expired
        } else {
            Some(v)
        }
    }

    /// The key's current (open) value, if any.
    pub fn current_value(&self, key: u64) -> Option<f64> {
        self.current
            .get(&key)
            .map(|id| self.versions[id.0 as usize].value)
    }

    /// All versions valid at time `t` — the temporal stab query
    /// ("what did the world look like at t?").
    ///
    /// # Panics
    /// Panics if `t` is at or beyond the horizon (where open versions are
    /// not indexed); use [`try_as_of`] for the typed error.
    ///
    /// [`try_as_of`]: TemporalTable::try_as_of
    pub fn as_of(&self, t: f64) -> Vec<(VersionId, Version)> {
        self.try_as_of(t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// All versions valid at time `t`, or [`TemporalError::BeyondHorizon`]
    /// if `t >= time_horizon` — the query would otherwise silently miss
    /// every open version.
    pub fn try_as_of(&self, t: f64) -> Result<Vec<(VersionId, Version)>, TemporalError> {
        if t >= self.horizon {
            return Err(TemporalError::BeyondHorizon {
                t,
                horizon: self.horizon,
            });
        }
        let probe = Rect::new([t, f64::MIN / 2.0], [t, f64::MAX / 2.0]);
        let mut out: Vec<(VersionId, Version)> = self
            .index
            .search(&probe)
            .into_iter()
            .map(|r| (VersionId(r.raw()), self.versions[r.raw() as usize]))
            // The index is closed-interval; enforce the table's
            // closed-open semantics at version ends.
            .filter(|(_, v)| v.valid_at(t))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// All versions whose validity overlaps `time` and whose value lies in
    /// `value` — the paper's rectangle query over historical data.
    ///
    /// # Panics
    /// Panics if `time` starts at or beyond the horizon; use
    /// [`try_range`] for the typed error.
    ///
    /// [`try_range`]: TemporalTable::try_range
    pub fn range(&self, time: Interval, value: Interval) -> Vec<(VersionId, Version)> {
        self.try_range(time, value)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// All versions whose validity overlaps `time` and whose value lies in
    /// `value`, or [`TemporalError::BeyondHorizon`] if the whole time
    /// window lies at/beyond the horizon (open versions are not indexed
    /// there, so such a window silently drops them).
    pub fn try_range(
        &self,
        time: Interval,
        value: Interval,
    ) -> Result<Vec<(VersionId, Version)>, TemporalError> {
        if time.lo() >= self.horizon {
            return Err(TemporalError::BeyondHorizon {
                t: time.lo(),
                horizon: self.horizon,
            });
        }
        let query = Rect::from_intervals([time, value]);
        let mut out: Vec<(VersionId, Version)> = self
            .index
            .search(&query)
            .into_iter()
            .map(|r| (VersionId(r.raw()), self.versions[r.raw() as usize]))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Range × duration query (the streaming shape of the range-duration
    /// literature): versions overlapping `time` whose validity span lies
    /// in `[dur_lo, dur_hi]`. Open versions are measured to the horizon —
    /// effectively "at least this long so far".
    pub fn try_within(
        &self,
        time: Interval,
        dur_lo: f64,
        dur_hi: f64,
    ) -> Result<Vec<(VersionId, Version)>, TemporalError> {
        let all = self.try_range(time, Interval::new(f64::MIN / 2.0, f64::MAX / 2.0))?;
        Ok(all
            .into_iter()
            .filter(|(_, v)| {
                let dur = v.to.unwrap_or(self.horizon) - v.from;
                dur >= dur_lo && dur <= dur_hi
            })
            .collect())
    }

    /// The full history of one key, oldest first.
    pub fn history_of(&self, key: u64) -> Vec<(VersionId, Version)> {
        let mut out: Vec<(VersionId, Version)> = self
            .versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.key == key && !v.from.is_nan())
            .map(|(i, v)| (VersionId(i as u64), *v))
            .collect();
        out.sort_by(|a, b| a.1.from.partial_cmp(&b.1.from).unwrap());
        out
    }

    /// All currently open versions, sorted by key.
    pub fn current(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .current
            .iter()
            .map(|(&k, id)| (k, self.versions[id.0 as usize].value))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Total versions recorded (including expired slots).
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Number of keys with an open version.
    pub fn key_count(&self) -> usize {
        self.current.len()
    }

    /// The configured time horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Index statistics (the paper's node-access counters).
    ///
    /// # Panics
    /// Panics on the tiered backend, which has no single tree to report.
    pub fn index_stats(&self) -> StatsSnapshot {
        match &self.index {
            IndexBackend::Flat(tree) => tree.stats(),
            IndexBackend::Tiered(_) => panic!("index_stats: tiered backend"),
        }
    }

    /// The underlying flat index, for inspection.
    ///
    /// # Panics
    /// Panics on the tiered backend; use [`tiered_index`].
    ///
    /// [`tiered_index`]: TemporalTable::tiered_index
    pub fn index(&self) -> &Tree<2> {
        match &self.index {
            IndexBackend::Flat(tree) => tree,
            IndexBackend::Tiered(_) => panic!("index(): tiered backend"),
        }
    }

    /// The underlying tiered index, when the table uses the tiered
    /// backend.
    pub fn tiered_index(&self) -> Option<&TieredTemporalIndex<2>> {
        match &self.index {
            IndexBackend::Tiered(t) => Some(t),
            IndexBackend::Flat(_) => None,
        }
    }

    /// Mutable access to the tiered index (sealing, merge draining,
    /// snapshot export), when the table uses the tiered backend.
    pub fn tiered_index_mut(&mut self) -> Option<&mut TieredTemporalIndex<2>> {
        match &mut self.index {
            IndexBackend::Tiered(t) => Some(t),
            IndexBackend::Flat(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TemporalTable {
        TemporalTable::new(TemporalConfig {
            time_horizon: 10_000.0,
            ..TemporalConfig::default()
        })
    }

    fn tiered_table(seal_threshold: usize) -> TemporalTable {
        TemporalTable::new(TemporalConfig {
            time_horizon: 10_000.0,
            backend: TemporalBackend::Tiered(TieredConfig {
                seal_threshold,
                level_fanout: 2,
                ..TieredConfig::default()
            }),
            ..TemporalConfig::default()
        })
    }

    #[test]
    fn figure1_salary_history() {
        let mut t = table();
        t.insert(1, 30_000.0, 1975.0);
        t.insert(1, 41_000.0, 1979.5);
        t.insert(1, 55_000.0, 1984.0);
        t.insert(2, 30_000.0, 1974.0); // long-lived, never updated

        // As-of queries walk the timeline.
        let w = t.as_of(1977.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].1.value, 30_000.0);
        let w = t.as_of(1990.0);
        assert_eq!(w.len(), 2);
        assert!(w.iter().any(|(_, v)| v.value == 55_000.0));
        assert!(w.iter().any(|(_, v)| v.value == 30_000.0));

        // Versions close exactly at update time (closed-open semantics).
        let w = t.as_of(1979.5);
        let emp1: Vec<_> = w.iter().filter(|(_, v)| v.key == 1).collect();
        assert_eq!(emp1.len(), 1);
        assert_eq!(emp1[0].1.value, 41_000.0, "new version valid at its start");

        assert_eq!(t.current_value(1), Some(55_000.0));
        assert_eq!(t.history_of(1).len(), 3);
        assert_eq!(t.current(), vec![(1, 55_000.0), (2, 30_000.0)]);
    }

    #[test]
    fn before_any_data_is_empty() {
        let mut t = table();
        t.insert(5, 1.0, 100.0);
        assert!(t.as_of(99.9).is_empty());
        assert_eq!(t.as_of(100.0).len(), 1);
    }

    #[test]
    fn delete_key_closes_without_reopening() {
        let mut t = table();
        t.insert(9, 7.0, 10.0);
        assert!(t.delete_key(9, 20.0));
        assert!(!t.delete_key(9, 30.0), "already closed");
        assert_eq!(t.current_value(9), None);
        assert_eq!(t.as_of(15.0).len(), 1);
        assert!(t.as_of(25.0).is_empty());
        // History retained.
        assert_eq!(t.history_of(9).len(), 1);
        assert_eq!(t.history_of(9)[0].1.to, Some(20.0));
    }

    #[test]
    fn range_query_matches_filtering() {
        let mut t = table();
        for key in 0..200u64 {
            let mut at = (key % 50) as f64;
            for step in 0..5 {
                t.insert(key, (key * 10 + step) as f64, at);
                at += 3.0 + (key % 7) as f64;
            }
        }
        let time = Interval::new(10.0, 20.0);
        let value = Interval::new(100.0, 900.0);
        let got = t.range(time, value);
        for (_, v) in &got {
            assert!(value.contains(v.value));
            let end = v.to.unwrap_or(10_000.0);
            assert!(v.from <= time.hi() && end >= time.lo());
        }
        // Differential check against the catalog.
        let expected = t
            .versions
            .iter()
            .filter(|v| {
                let end = v.to.unwrap_or(10_000.0);
                value.contains(v.value) && v.from <= time.hi() && end >= time.lo()
            })
            .count();
        assert_eq!(got.len(), expected);
    }

    #[test]
    fn expire_removes_closed_versions_only() {
        let mut t = table();
        let v1 = t.insert(1, 5.0, 0.0);
        let v2 = t.insert(1, 6.0, 10.0); // closes v1
        assert!(!t.expire(v2), "open version cannot be expired");
        assert!(t.expire(v1));
        assert!(!t.expire(v1), "double expire is a no-op");
        assert!(t.version(v1).is_none());
        assert!(t.as_of(5.0).is_empty(), "expired version gone from index");
        assert_eq!(t.as_of(12.0).len(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_order_update_panics() {
        let mut t = table();
        t.insert(1, 5.0, 100.0);
        t.insert(1, 6.0, 50.0);
    }

    #[test]
    #[should_panic]
    fn timestamp_beyond_horizon_panics() {
        let mut t = table();
        t.insert(1, 5.0, 10_001.0);
    }

    #[test]
    fn query_at_horizon_is_a_typed_error() {
        // Regression: queries at or past the horizon used to silently see
        // no open versions; they are now rejected with BeyondHorizon.
        let mut t = table();
        t.insert(1, 5.0, 100.0); // open version, indexed to the horizon
        assert_eq!(t.try_as_of(9_999.9).unwrap().len(), 1);
        let err = t.try_as_of(10_000.0).unwrap_err();
        assert_eq!(
            err,
            TemporalError::BeyondHorizon {
                t: 10_000.0,
                horizon: 10_000.0
            }
        );
        assert!(t.try_as_of(12_345.0).is_err());
        // Writes at the horizon are equally typed.
        let err = t.try_insert(2, 1.0, 10_000.0).unwrap_err();
        assert!(matches!(err, TemporalError::BeyondHorizon { .. }));
        // Range windows entirely past the horizon are rejected; partial
        // overlap is fine.
        assert!(t
            .try_range(Interval::new(10_000.0, 10_001.0), Interval::new(0.0, 10.0))
            .is_err());
        assert!(t
            .try_range(Interval::new(9_999.0, 10_001.0), Interval::new(0.0, 10.0))
            .is_ok());
    }

    #[test]
    fn within_filters_by_duration() {
        let mut t = table();
        t.insert(1, 1.0, 0.0);
        t.delete_key(1, 5.0); // duration 5
        t.insert(2, 2.0, 0.0);
        t.delete_key(2, 50.0); // duration 50
        t.insert(3, 3.0, 0.0); // open: duration to horizon
        let got = t.try_within(Interval::new(0.0, 100.0), 1.0, 10.0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.key, 1);
        let got = t
            .try_within(Interval::new(0.0, 100.0), 1.0, f64::MAX / 2.0)
            .unwrap();
        assert_eq!(got.len(), 3, "open version matches an unbounded ceiling");
    }

    #[test]
    fn long_lived_versions_become_spanning_records() {
        let mut t = table();
        // Many short-lived keys plus a few ancient open versions: the
        // paper's skew. Spanning records should appear in the SR-Tree.
        for key in 0..2_000u64 {
            let at = (key % 100) as f64 * 10.0;
            t.insert(key, (key % 500) as f64, at);
            if key % 3 != 0 {
                t.insert(key, (key % 500) as f64 + 1.0, at + 2.0);
                t.insert(key, (key % 500) as f64 + 2.0, at + 4.0);
            }
            // key % 3 == 0 stays open: a segment to the horizon.
        }
        let stats = t.index_stats();
        assert!(stats.spanning_stores > 0, "open versions span node regions");
        assert!(t.index().check_invariants().is_empty());
        // Consistency: every open version is visible at a late time.
        let late = t.as_of(9_999.0);
        assert_eq!(late.len(), t.key_count());
    }

    #[test]
    fn index_and_catalog_stay_consistent_under_churn() {
        let mut t = table();
        for round in 0..50u64 {
            for key in 0..40u64 {
                t.insert(key, (round * 40 + key) as f64, round as f64 * 10.0);
            }
        }
        // Each key has 50 versions; 49 closed.
        assert_eq!(t.version_count(), 2_000);
        assert_eq!(t.key_count(), 40);
        for probe in [5.0, 250.0, 495.0] {
            let w = t.as_of(probe);
            assert_eq!(w.len(), 40, "every key valid at {probe}");
        }
        assert!(t.index().check_invariants().is_empty());
    }

    #[test]
    fn tiered_backend_answers_identically_under_churn() {
        let mut flat = table();
        let mut tiered = tiered_table(64); // force many seals and merges
        for round in 0..30u64 {
            for key in 0..25u64 {
                let value = ((round * 25 + key) % 97) as f64;
                let at = round as f64 * 10.0 + (key % 5) as f64;
                flat.insert(key, value, at);
                tiered.insert(key, value, at);
            }
            if round % 7 == 3 {
                let key = round % 25;
                let at = round as f64 * 10.0 + 6.0;
                assert_eq!(flat.delete_key(key, at), tiered.delete_key(key, at));
            }
        }
        tiered
            .tiered_index()
            .expect("tiered backend")
            .assert_invariants();
        assert!(tiered.tiered_index().unwrap().tier_count() > 1);
        for probe in [5.0, 42.0, 123.0, 250.0, 299.0] {
            assert_eq!(flat.as_of(probe), tiered.as_of(probe), "as_of {probe}");
        }
        for (lo, hi) in [(0.0, 300.0), (50.0, 60.0), (120.0, 180.0)] {
            let time = Interval::new(lo, hi);
            let value = Interval::new(10.0, 80.0);
            assert_eq!(flat.range(time, value), tiered.range(time, value));
            assert_eq!(
                flat.try_within(time, 2.0, 40.0).unwrap(),
                tiered.try_within(time, 2.0, 40.0).unwrap()
            );
        }
        assert_eq!(flat.current(), tiered.current());
    }

    #[test]
    fn tiered_backend_supports_expire() {
        let mut t = tiered_table(8);
        let mut ids = Vec::new();
        for i in 0..40u64 {
            ids.push(t.insert(i, i as f64, 0.0));
            t.delete_key(i, 10.0 + i as f64);
        }
        // Everything sealed by now; expire half.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.expire(*id), "expire sealed version {i}");
            }
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.version(*id).is_some(), i % 2 != 0);
        }
        // Version i is valid over [0, 10 + i): at t = 20 the survivors are
        // the odd i > 10.
        assert_eq!(t.as_of(20.0).len(), 15);
    }
}
