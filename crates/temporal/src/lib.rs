//! A temporal (valid-time) table layer over segment indexes.
//!
//! The Segment Indexes paper is motivated by historical databases in the
//! POSTGRES tradition: tuples carry a *valid time* interval, updates close
//! the current version and open a new one, and queries ask about the state
//! of the world *as of* some time (paper §1, Figure 1: employee salary
//! histories as horizontal segments in (time, salary) space).
//!
//! [`TemporalTable`] packages that model:
//!
//! * [`TemporalTable::insert`] opens a new version of a key, automatically
//!   closing the previous one — building exactly the paper's Figure 1 data;
//! * open (current) versions are indexed up to a configurable time horizon
//!   and re-indexed when closed;
//! * [`TemporalTable::as_of`] is the temporal stab query, and
//!   [`TemporalTable::range`] the (time window × attribute window) rectangle
//!   query that the paper's experiments measure;
//! * the underlying index is the SR-Tree, whose spanning records hold the
//!   long-lived versions ("employees who seldom received raises");
//! * for append-heavy streams, [`TemporalBackend::Tiered`] swaps the flat
//!   tree for the [`lsm`] module's LSM of packed trees: a memtable sealed
//!   into immutable bulk-loaded tiers with crash-consistent checkpoints
//!   and leveled background merging, answering the same queries
//!   bit-identically.
//!
//! ```
//! use segidx_temporal::{TemporalTable, TemporalConfig};
//!
//! let mut salaries = TemporalTable::new(TemporalConfig {
//!     time_horizon: 2100.0,
//!     ..TemporalConfig::default()
//! });
//! salaries.insert(/*employee*/ 1, /*salary*/ 30_000.0, /*at*/ 1975.0);
//! salaries.insert(1, 41_000.0, 1979.5);
//! salaries.insert(2, 30_000.0, 1974.0); // never updated: open version
//!
//! let world_1977 = salaries.as_of(1977.0);
//! assert_eq!(world_1977.len(), 2);
//! assert_eq!(salaries.current_value(1), Some(41_000.0));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod lsm;
mod table;

pub use lsm::{MergeMode, TierSnapshot, TieredConfig, TieredTelemetry, TieredTemporalIndex};
pub use table::{
    TemporalBackend, TemporalConfig, TemporalError, TemporalTable, Version, VersionId,
};
