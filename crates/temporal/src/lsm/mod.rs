//! Append-optimized tiered storage: an LSM of packed trees.
//!
//! The paper observes that historical interval data is append-only
//! ("historical data indexes only need to support insertion and search
//! operations", §3.1.1), and monotone-end-time streams make in-place
//! R-Tree splits wasted work. [`TieredTemporalIndex`] exploits that:
//!
//! * **Memtable** — recent intervals accumulate in a bounded mutable
//!   staging area: a flat O(1)-append buffer by default, or a small tree
//!   built through the paper's skeleton path when configured for
//!   query-heavy loads ([`memtable`]).
//! * **Seal** — at a size threshold (or on demand) the memtable is packed
//!   into an immutable Sort-Tile-Recursive tree and appended as a level-0
//!   tier. With a disk attached, every seal commits a manifest page under
//!   the storage layer's atomic root-pointer flip, so each seal is a
//!   crash-consistent checkpoint.
//! * **Merge** — a leveled policy folds runs of equal-level tiers into one
//!   tier a level up, inline or on a background worker ([`merge`]).
//! * **Snapshot** — a pinned [`TierSnapshot`] over the sealed tiers
//!   doubles as online backup: it exports to a separate [`DiskManager`]
//!   while the writer keeps going.
//!
//! Queries scatter across the memtable and every tier, drop shadowed
//! copies by sequence precedence, and merge record-sorted — bit-identical
//! to a flat single-tree model holding only the live entries.
//!
//! ## Precedence
//!
//! Record ids must be unique among *live* entries (the temporal table
//! guarantees this). Updating a record means deleting its old rectangle
//! and inserting the new one; if the old copy is already sealed, the
//! delete becomes a *tombstone* stamped with the next sequence number.
//! A copy of record `r` in tier sequence `S` is stale iff the memtable
//! holds `r`, a tier with sequence `> S` holds `r`, or a tombstone for `r`
//! carries a sequence `> S`. The memtable is always newest.

mod memtable;
mod merge;
mod telemetry;
mod tier;

pub use merge::MergeMode;
pub use telemetry::TieredTelemetry;

use memtable::Memtable;
use merge::{plan_run, run_merge, MergeJob, MergeOutcome, MergeWorker};
use segidx_core::{bulk, persist, IndexConfig, RecordId};
use segidx_geom::Rect;
use segidx_obs::{Event, EventKind, ObsSink};
use segidx_storage::{DiskManager, PageId, Result, StorageError};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tier::Tier;

/// Tuning for a [`TieredTemporalIndex`].
#[derive(Clone, Debug)]
pub struct TieredConfig {
    /// Index configuration for the memtable skeleton and packed tiers.
    pub index: IndexConfig,
    /// Memtable entries that trigger a seal.
    pub seal_threshold: usize,
    /// Fraction of `seal_threshold` buffered flat before the memtable
    /// builds its skeleton tree (the paper's prediction buffer `T`).
    ///
    /// `1.0` (the default) keeps the memtable a flat append buffer for its
    /// whole life — O(1) inserts, linear-scan queries bounded by the seal
    /// threshold — leaving all structuring to the seal's bulk loader.
    /// Fractions below one trade per-insert tree maintenance for
    /// tree-speed memtable queries (query-heavy deployments).
    pub sample_fraction: f64,
    /// Number of equal-level tiers that triggers a merge into the next
    /// level.
    pub level_fanout: usize,
    /// Tombstone count that triggers a full compaction (merge of every
    /// tier), clearing collected tombstones.
    pub tombstone_limit: usize,
    /// Whether merges run inline or on the background worker.
    pub merge_mode: MergeMode,
}

impl Default for TieredConfig {
    fn default() -> Self {
        Self {
            index: IndexConfig::srtree(),
            seal_threshold: 8_192,
            sample_fraction: 1.0,
            level_fanout: 4,
            tombstone_limit: 4_096,
            merge_mode: MergeMode::Inline,
        }
    }
}

impl TieredConfig {
    fn validate(&self) {
        assert!(self.seal_threshold > 0, "seal_threshold must be positive");
        assert!(self.level_fanout >= 2, "level_fanout must be at least 2");
        assert!(
            self.sample_fraction > 0.0 && self.sample_fraction <= 1.0,
            "sample_fraction must be in (0, 1]"
        );
    }

    fn sample_target(&self) -> usize {
        ((self.seal_threshold as f64 * self.sample_fraction).round() as usize)
            .clamp(1, self.seal_threshold)
    }
}

/// An LSM of packed segment-index trees. See the [module docs](self).
pub struct TieredTemporalIndex<const D: usize> {
    config: TieredConfig,
    memtable: Memtable<D>,
    /// Oldest first (ascending `seq`); levels monotone non-increasing.
    tiers: Vec<Tier<D>>,
    tombstones: HashMap<RecordId, u64>,
    next_seq: u64,
    /// Live entries (inserts minus deletes) — the flat model's length.
    len: usize,
    disk: Option<Arc<DiskManager>>,
    manifest_page: Option<PageId>,
    /// Tree metadata pages of tiers consumed by merges, freed at the next
    /// checkpoint.
    pending_free: Vec<PageId>,
    worker: Option<MergeWorker<D>>,
    telemetry: Option<Arc<TieredTelemetry>>,
    sink: Option<Arc<dyn ObsSink>>,
}

impl<const D: usize> TieredTemporalIndex<D> {
    /// Creates an in-memory tiered index (no durability).
    pub fn new(config: TieredConfig) -> Self {
        config.validate();
        let memtable = Memtable::new(
            config.index.clone(),
            config.seal_threshold,
            config.sample_target(),
        );
        let worker = match config.merge_mode {
            MergeMode::Inline => None,
            MergeMode::Background => Some(MergeWorker::spawn()),
        };
        Self {
            config,
            memtable,
            tiers: Vec::new(),
            tombstones: HashMap::new(),
            next_seq: 0,
            len: 0,
            disk: None,
            manifest_page: None,
            pending_free: Vec::new(),
            worker,
            telemetry: None,
            sink: None,
        }
    }

    /// Creates a disk-backed tiered index on a fresh `disk`, committing an
    /// empty manifest so a reopen before the first seal finds a valid
    /// (empty) tier set.
    pub fn create(config: TieredConfig, disk: Arc<DiskManager>) -> Result<Self> {
        let mut idx = Self::new(config);
        idx.disk = Some(disk);
        idx.checkpoint()?;
        Ok(idx)
    }

    /// Reopens a disk-backed tiered index from its committed manifest.
    ///
    /// After a crash, open the disk with [`DiskManager::open_repair`]
    /// first; a pure power cut leaves the committed manifest and tier
    /// pages intact, so this loads exactly the last checkpointed tier set
    /// (memtable contents since that checkpoint are gone by design — the
    /// seal is the durability boundary).
    pub fn open(config: TieredConfig, disk: Arc<DiskManager>) -> Result<Self> {
        config.validate();
        let root = disk
            .root()
            .ok_or_else(|| StorageError::BadMeta("no committed manifest".into()))?;
        let manifest = tier::read_manifest(&disk, root, D)?;
        let tiers: Vec<Tier<D>> = tier::load_tiers(&disk, &manifest)?;
        let mut idx = Self::new(config);
        idx.len = Self::live_count(&tiers, &manifest.tombstones);
        idx.tombstones = manifest.tombstones.into_iter().collect();
        idx.next_seq = manifest.next_seq;
        idx.tiers = tiers;
        idx.disk = Some(disk);
        idx.manifest_page = Some(root);
        idx.refresh_gauges();
        Ok(idx)
    }

    /// Counts live (unshadowed, untombstoned) entries across `tiers`.
    fn live_count(tiers: &[Tier<D>], tombstones: &[(RecordId, u64)]) -> usize {
        let tombs: HashMap<RecordId, u64> = tombstones.iter().copied().collect();
        let mut live = 0usize;
        for (i, t) in tiers.iter().enumerate() {
            let newer = &tiers[i + 1..];
            for &r in t.ids.iter() {
                let dead = tombs.get(&r).is_some_and(|&ts| ts > t.seq)
                    || newer.iter().any(|n| n.contains(r));
                if !dead {
                    live += 1;
                }
            }
        }
        live
    }

    /// Installs telemetry (shared with the merge worker's outcomes).
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<TieredTelemetry>>) {
        self.telemetry = telemetry;
        self.refresh_gauges();
    }

    /// Installs an event sink for seal/merge/export events.
    pub fn set_sink(&mut self, sink: Option<Arc<dyn ObsSink>>) {
        self.sink = sink;
    }

    /// Live entries — what a flat single-tree model would hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sealed tiers currently live.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Entries in the mutable memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Live tombstones shadowing sealed entries.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// `(seq, level, entries)` per tier, oldest first (diagnostics).
    pub fn tier_profile(&self) -> Vec<(u64, u32, usize)> {
        self.tiers
            .iter()
            .map(|t| (t.seq, t.level, t.entry_count()))
            .collect()
    }

    /// Inserts an entry, sealing the memtable if it reaches the threshold.
    /// Record ids must be unique among live entries.
    ///
    /// In-memory indexes cannot fail here; disk-backed ones surface seal
    /// commit errors.
    pub fn insert(&mut self, rect: Rect<D>, record: RecordId) -> Result<()> {
        self.memtable.insert(rect, record);
        self.len += 1;
        if self.memtable.len() >= self.config.seal_threshold {
            self.seal()?;
        } else {
            self.refresh_gauges();
        }
        Ok(())
    }

    /// Deletes a live entry. `rect` must be the exact rectangle it was
    /// inserted with. A memtable hit is removed physically; a sealed copy
    /// gets a tombstone (durable at the next seal or [`checkpoint`]).
    /// Returns whether the entry was live.
    ///
    /// [`checkpoint`]: TieredTemporalIndex::checkpoint
    pub fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> Result<bool> {
        if self.memtable.delete(rect, record) {
            self.len -= 1;
            self.refresh_gauges();
            return Ok(true);
        }
        // Newest sealed copy, if it is still visible.
        let Some(seq) = self
            .tiers
            .iter()
            .rev()
            .find(|t| t.contains(record))
            .map(|t| t.seq)
        else {
            return Ok(false);
        };
        if self.tombstones.get(&record).is_some_and(|&ts| ts > seq) {
            return Ok(false); // already deleted
        }
        self.tombstones.insert(record, self.next_seq);
        self.next_seq += 1;
        self.len -= 1;
        if self.tombstones.len() > self.config.tombstone_limit && !self.tiers.is_empty() {
            self.compact()?;
        }
        self.refresh_gauges();
        Ok(true)
    }

    /// Record ids intersecting `query`: scattered across memtable and
    /// every tier, stale copies dropped, merged sorted ascending and
    /// deduped — the same contract (and bit-identical results) as
    /// [`Tree::search`] on a flat tree of the live entries.
    ///
    /// [`Tree::search`]: segidx_core::Tree::search
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let mut out = self.memtable.search(query);
        for (i, t) in self.tiers.iter().enumerate() {
            let newer = &self.tiers[i + 1..];
            for r in t.tree.search(query) {
                let stale = self.memtable.contains(r)
                    || self.tombstones.get(&r).is_some_and(|&ts| ts > t.seq)
                    || newer.iter().any(|n| n.contains(r));
                if !stale {
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Seals the memtable into an immutable level-0 tier, runs the merge
    /// policy, and (disk-backed) commits the new tier set atomically.
    /// A no-op when the memtable is empty.
    pub fn seal(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let entries = self.memtable.drain();
        let sealed = entries.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        let tree = bulk::bulk_load(self.config.index.clone(), entries);
        self.tiers.push(Tier::new(tree, seq, 0));
        self.prune_tombstones();
        self.run_merge_policy()?;
        self.checkpoint()?;
        if let Some(t) = &self.telemetry {
            t.seals_total.fetch_add(1, Ordering::Relaxed);
            t.sealed_entries_total
                .fetch_add(sealed as u64, Ordering::Relaxed);
            t.seal_latency.record_duration(t0.elapsed());
        }
        if let Some(sink) = &self.sink {
            sink.event(
                Event::new(EventKind::TierSealed)
                    .node(seq)
                    .detail(sealed as u64),
            );
        }
        self.refresh_gauges();
        Ok(())
    }

    /// Merges every tier into one (regardless of the leveled policy) and
    /// clears the tombstones the merge collected. Compacting a single
    /// tier rewrites it without its tombstoned copies.
    pub fn compact(&mut self) -> Result<()> {
        self.finish_in_flight()?;
        if !self.tiers.is_empty() {
            let level = self.tiers.iter().map(|t| t.level).max().unwrap_or(0) + 1;
            let outcome = run_merge(self.make_job(0..self.tiers.len(), level));
            self.apply_merge(outcome);
        }
        self.prune_tombstones();
        self.checkpoint()?;
        self.refresh_gauges();
        Ok(())
    }

    /// Applies any finished background merge without blocking. Returns
    /// whether one was applied (and committed, when disk-backed).
    pub fn poll_merges(&mut self) -> Result<bool> {
        let Some(outcome) = self.worker.as_mut().and_then(|w| w.try_take()) else {
            return Ok(false);
        };
        self.apply_merge(outcome);
        self.run_merge_policy()?; // cascade: the splice may enable a run
        self.checkpoint()?;
        self.refresh_gauges();
        Ok(true)
    }

    /// Drives background merging to quiescence: waits for the in-flight
    /// merge (if any), applies it, and repeats until the policy finds no
    /// run. Inline mode is already quiescent after every seal.
    pub fn flush_merges(&mut self) -> Result<()> {
        loop {
            let Some(outcome) = self.worker.as_mut().and_then(|w| w.wait_take()) else {
                break;
            };
            self.apply_merge(outcome);
            self.run_merge_policy()?;
        }
        self.checkpoint()?;
        self.refresh_gauges();
        Ok(())
    }

    /// Commits the current sealed state (tier trees + manifest + tombstone
    /// table) to the attached disk under one atomic root-pointer flip.
    /// Returns the manifest page, or `None` for in-memory indexes.
    ///
    /// Runs automatically on seal and merge application; call directly to
    /// make tombstones created since the last seal durable.
    pub fn checkpoint(&mut self) -> Result<Option<PageId>> {
        let Some(disk) = self.disk.clone() else {
            return Ok(None);
        };
        // Free replaced pages first: the storage layer quarantines freed
        // extents until this commit is durable, so a crash anywhere below
        // reopens on the previous manifest with all its pages intact.
        for meta in self.pending_free.drain(..) {
            persist::free_tree(&disk, meta);
        }
        if let Some(old) = self.manifest_page.take() {
            let _ = disk.free(old);
        }
        for t in &mut self.tiers {
            if t.meta.is_none() {
                t.meta = Some(persist::save(&t.tree, &disk)?);
            }
        }
        let page = tier::write_manifest(&disk, &self.tiers, &self.tombstones, self.next_seq)?;
        disk.set_root(Some(page));
        disk.sync()?;
        self.manifest_page = Some(page);
        Ok(Some(page))
    }

    /// Pins the current sealed tier set for reading or export. The writer
    /// is not paused: tiers are immutable and shared by reference.
    pub fn snapshot(&self) -> TierSnapshot<D> {
        TierSnapshot {
            tiers: self.tiers.clone(),
            tombstones: self.tombstones.clone(),
            next_seq: self.next_seq,
            telemetry: self.telemetry.clone(),
            sink: self.sink.clone(),
        }
    }

    /// Runs the leveled policy: inline mode merges until quiescent;
    /// background mode applies a finished merge and keeps at most one job
    /// in flight.
    fn run_merge_policy(&mut self) -> Result<()> {
        if let Some(w) = self.worker.as_mut() {
            if let Some(outcome) = w.try_take() {
                self.apply_merge(outcome);
            }
        }
        loop {
            let full =
                self.tombstones.len() > self.config.tombstone_limit && !self.tiers.is_empty();
            let plan = if full {
                let level = self.tiers.iter().map(|t| t.level).max().unwrap_or(0) + 1;
                Some((0..self.tiers.len(), level))
            } else {
                plan_run(&self.tiers, self.config.level_fanout)
            };
            let Some((range, level)) = plan else { break };
            // Move the worker out while building the job so the borrow
            // checker lets `make_job` read `self.tiers`.
            match self.worker.take() {
                None => {
                    let outcome = run_merge(self.make_job(range, level));
                    self.apply_merge(outcome);
                }
                Some(mut worker) => {
                    if !worker.in_flight() {
                        let job = self.make_job(range, level);
                        worker.submit(job);
                    }
                    self.worker = Some(worker);
                    break;
                }
            }
        }
        Ok(())
    }

    /// Blocks until no background merge is in flight (applying its
    /// result), without dispatching new work.
    fn finish_in_flight(&mut self) -> Result<()> {
        if let Some(outcome) = self.worker.as_mut().and_then(|w| w.wait_take()) {
            self.apply_merge(outcome);
        }
        Ok(())
    }

    fn make_job(&self, range: std::ops::Range<usize>, level: u32) -> MergeJob<D> {
        MergeJob {
            tiers: self.tiers[range].to_vec(),
            tombstones: self.tombstones.clone(),
            level,
            config: self.config.index.clone(),
        }
    }

    /// Splices a merge result into the tier list, replacing its inputs
    /// (which are always still present and contiguous: seals only append,
    /// and only one merge runs at a time).
    fn apply_merge(&mut self, outcome: MergeOutcome<D>) {
        let MergeOutcome {
            input_seqs,
            tier,
            dropped,
            nanos,
        } = outcome;
        let start = self
            .tiers
            .iter()
            .position(|t| t.seq == input_seqs[0])
            .expect("merge inputs present");
        let end = start + input_seqs.len();
        debug_assert!(self.tiers[start..end]
            .iter()
            .zip(&input_seqs)
            .all(|(t, &s)| t.seq == s));
        for old in self.tiers.drain(start..end) {
            if let Some(meta) = old.meta {
                self.pending_free.push(meta);
            }
        }
        let merged_entries = tier.entry_count() as u64;
        let seq = tier.seq;
        let level = tier.level;
        self.tiers.insert(start, tier);
        self.prune_tombstones();
        if let Some(t) = &self.telemetry {
            t.merges_total.fetch_add(1, Ordering::Relaxed);
            t.merged_entries_total
                .fetch_add(merged_entries, Ordering::Relaxed);
            t.merge_dropped_total.fetch_add(dropped, Ordering::Relaxed);
            t.merge_latency.record(nanos);
        }
        if let Some(sink) = &self.sink {
            sink.event(
                Event::new(EventKind::TierMerged)
                    .node(seq)
                    .level(level)
                    .detail(merged_entries),
            );
        }
    }

    /// Drops tombstones that no longer shadow anything. A tombstone at
    /// sequence `ts` masks copies of its record in tiers with sequence
    /// `< ts`; once no such tier holds the record (the copies were merged
    /// away), no future tier can either — merges only combine existing
    /// copies and seals get fresh, higher sequences — so it is dead weight.
    fn prune_tombstones(&mut self) {
        let tiers = &self.tiers;
        self.tombstones
            .retain(|&r, &mut ts| tiers.iter().any(|t| t.seq < ts && t.contains(r)));
    }

    fn refresh_gauges(&self) {
        if let Some(t) = &self.telemetry {
            t.tier_count
                .store(self.tiers.len() as u64, Ordering::Relaxed);
            t.memtable_entries
                .store(self.memtable.len() as u64, Ordering::Relaxed);
            t.sealed_entries.store(
                self.tiers.iter().map(|x| x.entry_count() as u64).sum(),
                Ordering::Relaxed,
            );
            t.tombstones
                .store(self.tombstones.len() as u64, Ordering::Relaxed);
        }
    }

    /// Internal consistency checks (tests): sequence order, level
    /// monotonicity, live count.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        for w in self.tiers.windows(2) {
            assert!(w[0].seq < w[1].seq, "tier seqs ascend");
            assert!(w[0].level >= w[1].level, "levels non-increasing");
        }
        for t in &self.tiers {
            assert!(t.seq < self.next_seq);
        }
        let tombs: Vec<(RecordId, u64)> = self.tombstones.iter().map(|(&r, &s)| (r, s)).collect();
        let sealed_live = Self::live_count(&self.tiers, &tombs);
        let mem_live = self.memtable.len();
        // Memtable ids may shadow sealed copies; recount precisely.
        let shadowed: usize = self
            .tiers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let newer = &self.tiers[i + 1..];
                t.ids
                    .iter()
                    .filter(|&&r| {
                        self.memtable.contains(r)
                            && !newer.iter().any(|n| n.contains(r))
                            && !self.tombstones.get(&r).is_some_and(|&ts| ts > t.seq)
                    })
                    .count()
            })
            .sum();
        assert_eq!(self.len, sealed_live + mem_live - shadowed, "live count");
    }
}

impl<const D: usize> std::fmt::Debug for TieredTemporalIndex<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredTemporalIndex")
            .field("len", &self.len)
            .field("memtable", &self.memtable.len())
            .field("tiers", &self.tier_profile())
            .field("tombstones", &self.tombstones.len())
            .finish()
    }
}

/// A pinned, immutable view of the sealed tier set at some moment.
///
/// Holding one costs a reference count per tier; the writer continues
/// sealing and merging underneath. [`export_to`] turns it into an online
/// backup: the pinned set is checkpointed onto a separate disk in the same
/// format the live index commits, so [`TieredTemporalIndex::open`] reads
/// the copy back directly.
///
/// [`export_to`]: TierSnapshot::export_to
pub struct TierSnapshot<const D: usize> {
    tiers: Vec<Tier<D>>,
    tombstones: HashMap<RecordId, u64>,
    next_seq: u64,
    telemetry: Option<Arc<TieredTelemetry>>,
    sink: Option<Arc<dyn ObsSink>>,
}

impl<const D: usize> TierSnapshot<D> {
    /// Sealed tiers pinned by this snapshot.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Entries across the pinned tiers (stale copies included).
    pub fn entry_count(&self) -> usize {
        self.tiers.iter().map(|t| t.entry_count()).sum()
    }

    /// Searches the pinned tier set (no memtable: a snapshot covers the
    /// sealed, durable half only). Sorted ascending, deduped.
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let mut out = Vec::new();
        for (i, t) in self.tiers.iter().enumerate() {
            let newer = &self.tiers[i + 1..];
            for r in t.tree.search(query) {
                let stale = self.tombstones.get(&r).is_some_and(|&ts| ts > t.seq)
                    || newer.iter().any(|n| n.contains(r));
                if !stale {
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Writes the pinned tier set to `disk` as a committed manifest — an
    /// online backup taken without pausing the writer. The target disk
    /// should be fresh (its previous committed state, if any, is
    /// replaced). Returns the manifest page on the target.
    pub fn export_to(&self, disk: &DiskManager) -> Result<PageId> {
        if let Some(old) = disk.root() {
            // Replacing a previous export: drop its manifest and trees.
            if let Ok(manifest) = tier::read_manifest(disk, old, D) {
                for (meta, _, _) in manifest.tiers {
                    persist::free_tree(disk, meta);
                }
            }
            let _ = disk.free(old);
            disk.set_root(None);
        }
        let mut exported = Vec::with_capacity(self.tiers.len());
        for t in &self.tiers {
            let mut copy = t.clone();
            copy.meta = Some(persist::save(&t.tree, disk)?);
            exported.push(copy);
        }
        let page = tier::write_manifest(disk, &exported, &self.tombstones, self.next_seq)?;
        disk.set_root(Some(page));
        disk.sync()?;
        if let Some(t) = &self.telemetry {
            t.exports_total.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(sink) = &self.sink {
            sink.event(
                Event::new(EventKind::TierExported)
                    .node(disk.epoch())
                    .detail(self.entry_count() as u64),
            );
        }
        Ok(page)
    }
}

impl<const D: usize> std::fmt::Debug for TierSnapshot<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierSnapshot")
            .field("tiers", &self.tiers.len())
            .field("entries", &self.entry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_core::Tree;
    use segidx_obs::RingBufferSink;
    use segidx_storage::{DiskManagerConfig, ScriptedFault};
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "segidx-lsm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn cfg(seal_threshold: usize) -> TieredConfig {
        TieredConfig {
            seal_threshold,
            level_fanout: 2,
            ..TieredConfig::default()
        }
    }

    /// A monotone-end-time interval stream, the paper's historical regime.
    fn stream(n: u64) -> impl Iterator<Item = (Rect<2>, RecordId)> {
        (0..n).map(|i| {
            let start = i as f64;
            let len = 1.0 + (i % 37) as f64;
            let value = (i % 100) as f64;
            (Rect::new([start, value], [start + len, value]), RecordId(i))
        })
    }

    #[test]
    fn search_is_bit_identical_to_flat_tree() {
        let mut tiered = TieredTemporalIndex::<2>::new(cfg(32));
        let mut flat: Tree<2> = Tree::new(IndexConfig::srtree());
        for (rect, record) in stream(1_000) {
            tiered.insert(rect, record).unwrap();
            flat.insert(rect, record);
        }
        tiered.assert_invariants();
        assert!(tiered.tier_count() > 1, "stream crossed several seals");
        for (lo, hi) in [(0.0, 10.0), (100.0, 400.0), (0.0, 2_000.0), (990.0, 995.5)] {
            let q = Rect::new([lo, 0.0], [hi, 100.0]);
            assert_eq!(tiered.search(&q), flat.search(&q), "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn updates_and_deletes_shadow_sealed_copies() {
        let mut tiered = TieredTemporalIndex::<2>::new(cfg(16));
        let mut flat: Tree<2> = Tree::new(IndexConfig::srtree());
        for (rect, record) in stream(200) {
            tiered.insert(rect, record).unwrap();
            flat.insert(rect, record);
        }
        // Update half the records (delete + reinsert with a new rect),
        // delete a quarter outright; all old copies are sealed by now.
        for i in (0..200u64).step_by(2) {
            let start = i as f64;
            let len = 1.0 + (i % 37) as f64;
            let value = (i % 100) as f64;
            let old = Rect::new([start, value], [start + len, value]);
            assert!(tiered.delete(&old, RecordId(i)).unwrap());
            assert!(flat.delete(&old, RecordId(i)));
            if i % 4 == 0 {
                let moved = Rect::new([start, value + 500.0], [start + len, value + 500.0]);
                tiered.insert(moved, RecordId(i)).unwrap();
                flat.insert(moved, RecordId(i));
            }
        }
        tiered.assert_invariants();
        assert_eq!(tiered.len(), flat.len());
        for (lo, hi, vlo, vhi) in [
            (0.0, 300.0, 0.0, 100.0),
            (0.0, 300.0, 450.0, 700.0),
            (50.0, 90.0, 0.0, 1_000.0),
        ] {
            let q = Rect::new([lo, vlo], [hi, vhi]);
            assert_eq!(tiered.search(&q), flat.search(&q));
        }
        // Double delete reports not-live (record 2 was deleted and never
        // re-inserted).
        let gone = Rect::new([2.0, 2.0], [2.0 + 1.0 + 2.0 % 37.0, 2.0]);
        assert!(!tiered.delete(&gone, RecordId(2)).unwrap());
    }

    #[test]
    fn leveled_policy_bounds_tier_count() {
        let mut tiered = TieredTemporalIndex::<2>::new(cfg(8));
        for (rect, record) in stream(512) {
            tiered.insert(rect, record).unwrap();
        }
        tiered.assert_invariants();
        // 64 seals at fanout 2 collapse logarithmically.
        assert!(
            tiered.tier_count() <= 8,
            "tiers: {:?}",
            tiered.tier_profile()
        );
        let max_level = tiered.tier_profile().iter().map(|&(_, l, _)| l).max();
        assert!(max_level >= Some(3), "merges climbed levels");
    }

    #[test]
    fn tombstone_pressure_triggers_full_compaction() {
        let mut config = cfg(16);
        config.tombstone_limit = 24;
        let mut tiered = TieredTemporalIndex::<2>::new(config);
        let items: Vec<_> = stream(160).collect();
        for &(rect, record) in &items {
            tiered.insert(rect, record).unwrap();
        }
        for &(rect, record) in items.iter().take(120) {
            tiered.delete(&rect, record).unwrap();
        }
        tiered.assert_invariants();
        assert!(
            tiered.tombstone_count() <= 24,
            "compaction collected tombstones: {}",
            tiered.tombstone_count()
        );
        assert_eq!(tiered.len(), 40);
        let q = Rect::new([0.0, 0.0], [1_000.0, 1_000.0]);
        assert_eq!(tiered.search(&q).len(), 40);
    }

    #[test]
    fn background_mode_matches_inline() {
        let mut inline = TieredTemporalIndex::<2>::new(cfg(32));
        let mut config = cfg(32);
        config.merge_mode = MergeMode::Background;
        let mut bg = TieredTemporalIndex::<2>::new(config);
        for (rect, record) in stream(2_000) {
            inline.insert(rect, record).unwrap();
            bg.insert(rect, record).unwrap();
            // Queries are correct at any moment, merges applied or not.
            if record.raw() % 509 == 0 {
                let q = Rect::new([0.0, 0.0], [2_500.0, 100.0]);
                assert_eq!(bg.search(&q), inline.search(&q));
            }
        }
        bg.flush_merges().unwrap();
        bg.assert_invariants();
        inline.assert_invariants();
        let q = Rect::new([0.0, 0.0], [2_500.0, 100.0]);
        assert_eq!(bg.search(&q), inline.search(&q));
        assert_eq!(bg.len(), inline.len());
    }

    #[test]
    fn seal_commits_survive_reopen() {
        let path = temp("reopen.db");
        let expected_len;
        {
            let disk = Arc::new(DiskManager::create(&path).unwrap());
            let mut tiered = TieredTemporalIndex::<2>::create(cfg(32), disk).unwrap();
            for (rect, record) in stream(200) {
                tiered.insert(rect, record).unwrap();
            }
            // 6 seals committed; 8 entries still volatile in the memtable.
            expected_len = tiered.len() - tiered.memtable_len();
            assert_eq!(expected_len, 192);
        }
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let back = TieredTemporalIndex::<2>::open(cfg(32), disk).unwrap();
        back.assert_invariants();
        assert_eq!(back.len(), expected_len);
        let q = Rect::new([0.0, 0.0], [500.0, 100.0]);
        assert_eq!(back.search(&q).len(), expected_len);
    }

    #[test]
    fn tombstones_survive_checkpoint_and_reopen() {
        let path = temp("tombs.db");
        let items: Vec<_> = stream(64).collect();
        {
            let disk = Arc::new(DiskManager::create(&path).unwrap());
            let mut tiered = TieredTemporalIndex::<2>::create(cfg(16), disk).unwrap();
            for &(rect, record) in &items {
                tiered.insert(rect, record).unwrap();
            }
            for &(rect, record) in items.iter().take(10) {
                tiered.delete(&rect, record).unwrap();
            }
            // Deletes since the last seal are volatile until checkpointed.
            tiered.checkpoint().unwrap();
        }
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let back = TieredTemporalIndex::<2>::open(cfg(16), disk).unwrap();
        back.assert_invariants();
        assert_eq!(back.len(), 54);
        let q = Rect::new([0.0, 0.0], [500.0, 100.0]);
        assert_eq!(back.search(&q).len(), 54);
    }

    #[test]
    fn power_cut_during_seal_reopens_on_previous_tier_set() {
        // First run the workload cleanly to learn the write count, then
        // cut power a few writes into the final seal's commit.
        let path_a = temp("cut-a.db");
        let observe = Arc::new(ScriptedFault::observer());
        let committed;
        {
            let dcfg = DiskManagerConfig {
                fault_injector: Some(observe.clone() as Arc<_>),
                ..DiskManagerConfig::default()
            };
            let disk = Arc::new(DiskManager::create_with(&path_a, dcfg).unwrap());
            let mut tiered = TieredTemporalIndex::<2>::create(cfg(32), disk).unwrap();
            for (rect, record) in stream(96) {
                tiered.insert(rect, record).unwrap();
            }
            committed = observe.writes_seen();
        }
        let path_b = temp("cut-b.db");
        let expected_sealed;
        {
            let cut = Arc::new(ScriptedFault::power_cut(committed + 2, Some(64)));
            let dcfg = DiskManagerConfig {
                fault_injector: Some(cut as Arc<_>),
                ..DiskManagerConfig::default()
            };
            let disk = Arc::new(DiskManager::create_with(&path_b, dcfg).unwrap());
            let mut tiered = TieredTemporalIndex::<2>::create(cfg(32), disk).unwrap();
            let mut failed = false;
            for (rect, record) in stream(200) {
                if tiered.insert(rect, record).is_err() {
                    failed = true;
                    break;
                }
            }
            assert!(failed, "power cut fired mid-seal");
            expected_sealed = 96; // the three seals the cut run completed
        }
        let (disk, report) =
            DiskManager::open_repair(&path_b, DiskManagerConfig::default(), None).unwrap();
        assert!(report.is_clean(), "a pure power cut corrupts nothing");
        let back = TieredTemporalIndex::<2>::open(cfg(32), Arc::new(disk)).unwrap();
        back.assert_invariants();
        assert_eq!(back.len(), expected_sealed, "last committed tier set");
        let q = Rect::new([0.0, 0.0], [500.0, 100.0]);
        assert_eq!(back.search(&q).len(), expected_sealed);
    }

    #[test]
    fn snapshot_export_is_an_online_backup() {
        let mut tiered = TieredTemporalIndex::<2>::new(cfg(32));
        let sink = Arc::new(RingBufferSink::new(64));
        tiered.set_sink(Some(sink.clone() as Arc<dyn ObsSink>));
        for (rect, record) in stream(160) {
            tiered.insert(rect, record).unwrap();
        }
        let snap = tiered.snapshot();
        let sealed = snap.entry_count();
        assert_eq!(sealed, 160, "five seals of 32");

        // Writer keeps going while the snapshot is pinned...
        for (rect, record) in (200..400).map(|i| {
            (
                Rect::new([i as f64, 0.0], [i as f64 + 1.0, 0.0]),
                RecordId(i),
            )
        }) {
            tiered.insert(rect, record).unwrap();
        }
        // ...and the pinned view still answers for its moment.
        let q = Rect::new([0.0, 0.0], [1_000.0, 100.0]);
        assert_eq!(snap.search(&q).len(), 160);

        // Export to a separate disk and read it back as a full index.
        let path = temp("export.db");
        let target = DiskManager::create(&path).unwrap();
        snap.export_to(&target).unwrap();
        drop(target);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let back = TieredTemporalIndex::<2>::open(cfg(32), disk).unwrap();
        back.assert_invariants();
        assert_eq!(back.search(&q), snap.search(&q));
        assert_eq!(sink.events_of(EventKind::TierExported).len(), 1);
        assert!(!sink.events_of(EventKind::TierSealed).is_empty());
    }

    #[test]
    fn telemetry_tracks_the_lifecycle() {
        let mut tiered = TieredTemporalIndex::<2>::new(cfg(16));
        let telemetry = Arc::new(TieredTelemetry::new());
        tiered.set_telemetry(Some(telemetry.clone()));
        for (rect, record) in stream(160) {
            tiered.insert(rect, record).unwrap();
        }
        assert_eq!(telemetry.seals_total.load(Ordering::Relaxed), 10);
        assert_eq!(telemetry.sealed_entries_total.load(Ordering::Relaxed), 160);
        assert!(telemetry.merges_total.load(Ordering::Relaxed) >= 4);
        assert_eq!(
            telemetry.tier_count.load(Ordering::Relaxed),
            tiered.tier_count() as u64
        );
        assert!(!telemetry.seal_latency.is_empty());
        assert!(!telemetry.merge_latency.is_empty());

        let registry = segidx_obs::MetricsRegistry::new();
        telemetry.register(&registry, &[]);
        let snap = registry.snapshot();
        assert!(snap
            .get("segidx_temporal_tiers", &[("component", "temporal")])
            .is_some());
        assert!(snap
            .get("segidx_temporal_seals_total", &[("component", "temporal")])
            .is_some());
    }
}
