//! The mutable memtable: where recent intervals live before a seal.
//!
//! Two staging policies, picked by how `sample_target` relates to the seal
//! threshold:
//!
//! * `sample_target == expected` (the default): the memtable stays a flat
//!   append buffer until the seal drains it — O(1) inserts, and the seal's
//!   bulk loader does all the structuring work once. Queries scan the
//!   buffer linearly, bounded by the seal threshold.
//! * `sample_target < expected`: reuses the paper's skeleton build path
//!   (§4) — the first `sample_target` inserts are buffered flat, then fed
//!   through [`DistributionPredictor`] to build a pre-partitioned skeleton
//!   tree sized for the seal threshold, and everything after them is
//!   inserted into that tree. Memtable queries pay tree traversals instead
//!   of a scan, at the price of per-insert tree maintenance.

use segidx_core::{build_skeleton, DistributionPredictor, IndexConfig, RecordId, Tree};
use segidx_geom::Rect;
use std::collections::HashSet;

#[derive(Debug)]
enum Stage<const D: usize> {
    /// Flat append-only buffer (queries scan it linearly).
    Buffer(Vec<(Rect<D>, RecordId)>),
    /// Skeleton tree built from the buffered sample. Boxed: a `Tree`
    /// is an order of magnitude larger than the buffer variant, and
    /// the memtable spends most configurations never holding one.
    Tree(Box<Tree<D>>),
}

/// The mutable tier. Not thread-safe; the owning index serializes access.
#[derive(Debug)]
pub struct Memtable<const D: usize> {
    config: IndexConfig,
    /// Entries expected per seal; sizes the skeleton.
    expected: usize,
    /// Buffer size before the skeleton is built (the paper's `T`).
    sample_target: usize,
    stage: Stage<D>,
    ids: HashSet<RecordId>,
}

impl<const D: usize> Memtable<D> {
    /// Creates an empty memtable. `sample_target` entries are buffered
    /// before the skeleton tree is built for `expected` total entries.
    pub fn new(config: IndexConfig, expected: usize, sample_target: usize) -> Self {
        let sample_target = sample_target.clamp(1, expected.max(1));
        Self {
            config,
            expected: expected.max(1),
            sample_target,
            stage: Stage::Buffer(Vec::with_capacity(sample_target)),
            ids: HashSet::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the memtable holds nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `record` currently lives in the memtable.
    pub fn contains(&self, record: RecordId) -> bool {
        self.ids.contains(&record)
    }

    /// Adds an entry. Record ids must be unique among live entries (the
    /// temporal table guarantees this; duplicate ids would make shadowing
    /// checks ambiguous).
    pub fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        debug_assert!(!self.ids.contains(&record), "duplicate live record id");
        self.ids.insert(record);
        match &mut self.stage {
            Stage::Buffer(buf) => {
                buf.push((rect, record));
                // A sample target at the seal threshold means "never": the
                // seal drains the buffer before a skeleton could earn its
                // build cost.
                if buf.len() >= self.sample_target && self.sample_target < self.expected {
                    self.promote();
                }
            }
            Stage::Tree(tree) => tree.insert(rect, record),
        }
    }

    /// Physically removes an entry. `rect` must be the exact rectangle the
    /// entry was inserted with. Returns whether it was present.
    pub fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        if !self.ids.remove(&record) {
            return false;
        }
        match &mut self.stage {
            Stage::Buffer(buf) => {
                // Scan from the tail: deletes overwhelmingly target recent
                // entries (a table update closes the version it just
                // opened). Order is free here — seals re-sort via the bulk
                // loader and queries scan everything.
                let at = buf
                    .iter()
                    .rposition(|&(_, r)| r == record)
                    .expect("id table said the entry was present");
                buf.swap_remove(at);
                true
            }
            Stage::Tree(tree) => {
                let removed = tree.delete(rect, record);
                debug_assert!(removed, "id table said the entry was present");
                removed
            }
        }
    }

    /// Record ids intersecting `query`, sorted ascending and deduped — the
    /// same contract as [`Tree::search`].
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        match &self.stage {
            Stage::Buffer(buf) => {
                let mut out: Vec<RecordId> = buf
                    .iter()
                    .filter(|(r, _)| r.intersects(query))
                    .map(|&(_, id)| id)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            Stage::Tree(tree) => tree.search(query),
        }
    }

    /// Takes every entry out, resetting the memtable to its buffer stage.
    pub fn drain(&mut self) -> Vec<(Rect<D>, RecordId)> {
        self.ids.clear();
        let stage = std::mem::replace(
            &mut self.stage,
            Stage::Buffer(Vec::with_capacity(self.sample_target)),
        );
        match stage {
            Stage::Buffer(buf) => buf,
            Stage::Tree(tree) => tree.iter_entries().collect(),
        }
    }

    /// Builds the skeleton tree from the buffered sample and moves every
    /// buffered entry into it.
    fn promote(&mut self) {
        let Stage::Buffer(buf) = &mut self.stage else {
            return;
        };
        let buf = std::mem::take(buf);
        // Domain = sample bounding box, degenerate dimensions widened so
        // the histogram has something to cut. Later inserts may fall
        // outside (monotone streams will); the tree's root region grows to
        // cover them like any R-Tree insert.
        let mut lo = [f64::MAX; D];
        let mut hi = [f64::MIN; D];
        for (r, _) in &buf {
            for d in 0..D {
                lo[d] = lo[d].min(r.lo(d));
                hi[d] = hi[d].max(r.hi(d));
            }
        }
        for d in 0..D {
            if hi[d] - lo[d] < 1.0 {
                hi[d] = lo[d] + 1.0;
            }
        }
        let domain = Rect::new(lo, hi);
        let mut predictor = DistributionPredictor::new(domain, self.expected, buf.len());
        for (r, _) in &buf {
            predictor.offer(*r);
        }
        let (spec, _) = predictor.finish();
        let mut tree = build_skeleton(self.config.clone(), &spec);
        for (rect, record) in buf {
            tree.insert(rect, record);
        }
        self.stage = Stage::Tree(Box::new(tree));
    }
}
