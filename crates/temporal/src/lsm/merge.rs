//! Leveled merge policy and the background merge worker.
//!
//! Tiers are kept oldest-first (ascending sequence) with levels monotone
//! non-increasing toward the tail: seals append level-0 tiers at the tail,
//! and merging a contiguous run of equal-level tiers replaces it in place
//! with one tier a level up whose sequence is the run's maximum — both
//! operations preserve the invariant, so equal-level runs are always
//! contiguous and the planner only has to scan for them.
//!
//! A merge is a pure function of its inputs (immutable trees + a tombstone
//! snapshot), which is what makes the background mode safe: the worker
//! packs the surviving entries into a new tree while the foreground keeps
//! sealing, and the result is spliced in afterwards. Entries dropped here
//! are exactly those a query would have filtered as shadowed, so merging
//! never changes query results.

use super::tier::{gather, Tier};
use segidx_core::{bulk, IndexConfig, RecordId};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// When merges run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MergeMode {
    /// Merges run synchronously inside [`seal`]. Deterministic; the mode
    /// the differential and crash harnesses use.
    ///
    /// [`seal`]: super::TieredTemporalIndex::seal
    #[default]
    Inline,
    /// Merges run on a dedicated worker thread; results are spliced in by
    /// [`poll_merges`]/[`flush_merges`] or opportunistically at the next
    /// seal.
    ///
    /// [`poll_merges`]: super::TieredTemporalIndex::poll_merges
    /// [`flush_merges`]: super::TieredTemporalIndex::flush_merges
    Background,
}

/// Everything a merge needs, snapshotted at dispatch time.
pub(crate) struct MergeJob<const D: usize> {
    /// Input tiers (cheap `Arc` clones), ascending sequence, contiguous in
    /// the owner's tier list.
    pub tiers: Vec<Tier<D>>,
    /// Tombstone snapshot. Tombstones created after dispatch carry higher
    /// sequences than the merged tier and still shadow it at query time.
    pub tombstones: HashMap<RecordId, u64>,
    /// Level of the output tier.
    pub level: u32,
    pub config: IndexConfig,
}

/// A finished merge, ready to splice into the tier list.
pub(crate) struct MergeOutcome<const D: usize> {
    /// Sequences of the tiers this merge consumed.
    pub input_seqs: Vec<u64>,
    /// The replacement tier (sequence = max input sequence).
    pub tier: Tier<D>,
    /// Entries dropped as shadowed or tombstoned.
    pub dropped: u64,
    /// Merge wall time in nanoseconds.
    pub nanos: u64,
}

/// Runs a merge to completion: gather, filter stale copies, pack.
pub(crate) fn run_merge<const D: usize>(job: MergeJob<D>) -> MergeOutcome<D> {
    let t0 = Instant::now();
    let input_seqs: Vec<u64> = job.tiers.iter().map(|t| t.seq).collect();
    let max_seq = *input_seqs.last().expect("merge of at least one tier");
    let mut items = Vec::new();
    let mut dropped = 0u64;
    for (i, tier) in job.tiers.iter().enumerate() {
        let newer = &job.tiers[i + 1..];
        for (rect, record) in gather(&tier.tree) {
            let tombstoned = job.tombstones.get(&record).is_some_and(|&ts| ts > tier.seq);
            let shadowed = tombstoned || newer.iter().any(|t| t.contains(record));
            if shadowed {
                dropped += 1;
            } else {
                items.push((rect, record));
            }
        }
    }
    let tree = bulk::bulk_load(job.config, items);
    let tier = Tier::new(tree, max_seq, job.level);
    MergeOutcome {
        input_seqs,
        tier,
        dropped,
        nanos: t0.elapsed().as_nanos() as u64,
    }
}

/// Picks the next run to merge: the lowest-level (newest) maximal run of
/// equal-level tiers at least `fanout` long. Returns the run's index range
/// and the output level.
pub(crate) fn plan_run<const D: usize>(
    tiers: &[Tier<D>],
    fanout: usize,
) -> Option<(Range<usize>, u32)> {
    if tiers.len() < fanout {
        return None;
    }
    // Levels are monotone non-increasing, so scanning from the tail visits
    // runs lowest-level first.
    let mut end = tiers.len();
    while end > 0 {
        let level = tiers[end - 1].level;
        let mut start = end;
        while start > 0 && tiers[start - 1].level == level {
            start -= 1;
        }
        if end - start >= fanout {
            return Some((start..end, level + 1));
        }
        end = start;
    }
    None
}

/// The single background merge worker. At most one job is in flight.
pub(crate) struct MergeWorker<const D: usize> {
    job_tx: Option<mpsc::Sender<MergeJob<D>>>,
    result_rx: mpsc::Receiver<MergeOutcome<D>>,
    handle: Option<JoinHandle<()>>,
    in_flight: bool,
}

impl<const D: usize> MergeWorker<D> {
    pub fn spawn() -> Self {
        let (job_tx, job_rx) = mpsc::channel::<MergeJob<D>>();
        let (result_tx, result_rx) = mpsc::channel::<MergeOutcome<D>>();
        let handle = std::thread::Builder::new()
            .name("segidx-tier-merge".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    if result_tx.send(run_merge(job)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn merge worker");
        Self {
            job_tx: Some(job_tx),
            result_rx,
            handle: Some(handle),
            in_flight: false,
        }
    }

    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Submits a job. Callers must ensure nothing is in flight.
    pub fn submit(&mut self, job: MergeJob<D>) {
        assert!(!self.in_flight, "one merge in flight at a time");
        self.job_tx
            .as_ref()
            .expect("worker alive")
            .send(job)
            .expect("merge worker alive");
        self.in_flight = true;
    }

    /// Takes the result if the in-flight merge has finished.
    pub fn try_take(&mut self) -> Option<MergeOutcome<D>> {
        if !self.in_flight {
            return None;
        }
        match self.result_rx.try_recv() {
            Ok(out) => {
                self.in_flight = false;
                Some(out)
            }
            Err(_) => None,
        }
    }

    /// Blocks until the in-flight merge (if any) finishes.
    pub fn wait_take(&mut self) -> Option<MergeOutcome<D>> {
        if !self.in_flight {
            return None;
        }
        self.in_flight = false;
        self.result_rx.recv().ok()
    }
}

impl<const D: usize> Drop for MergeWorker<D> {
    fn drop(&mut self) {
        self.job_tx.take(); // hang up: the worker loop exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
