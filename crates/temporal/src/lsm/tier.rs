//! Sealed tiers and the on-disk manifest.
//!
//! A [`Tier`] is an immutable packed tree plus the bookkeeping the tiered
//! index needs for precedence checks: its sequence number (newer sequences
//! shadow older copies of the same record) and a sorted id table for O(log
//! n) membership tests. The [`Manifest`] is the single page the disk
//! manager's committed-root pointer names; committing it is the atomic
//! boundary of every seal and merge.

use segidx_core::{persist, RecordId, Tree};
use segidx_geom::Rect;
use segidx_storage::{
    ByteReader, ByteWriter, DiskManager, PageId, Result, SizeClass, StorageError,
};
use std::collections::HashMap;
use std::sync::Arc;

const MANIFEST_MAGIC: u32 = 0x5347_544D; // "SGTM"
const MANIFEST_VERSION: u32 = 1;

/// One immutable sealed tier.
#[derive(Clone)]
pub struct Tier<const D: usize> {
    /// The packed tree holding this tier's entries. Shared so pinned
    /// snapshots and the background merge worker read it without copying.
    pub tree: Arc<Tree<D>>,
    /// Record ids present in this tier, sorted ascending. Built once at
    /// seal/merge/load; used for shadowing checks.
    pub ids: Arc<Vec<RecordId>>,
    /// Monotone sequence: a record copy in a higher-sequence tier (or the
    /// memtable) shadows copies in lower-sequence tiers.
    pub seq: u64,
    /// Leveled-compaction level: seals enter at 0, each merge of a run
    /// produces a tier one level up.
    pub level: u32,
    /// Metadata page of the persisted tree, once written. `None` until the
    /// tier's first manifest commit (and always `None` in-memory).
    pub meta: Option<PageId>,
}

impl<const D: usize> Tier<D> {
    /// Wraps a freshly packed tree into a tier, deriving its id table.
    pub fn new(tree: Tree<D>, seq: u64, level: u32) -> Self {
        let mut ids: Vec<RecordId> = tree.iter_entries().map(|(_, r)| r).collect();
        ids.sort_unstable();
        ids.dedup();
        Self {
            tree: Arc::new(tree),
            ids: Arc::new(ids),
            seq,
            level,
            meta: None,
        }
    }

    /// Whether this tier holds a copy of `record`.
    pub fn contains(&self, record: RecordId) -> bool {
        self.ids.binary_search(&record).is_ok()
    }

    /// Entries stored in this tier (including copies shadowed by newer
    /// tiers).
    pub fn entry_count(&self) -> usize {
        self.tree.entry_count()
    }
}

impl<const D: usize> std::fmt::Debug for Tier<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tier")
            .field("seq", &self.seq)
            .field("level", &self.level)
            .field("entries", &self.entry_count())
            .field("meta", &self.meta)
            .finish()
    }
}

/// The decoded manifest: everything needed to rebuild the sealed half of a
/// tiered index after a crash. Memtable contents are volatile by design —
/// a seal is the durability boundary.
#[derive(Debug)]
pub struct Manifest {
    /// `(tree meta page, seq, level)` per tier, in tier order (oldest
    /// first).
    pub tiers: Vec<(PageId, u64, u32)>,
    /// Record-level tombstones and the sequence they were created at.
    pub tombstones: Vec<(RecordId, u64)>,
    /// The next unused sequence number.
    pub next_seq: u64,
}

/// Encodes and writes a manifest page, returning its id. The caller still
/// owns root-pointer flip + sync.
pub fn write_manifest<const D: usize>(
    disk: &DiskManager,
    tiers: &[Tier<D>],
    tombstones: &HashMap<RecordId, u64>,
    next_seq: u64,
) -> Result<PageId> {
    let mut w = ByteWriter::with_capacity(64 + tiers.len() * 28 + tombstones.len() * 16);
    w.put_u32(MANIFEST_MAGIC);
    w.put_u32(MANIFEST_VERSION);
    w.put_u32(D as u32);
    w.put_u32(tiers.len() as u32);
    for t in tiers {
        let meta = t
            .meta
            .ok_or_else(|| StorageError::BadMeta("tier not yet persisted".into()))?;
        w.put_u64(meta.raw());
        w.put_u64(t.seq);
        w.put_u32(t.level);
    }
    w.put_u64(next_seq);
    // Sort tombstones so the manifest image is deterministic for a given
    // logical state (the crash sweep compares recovered state bit-for-bit).
    let mut tombs: Vec<(RecordId, u64)> = tombstones.iter().map(|(&r, &s)| (r, s)).collect();
    tombs.sort_unstable();
    w.put_u32(tombs.len() as u32);
    for (record, seq) in tombs {
        w.put_u64(record.raw());
        w.put_u64(seq);
    }
    let class = SizeClass::fitting(w.len())
        .ok_or_else(|| StorageError::BadMeta("manifest exceeds the largest page size".into()))?;
    let page_id = disk.allocate(class)?;
    let mut page = segidx_storage::Page::new(page_id, class);
    page.set_payload(w.as_bytes())?;
    disk.write_page(&page)?;
    Ok(page_id)
}

/// Reads a manifest page back.
pub fn read_manifest(disk: &DiskManager, page: PageId, dims: usize) -> Result<Manifest> {
    let page = disk.read_page(page)?;
    let mut r = ByteReader::new(page.payload());
    let magic = r.get_u32()?;
    if magic != MANIFEST_MAGIC {
        return Err(StorageError::BadMeta(format!(
            "bad manifest magic {magic:#x}"
        )));
    }
    let version = r.get_u32()?;
    if version != MANIFEST_VERSION {
        return Err(StorageError::BadMeta(format!(
            "unsupported manifest format {version}"
        )));
    }
    let d = r.get_u32()? as usize;
    if d != dims {
        return Err(StorageError::BadMeta(format!(
            "manifest has {d} dimensions, expected {dims}"
        )));
    }
    let tier_count = r.get_u32()? as usize;
    let mut tiers = Vec::with_capacity(tier_count);
    for _ in 0..tier_count {
        let meta = PageId(r.get_u64()?);
        let seq = r.get_u64()?;
        let level = r.get_u32()?;
        tiers.push((meta, seq, level));
    }
    let next_seq = r.get_u64()?;
    let tomb_count = r.get_u32()? as usize;
    let mut tombstones = Vec::with_capacity(tomb_count);
    for _ in 0..tomb_count {
        let record = RecordId(r.get_u64()?);
        let seq = r.get_u64()?;
        tombstones.push((record, seq));
    }
    Ok(Manifest {
        tiers,
        tombstones,
        next_seq,
    })
}

/// Loads every tier named by `manifest` back into memory.
pub fn load_tiers<const D: usize>(disk: &DiskManager, manifest: &Manifest) -> Result<Vec<Tier<D>>> {
    let mut tiers = Vec::with_capacity(manifest.tiers.len());
    for &(meta, seq, level) in &manifest.tiers {
        let tree: Tree<D> = persist::load(disk, meta)?;
        let mut tier = Tier::new(tree, seq, level);
        tier.meta = Some(meta);
        tiers.push(tier);
    }
    Ok(tiers)
}

/// Gathers every entry of `tree` (leaf entries and spanning records alike).
pub fn gather<const D: usize>(tree: &Tree<D>) -> Vec<(Rect<D>, RecordId)> {
    tree.iter_entries().collect()
}
