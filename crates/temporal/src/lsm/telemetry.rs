//! Observability for the tiered temporal index.
//!
//! One [`TieredTelemetry`] is shared between the foreground index and the
//! background merge worker; [`TieredTelemetry::register`] exports it as the
//! `segidx_temporal_*` metric family (labelled `component="temporal"`), the
//! same registry scheme the concurrent service and server use.

use segidx_obs::{LatencyHistogram, Metric, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters, gauges, and latency histograms for the tier lifecycle.
#[derive(Debug, Default)]
pub struct TieredTelemetry {
    /// Gauge: sealed tiers currently live.
    pub tier_count: AtomicU64,
    /// Gauge: entries buffered in the mutable memtable.
    pub memtable_entries: AtomicU64,
    /// Gauge: entries across all sealed tiers (stale copies included).
    pub sealed_entries: AtomicU64,
    /// Gauge: live tombstones shadowing sealed entries.
    pub tombstones: AtomicU64,
    /// Counter: memtable seals performed.
    pub seals_total: AtomicU64,
    /// Counter: tier merges performed.
    pub merges_total: AtomicU64,
    /// Counter: entries sealed into tiers, cumulative.
    pub sealed_entries_total: AtomicU64,
    /// Counter: entries written out by merges, cumulative.
    pub merged_entries_total: AtomicU64,
    /// Counter: entries dropped by merges as stale (shadowed or tombstoned).
    pub merge_dropped_total: AtomicU64,
    /// Counter: snapshot exports completed.
    pub exports_total: AtomicU64,
    /// Seal wall time (pack + commit), nanoseconds.
    pub seal_latency: LatencyHistogram,
    /// Merge wall time (gather + filter + pack), nanoseconds.
    pub merge_latency: LatencyHistogram,
}

impl TieredTelemetry {
    /// Creates a fresh, zeroed telemetry block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collector exporting the `segidx_temporal_*` family.
    ///
    /// `labels` is appended to the implicit `component="temporal"` label on
    /// every metric (use it to distinguish multiple tiered indexes).
    pub fn register(self: &Arc<Self>, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let t = Arc::clone(self);
        let extra: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        registry.register(Box::new(move |out: &mut Vec<Metric>| {
            let mut l: Vec<(&str, &str)> = vec![("component", "temporal")];
            for (k, v) in &extra {
                l.push((k.as_str(), v.as_str()));
            }
            out.push(Metric::gauge(
                "segidx_temporal_tiers",
                &l,
                t.tier_count.load(Ordering::Relaxed) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_temporal_memtable_entries",
                &l,
                t.memtable_entries.load(Ordering::Relaxed) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_temporal_sealed_entries",
                &l,
                t.sealed_entries.load(Ordering::Relaxed) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_temporal_tombstones",
                &l,
                t.tombstones.load(Ordering::Relaxed) as f64,
            ));
            out.push(Metric::counter(
                "segidx_temporal_seals_total",
                &l,
                t.seals_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "segidx_temporal_merges_total",
                &l,
                t.merges_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "segidx_temporal_sealed_entries_total",
                &l,
                t.sealed_entries_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "segidx_temporal_merged_entries_total",
                &l,
                t.merged_entries_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "segidx_temporal_merge_dropped_total",
                &l,
                t.merge_dropped_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "segidx_temporal_exports_total",
                &l,
                t.exports_total.load(Ordering::Relaxed),
            ));
            out.push(Metric::histogram(
                "segidx_temporal_seal_latency_nanos",
                &l,
                t.seal_latency.snapshot(),
            ));
            out.push(Metric::histogram(
                "segidx_temporal_merge_latency_nanos",
                &l,
                t.merge_latency.snapshot(),
            ));
        }));
    }
}
