//! Property tests: the temporal table against a naive version log.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_temporal::{TemporalConfig, TemporalTable};

const HORIZON: f64 = 1_000.0;

#[derive(Clone, Debug)]
enum Op {
    /// Update key at a time offset after its last version (keeps per-key
    /// order valid by construction).
    Update { key: u64, value: f64, advance: f64 },
    /// Close a key's open version.
    Delete { key: u64, advance: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..20, -1000.0..1000.0f64, 0.0..40.0f64)
            .prop_map(|(key, value, advance)| Op::Update { key, value, advance }),
        1 => (0u64..20, 0.0..40.0f64)
            .prop_map(|(key, advance)| Op::Delete { key, advance }),
    ]
}

/// Naive model: a list of (key, value, from, to).
#[derive(Default)]
struct Model {
    versions: Vec<(u64, f64, f64, Option<f64>)>,
    open: std::collections::HashMap<u64, usize>,
    clock: std::collections::HashMap<u64, f64>,
}

impl Model {
    fn as_of(&self, t: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .versions
            .iter()
            .filter(|(_, _, from, to)| t >= *from && to.map_or(true, |to| t < to))
            .map(|(k, v, _, _)| (*k, *v))
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn table_matches_model(ops in vec(op_strategy(), 1..120), probes in vec(0.0..HORIZON, 1..10)) {
        let mut table = TemporalTable::new(TemporalConfig {
            time_horizon: HORIZON * 10.0,
            ..TemporalConfig::default()
        });
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Update { key, value, advance } => {
                    let t = model.clock.get(key).copied().unwrap_or(0.0) + advance;
                    model.clock.insert(*key, t);
                    if let Some(&vi) = model.open.get(key) {
                        model.versions[vi].3 = Some(t.max(model.versions[vi].2));
                    }
                    model.open.insert(*key, model.versions.len());
                    model.versions.push((*key, *value, t, None));
                    table.insert(*key, *value, t);
                }
                Op::Delete { key, advance } => {
                    let t = model.clock.get(key).copied().unwrap_or(0.0) + advance;
                    let expected = model.open.contains_key(key);
                    if expected {
                        model.clock.insert(*key, t);
                        let vi = model.open.remove(key).unwrap();
                        model.versions[vi].3 = Some(t.max(model.versions[vi].2));
                        prop_assert!(table.delete_key(*key, t));
                    } else {
                        prop_assert!(!table.delete_key(*key, t));
                    }
                }
            }
        }

        // As-of snapshots agree at every probe time.
        for &t in &probes {
            let got: Vec<(u64, f64)> = table
                .as_of(t)
                .into_iter()
                .map(|(_, v)| (v.key, v.value))
                .collect();
            let mut got_sorted = got;
            got_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(got_sorted, model.as_of(t), "as_of({})", t);
        }

        // Structure stays sound.
        let issues = table.index().check_invariants();
        prop_assert!(issues.is_empty(), "{issues:?}");
        prop_assert_eq!(table.version_count(), model.versions.len());
    }
}
