//! Differential property tests: the tiered LSM index against the flat
//! single-tree model, and the tiered-backend table against the flat table.
//!
//! Seals and merges are forced mid-stream (tiny thresholds plus explicit
//! `seal`/`compact` ops) so every query races the full tier lifecycle:
//! memtable-only, freshly sealed, mid-merge shadowing, post-compaction.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::{Interval, Rect};
use segidx_temporal::{
    MergeMode, TemporalBackend, TemporalConfig, TemporalTable, TieredConfig, TieredTemporalIndex,
};

const HORIZON: f64 = 1_000.0;

#[derive(Clone, Debug)]
enum Op {
    /// Open a new version of `key` (closing its predecessor).
    Update { key: u64, value: f64, advance: f64 },
    /// Close a key's open version.
    Delete { key: u64, advance: f64 },
    /// Physically expire an old closed version (retention trimming).
    Expire { slot: usize },
    /// Force-seal the tiered memtable mid-stream.
    Seal,
    /// Force a full compaction mid-stream.
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..16, -500.0..500.0f64, 0.0..30.0f64)
            .prop_map(|(key, value, advance)| Op::Update { key, value, advance }),
        2 => (0u64..16, 0.0..30.0f64)
            .prop_map(|(key, advance)| Op::Delete { key, advance }),
        2 => (0usize..64).prop_map(|slot| Op::Expire { slot }),
        1 => Just(Op::Seal),
        1 => Just(Op::Compact),
    ]
}

fn tiered_config(seal_threshold: usize, merge_mode: MergeMode) -> TieredConfig {
    TieredConfig {
        seal_threshold,
        level_fanout: 2,
        tombstone_limit: 16,
        merge_mode,
        ..TieredConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The raw tiered index returns bit-identical results to one flat
    /// tree under interleaved inserts and deletes with seals and merges
    /// forced mid-stream.
    #[test]
    fn tiered_index_matches_flat_tree(
        ops in vec((0u64..200, 0.0..900.0f64, 1.0..80.0f64, 0u8..8), 1..200),
        queries in vec((0.0..1_000.0f64, 0.0..200.0f64, 0.0..1_000.0f64, 0.0..200.0f64), 1..8),
        seal_threshold in 4usize..24,
    ) {
        let mut flat: Tree<2> = Tree::new(IndexConfig::srtree());
        let mut tiered = TieredTemporalIndex::<2>::new(
            tiered_config(seal_threshold, MergeMode::Inline));
        let mut live: Vec<(Rect<2>, RecordId)> = Vec::new();
        let mut next_record = 0u64;
        for &(_, start, len, kind) in &ops {
            if kind == 0 && !live.is_empty() {
                // Delete a pseudo-random live record.
                let idx = (start as usize + len as usize) % live.len();
                let (rect, record) = live.swap_remove(idx);
                prop_assert!(flat.delete(&rect, record));
                prop_assert!(tiered.delete(&rect, record).unwrap());
            } else if kind == 1 {
                tiered.seal().unwrap();
            } else if kind == 2 {
                tiered.compact().unwrap();
            } else {
                let rect = Rect::new([start, len], [start + len, len]);
                let record = RecordId(next_record);
                next_record += 1;
                flat.insert(rect, record);
                tiered.insert(rect, record).unwrap();
                live.push((rect, record));
            }
        }
        tiered.assert_invariants();
        prop_assert_eq!(tiered.len(), flat.len());
        for &(a, b, c, d) in &queries {
            let q = Rect::new([a.min(c), b.min(d)], [a.max(c), b.max(d)]);
            prop_assert_eq!(tiered.search(&q), flat.search(&q));
        }
        // Full-domain sweep is the strongest equality check.
        let all = Rect::new([-10.0, -10.0], [2_000.0, 2_000.0]);
        prop_assert_eq!(tiered.search(&all), flat.search(&all));
    }

    /// The tiered-backend table answers `as_of`/`range`/`within` exactly
    /// like the flat-backend table under version churn, expiry, and forced
    /// seals/compactions.
    #[test]
    fn tiered_table_matches_flat_table(
        ops in vec(op_strategy(), 1..150),
        probes in vec(0.0..HORIZON, 1..8),
        background in any::<bool>(),
    ) {
        let mode = if background { MergeMode::Background } else { MergeMode::Inline };
        let mut flat = TemporalTable::new(TemporalConfig {
            time_horizon: HORIZON * 10.0,
            ..TemporalConfig::default()
        });
        let mut tiered = TemporalTable::new(TemporalConfig {
            time_horizon: HORIZON * 10.0,
            backend: TemporalBackend::Tiered(tiered_config(8, mode)),
            ..TemporalConfig::default()
        });
        let mut clock: std::collections::HashMap<u64, f64> = Default::default();
        for op in &ops {
            match op {
                Op::Update { key, value, advance } => {
                    let t = clock.get(key).copied().unwrap_or(0.0) + advance;
                    clock.insert(*key, t);
                    flat.insert(*key, *value, t);
                    tiered.insert(*key, *value, t);
                }
                Op::Delete { key, advance } => {
                    let t = clock.get(key).copied().unwrap_or(0.0) + advance;
                    clock.insert(*key, t);
                    prop_assert_eq!(flat.delete_key(*key, t), tiered.delete_key(*key, t));
                }
                Op::Expire { slot } => {
                    let id = segidx_temporal::VersionId(*slot as u64);
                    prop_assert_eq!(flat.expire(id), tiered.expire(id));
                }
                Op::Seal => tiered.tiered_index_mut().unwrap().seal().unwrap(),
                Op::Compact => tiered.tiered_index_mut().unwrap().compact().unwrap(),
            }
        }
        tiered.tiered_index().unwrap().assert_invariants();
        for &t in &probes {
            prop_assert_eq!(flat.as_of(t), tiered.as_of(t), "as_of({})", t);
            let window = Interval::new(t, t + 120.0);
            let band = Interval::new(-200.0, 200.0);
            prop_assert_eq!(flat.range(window, band), tiered.range(window, band));
            prop_assert_eq!(
                flat.try_within(window, 5.0, 60.0).unwrap(),
                tiered.try_within(window, 5.0, 60.0).unwrap()
            );
        }
        prop_assert_eq!(flat.current(), tiered.current());
        prop_assert_eq!(flat.version_count(), tiered.version_count());
    }
}
