//! Snapshot semantics: a reader pinned at epoch *N* continues to observe
//! exactly epoch *N*'s tree — same results, same invariants — no matter
//! how many later epochs the writer publishes, for all four paper
//! variants, including delete-heavy streams.

use segidx_concurrent::{ConcurrentIndex, IndexOp, SubmitError};
use segidx_core::tree::Tree;
use segidx_core::{IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree};
use segidx_geom::Rect;
use segidx_workloads::{queries_for_qar, DataDistribution, DOMAIN_MAX};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N: usize = 4_000;

/// Each paper variant, pre-loaded with the first half of `dataset`, as a
/// bare `Tree` ready for concurrent serving.
fn variant_trees(dataset: &segidx_workloads::Dataset) -> Vec<(&'static str, Tree<2>)> {
    let half = &dataset.records[..N / 2];
    let domain = Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX]);
    let mut rtree = RTree::<2>::new();
    let mut srtree = SRTree::<2>::new();
    let mut sk_r = SkeletonRTree::<2>::with_prediction(domain, N, N / 10);
    let mut sk_sr = SkeletonSRTree::<2>::with_prediction(domain, N, N / 10);
    for (r, id) in half {
        rtree.insert(*r, *id);
        srtree.insert(*r, *id);
        sk_r.insert(*r, *id);
        sk_sr.insert(*r, *id);
    }
    vec![
        ("R-Tree", rtree.into_tree()),
        ("SR-Tree", srtree.into_tree()),
        ("Skeleton R-Tree", sk_r.into_tree()),
        ("Skeleton SR-Tree", sk_sr.into_tree()),
    ]
}

fn submit_all(index: &ConcurrentIndex<2>, ops: impl IntoIterator<Item = IndexOp<2>>) {
    for op in ops {
        loop {
            match index.submit(op) {
                Ok(_) => break,
                Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
}

#[test]
fn pinned_snapshot_is_immutable_across_later_epochs_all_variants() {
    let dataset = DataDistribution::I3.generate(N, 17);
    let queries: Vec<Rect<2>> = [0.01, 1.0, 500.0]
        .iter()
        .flat_map(|&q| queries_for_qar(q, 10, 7).queries)
        .collect();

    for (name, tree) in variant_trees(&dataset) {
        let index = ConcurrentIndex::builder(tree).start().unwrap();

        // Pin epoch N and record everything it answers.
        let pinned = index.snapshot();
        let pinned_epoch = pinned.epoch();
        let pinned_len = pinned.len();
        let pinned_results: Vec<Vec<RecordId>> = queries.iter().map(|q| pinned.search(q)).collect();

        // Publish N+1: the second half of the dataset.
        submit_all(
            &index,
            dataset.records[N / 2..]
                .iter()
                .map(|(r, id)| IndexOp::Insert {
                    rect: *r,
                    record: *id,
                }),
        );
        index.flush().unwrap();
        assert!(index.epoch() > pinned_epoch, "{name}: N+1 published");

        // Publish N+2 (and beyond): delete a third of the original half.
        submit_all(
            &index,
            dataset.records[..N / 6]
                .iter()
                .map(|(r, id)| IndexOp::Delete {
                    rect: *r,
                    record: *id,
                }),
        );
        index.flush().unwrap();
        assert!(index.epoch() >= pinned_epoch + 2, "{name}: N+2 published");

        // The pinned reader still sees exactly epoch N.
        assert_eq!(pinned.epoch(), pinned_epoch, "{name}");
        assert_eq!(pinned.len(), pinned_len, "{name}: len frozen");
        for (q, expect) in queries.iter().zip(&pinned_results) {
            assert_eq!(&pinned.search(q), expect, "{name}: results frozen");
        }
        pinned.assert_invariants();

        // A fresh snapshot sees the new world, also valid.
        let fresh = index.snapshot();
        assert_eq!(fresh.len(), N - N / 6, "{name}");
        fresh.assert_invariants();
        drop(pinned);
        drop(fresh);

        // With no reader pinned below the current epoch, the next commit
        // reclaims every retired snapshot.
        submit_all(
            &index,
            [IndexOp::Insert {
                rect: Rect::new([1.0, 1.0], [2.0, 2.0]),
                record: RecordId(u64::MAX - 1),
            }],
        );
        index.flush().unwrap();
        assert_eq!(index.retired_snapshots(), 0, "{name}: reclaimed");
    }
}

#[test]
fn delete_heavy_stream_keeps_pinned_snapshot_intact() {
    let dataset = DataDistribution::R1.generate(N, 5);
    for (name, tree) in variant_trees(&dataset) {
        let index = ConcurrentIndex::builder(tree)
            .max_batch(64)
            .start()
            .unwrap();
        let whole = Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX]);

        let pinned = index.snapshot();
        let before: BTreeSet<RecordId> = pinned.search(&whole).into_iter().collect();
        assert_eq!(before.len(), N / 2, "{name}: pinned sees the full load");

        // Delete *everything* the index currently holds, across several
        // group commits.
        submit_all(
            &index,
            dataset.records[..N / 2]
                .iter()
                .map(|(r, id)| IndexOp::Delete {
                    rect: *r,
                    record: *id,
                }),
        );
        index.flush().unwrap();

        let empty = index.snapshot();
        assert_eq!(empty.len(), 0, "{name}: live tree fully drained");
        empty.assert_invariants();

        // The pinned snapshot still answers with every deleted record.
        let after: BTreeSet<RecordId> = pinned.search(&whole).into_iter().collect();
        assert_eq!(before, after, "{name}: deletes invisible at pinned epoch");
        pinned.assert_invariants();
    }
}

#[test]
fn readers_make_progress_while_commit_is_in_flight() {
    // The commit hook blocks the writer *mid-commit* (after the batch is
    // applied, before it is published). Readers must still pin, search,
    // and unpin — never waiting on the writer.
    let in_hook = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let (hook_flag, release_flag) = (Arc::clone(&in_hook), Arc::clone(&release));

    let dataset = DataDistribution::I3.generate(1_000, 3);
    let mut seed = SRTree::<2>::new();
    for (r, id) in &dataset.records {
        seed.insert(*r, *id);
    }
    let index = ConcurrentIndex::builder(seed.into_tree())
        .commit_hook(Box::new(move |_epoch| {
            hook_flag.store(true, Ordering::SeqCst);
            while !release_flag.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }))
        .start()
        .unwrap();

    let epoch_before = index.epoch();
    index
        .submit(IndexOp::Insert {
            rect: Rect::new([3.0, 3.0], [4.0, 4.0]),
            record: RecordId(999_999),
        })
        .unwrap();
    while !in_hook.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }

    // Writer is now parked mid-commit. Take and use many snapshots from
    // several threads; all of this completes while the commit is in flight.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let handle = index.handle();
            scope.spawn(move || {
                for _ in 0..200 {
                    let snap = handle.snapshot();
                    assert_eq!(snap.epoch(), epoch_before, "commit not yet published");
                    assert_eq!(snap.len(), 1_000);
                    let hits = snap.search(&Rect::new([0.0, 0.0], [DOMAIN_MAX, DOMAIN_MAX]));
                    assert_eq!(hits.len(), 1_000);
                }
            });
        }
    });
    assert!(
        in_hook.load(Ordering::SeqCst) && index.epoch() == epoch_before,
        "all reader work happened while the commit was still in flight"
    );

    release.store(true, Ordering::SeqCst);
    let receipt = index.flush().unwrap();
    assert!(receipt.epoch > epoch_before);
    assert_eq!(index.snapshot().len(), 1_001);
}
