//! Property tests for the tracing layer: every recorded trace must be a
//! well-formed span tree — unique ids, a single root, children nested
//! strictly inside their parents' intervals — no matter which engine
//! answered the query or how many threads participated in recording.
//!
//! Two angles:
//!
//! 1. **Every engine**: random op sequences against all four paper
//!    variants plus HINT and the hybrid router, each query forced through
//!    a fresh trace.
//! 2. **The sharded service under concurrent load**: reader threads run
//!    traced scatter/gather searches while a writer streams traced
//!    inserts; every trace the flight recorder retained must still be
//!    well-formed even though worker threads appended spans concurrently.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_concurrent::{IndexOp, ShardedIndex, SubmitError, ZOrderRouter};
use segidx_core::{
    HintIndex, HybridIndex, IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segidx_geom::{Point, Rect};
use segidx_obs::trace::{OpClass, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DOMAIN: f64 = 1000.0;

/// Every query engine in the workspace, empty, as trait objects. The bool
/// says whether a query always emits an engine span — the skeletons
/// linear-scan a plain buffer until their build threshold, so small
/// sequences legitimately record only the root.
fn engines_2d() -> Vec<(&'static str, bool, Box<dyn IntervalIndex<2>>)> {
    let domain = Rect::new([-10.0, -10.0], [DOMAIN * 1.6, DOMAIN * 1.6]);
    vec![
        ("r-tree", true, Box::new(RTree::<2>::new())),
        ("sr-tree", true, Box::new(SRTree::<2>::new())),
        (
            "skeleton-r-tree",
            false,
            Box::new(SkeletonRTree::<2>::with_prediction(domain, 256, 32)),
        ),
        (
            "skeleton-sr-tree",
            false,
            Box::new(SkeletonSRTree::<2>::with_prediction(domain, 256, 32)),
        ),
        ("hint", true, Box::new(HintIndex::<2>::new())),
        ("hybrid", true, Box::new(HybridIndex::<2>::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Forced traces around search and stab stay well-formed on every
    /// engine, across every storage regime a random insert stream drives
    /// them into.
    #[test]
    fn every_engine_records_well_formed_traces(
        items in vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0..120.0f64, 0.0..120.0f64), 1..80),
        queries in vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0..150.0f64, 0.0..150.0f64), 1..8),
    ) {
        let tracer = Arc::new(Tracer::with_config(1, 4, 4096));
        for (name, always_spans, mut engine) in engines_2d() {
            for (i, (x, y, w, h)) in items.iter().enumerate() {
                engine.insert(
                    Rect::new([*x, *y], [*x + *w, *y + *h]),
                    RecordId(i as u64),
                );
            }
            for (x, y, w, h) in &queries {
                let q = Rect::new([*x, *y], [*x + *w, *y + *h]);
                {
                    let _g = tracer.force(OpClass::Search, "prop_search");
                    let _ = engine.search(&q);
                }
                let t = tracer.last_completed().expect("search trace completed");
                let problems = t.check_well_formed();
                prop_assert!(problems.is_empty(), "{name} search: {problems:?}");
                prop_assert!(
                    !always_spans || t.spans.len() >= 2,
                    "{name} search recorded no engine span"
                );

                {
                    let _g = tracer.force(OpClass::Stab, "prop_stab");
                    let _ = engine.stab(&Point::new([*x, *y]));
                }
                let t = tracer.last_completed().expect("stab trace completed");
                let problems = t.check_well_formed();
                prop_assert!(problems.is_empty(), "{name} stab: {problems:?}");
                prop_assert!(
                    !always_spans || t.spans.len() >= 2,
                    "{name} stab recorded no engine span"
                );
            }
        }
        prop_assert_eq!(tracer.sampled(), tracer.completed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    /// Traces recorded while reader threads scatter across shards and the
    /// writers stream group commits stay well-formed: cross-thread span
    /// adoption never produces orphans, duplicate ids, or children that
    /// escape their parents.
    #[test]
    fn sharded_service_traces_survive_concurrent_load(
        inserts in vec((0.0..DOMAIN, 0.0..DOMAIN), 40..120),
        windows in vec((0.0..DOMAIN, 0.0..DOMAIN, 20.0..400.0f64), 2..6),
    ) {
        let tracer = Arc::new(Tracer::with_config(1, 16, 4096));
        let domain = Rect::new([-10.0, -10.0], [DOMAIN * 1.6, DOMAIN * 1.6]);
        let engines = vec![HybridIndex::<2>::new(), HybridIndex::<2>::new()];
        let index = ShardedIndex::builder(ZOrderRouter::new(domain, 2), engines)
            .max_batch(16)
            .tracer(Arc::clone(&tracer))
            .start()
            .expect("memory-only start cannot fail");

        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            // Readers: traced scatter/gather searches until the writer is done.
            for _ in 0..2 {
                let handle = index.handle();
                let tracer = Arc::clone(&tracer);
                let done = Arc::clone(&done);
                let windows = windows.clone();
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        for (x, y, extent) in &windows {
                            let _g = tracer.force(OpClass::Search, "prop_window");
                            let snap = handle.snapshot();
                            let q = Rect::new([*x, *y], [*x + *extent, *y + *extent]);
                            let _ = snap.search_batch(std::slice::from_ref(&q));
                        }
                    }
                });
            }
            // Writer: traced inserts, each waiting for its group commit so
            // the commit phases land inside the trace.
            for (i, (x, y)) in inserts.iter().enumerate() {
                let _g = tracer.force(OpClass::Insert, "prop_insert");
                let rect = Rect::new([*x, *y], [*x + 5.0, *y + 5.0]);
                let record = RecordId(i as u64);
                let ticket = loop {
                    match index.submit(IndexOp::Insert { rect, record }) {
                        Ok(t) => break t,
                        Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                };
                ticket.wait().expect("memory-only commit cannot fail");
            }
            done.store(true, Ordering::Relaxed);
        });
        index.shutdown();

        let retained = tracer.flight().all();
        prop_assert!(!retained.is_empty(), "flight recorder retained nothing");
        let mut saw_search = false;
        let mut saw_insert = false;
        for t in &retained {
            let problems = t.check_well_formed();
            prop_assert!(
                problems.is_empty(),
                "trace #{} ({}): {problems:?}",
                t.id,
                t.name
            );
            match t.class {
                OpClass::Search => {
                    saw_search = true;
                    prop_assert!(
                        t.spans.iter().any(|s| s.name.starts_with("sharded.")),
                        "search trace #{} never crossed the sharded layer",
                        t.id
                    );
                }
                OpClass::Insert => {
                    saw_insert = true;
                    prop_assert!(
                        t.spans.iter().any(|s| s.name == "commit.wait"),
                        "insert trace #{} has no commit.wait span",
                        t.id
                    );
                }
                _ => {}
            }
        }
        prop_assert!(saw_search, "no search trace retained");
        prop_assert!(saw_insert, "no insert trace retained");
        prop_assert_eq!(tracer.sampled(), tracer.completed());
    }
}
