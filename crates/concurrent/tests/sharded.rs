//! Differential and snapshot-consistency tests for the sharded index.
//!
//! The contract under test: a [`ShardedIndex`] is *observably identical*
//! to the unsharded [`ConcurrentIndex`] over the same logical contents —
//! `search_batch`/`stab_batch` return the same `Vec<Vec<RecordId>>`
//! bit-for-bit, record order included — across all four paper variants
//! and shard counts {1, 2, 4}; and a pinned cross-shard snapshot is
//! frozen: no commit to *any* shard after the pin is ever visible
//! through it.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_concurrent::{ConcurrentIndex, IndexOp, ShardedIndex, ZOrderRouter};
use segidx_core::tree::Tree;
use segidx_core::{IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree};
use segidx_geom::{Point, Rect};

const VARIANTS: [&str; 4] = ["R-Tree", "SR-Tree", "Skeleton R-Tree", "Skeleton SR-Tree"];
fn domain() -> Rect<2> {
    Rect::new([0.0, 0.0], [1_000.0, 1_000.0])
}

/// Builds one paper variant over `records` and unwraps it to a bare tree.
fn build_variant(variant: &str, records: &[(Rect<2>, RecordId)]) -> Tree<2> {
    let n = records.len().max(1);
    match variant {
        "R-Tree" => {
            let mut t = RTree::<2>::new();
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "SR-Tree" => {
            let mut t = SRTree::<2>::new();
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "Skeleton R-Tree" => {
            let mut t = SkeletonRTree::<2>::with_prediction(domain(), n, n / 10 + 1);
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        "Skeleton SR-Tree" => {
            let mut t = SkeletonSRTree::<2>::with_prediction(domain(), n, n / 10 + 1);
            for (r, id) in records {
                t.insert(*r, *id);
            }
            t.into_tree()
        }
        other => panic!("unknown variant {other}"),
    }
}

/// Raw generated material; record ids and delete targets are resolved
/// deterministically in `resolve`.
#[derive(Clone, Debug)]
enum OpSpec {
    Insert(Rect<2>),
    Delete(usize),
}

fn rect_strategy() -> impl Strategy<Value = Rect<2>> {
    // Points, long horizontal segments, and boxes — the mix that drives
    // segment cutting in SR variants and varied Z-order routing.
    prop_oneof![
        (0.0..1_000.0f64, 0.0..1_000.0f64).prop_map(|(x, y)| Rect::new([x, y], [x, y])),
        (0.0..1_000.0f64, 0.0..1_000.0f64, 0.0..600.0f64)
            .prop_map(|(x, y, len)| Rect::new([x, y], [x + len, y])),
        (0.0..950.0f64, 0.0..950.0f64, 0.0..60.0f64, 0.0..60.0f64)
            .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h])),
    ]
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        3 => rect_strategy().prop_map(OpSpec::Insert),
        1 => any::<usize>().prop_map(OpSpec::Delete),
    ]
}

/// Resolves specs into a concrete mutation stream: inserts take fresh
/// record ids after the initial load, deletes pick a live record.
fn resolve(initial: &[(Rect<2>, RecordId)], specs: &[OpSpec]) -> Vec<IndexOp<2>> {
    let mut alive: Vec<(Rect<2>, RecordId)> = initial.to_vec();
    let mut next = initial.len() as u64;
    let mut ops = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec {
            OpSpec::Insert(rect) => {
                let record = RecordId(next);
                next += 1;
                alive.push((*rect, record));
                ops.push(IndexOp::Insert {
                    rect: *rect,
                    record,
                });
            }
            OpSpec::Delete(raw) => {
                if alive.is_empty() {
                    continue;
                }
                let (rect, record) = alive.swap_remove(raw % alive.len());
                ops.push(IndexOp::Delete { rect, record });
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For every paper variant and shard count in {1, 2, 4}: partition the
    /// initial load with the router, drive the identical mutation stream
    /// through the unsharded service and the sharded one, and require
    /// `search_batch`/`stab_batch` to agree **bit-for-bit** — same nesting,
    /// same record ids, same order.
    #[test]
    fn sharded_batches_bit_identical_to_unsharded(
        initial_rects in vec(rect_strategy(), 20..60),
        specs in vec(op_strategy(), 40..120),
        queries in vec(rect_strategy(), 6..12),
        raw_points in vec((0.0..1_100.0f64, 0.0..1_100.0f64), 6..12),
    ) {
        let initial: Vec<(Rect<2>, RecordId)> = initial_rects
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, RecordId(i as u64)))
            .collect();
        let ops = resolve(&initial, &specs);
        let points: Vec<Point<2>> = raw_points
            .iter()
            .map(|&(x, y)| Point::new([x, y]))
            .collect();

        for variant in VARIANTS {
            // Reference: the unsharded service over the full load.
            let reference = ConcurrentIndex::builder(build_variant(variant, &initial))
                .start()
                .unwrap();
            for op in &ops {
                reference.submit(*op).unwrap();
            }
            reference.flush().unwrap();
            let expect_search;
            let expect_stab;
            {
                let snap = reference.snapshot();
                expect_search = snap.search_batch(&queries);
                expect_stab = snap.stab_batch(&points);
            }
            reference.shutdown();

            for shards in [1usize, 2, 4] {
                let router = ZOrderRouter::new(domain(), shards);
                let trees = router
                    .partition(&initial)
                    .iter()
                    .map(|part| build_variant(variant, part))
                    .collect();
                let sharded = ShardedIndex::builder(router, trees).start().unwrap();
                for op in &ops {
                    sharded.submit(*op).unwrap();
                }
                sharded.flush().unwrap();
                let snap = sharded.snapshot();
                snap.assert_invariants();
                prop_assert_eq!(
                    snap.search_batch(&queries),
                    expect_search.clone(),
                    "search_batch diverged: {} x {} shards",
                    variant,
                    shards
                );
                prop_assert_eq!(
                    snap.stab_batch(&points),
                    expect_stab.clone(),
                    "stab_batch diverged: {} x {} shards",
                    variant,
                    shards
                );
                drop(snap);
                sharded.shutdown();
            }
        }
    }
}

/// Splits `domain()` left/right under a 2-shard router: with one prefix bit
/// over 2-D centroids, the shard is the most significant bit of the
/// normalized x coordinate.
fn two_shard_fixture() -> (ShardedIndex<2>, Rect<2>, Rect<2>) {
    let router = ZOrderRouter::new(domain(), 2);
    let left = Rect::new([100.0, 400.0], [120.0, 410.0]);
    let right = Rect::new([800.0, 400.0], [820.0, 410.0]);
    assert_ne!(
        router.route(&left),
        router.route(&right),
        "fixture rects must land on different shards"
    );
    let trees = (0..2).map(|_| build_variant("SR-Tree", &[])).collect();
    let index = ShardedIndex::builder(router, trees).start().unwrap();
    (index, left, right)
}

/// A reader pinned at global epoch E never observes any shard's E+1
/// commit — the cross-shard snapshot is one consistent cut, not a
/// per-shard stitch.
#[test]
fn pinned_global_snapshot_never_observes_later_commits() {
    let (index, left, right) = two_shard_fixture();
    let (left_shard, right_shard) = (
        index.route(&IndexOp::Insert {
            rect: left,
            record: RecordId(0),
        }),
        index.route(&IndexOp::Insert {
            rect: right,
            record: RecordId(1),
        }),
    );

    index
        .submit(IndexOp::Insert {
            rect: left,
            record: RecordId(0),
        })
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(index.global_epoch(), 1);

    let pinned = index.snapshot();
    assert_eq!(pinned.global_epoch(), 1);
    assert_eq!(pinned.shard_epoch(left_shard), 1);
    assert_eq!(pinned.shard_epoch(right_shard), 0);

    // Commit to the *other* shard after the pin.
    index
        .submit(IndexOp::Insert {
            rect: right,
            record: RecordId(1),
        })
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(index.global_epoch(), 2);

    // The pinned guard is frozen at its publication: the later commit is
    // invisible through it, in the epochs and in the data.
    assert_eq!(pinned.global_epoch(), 1);
    assert_eq!(pinned.shard_epoch(right_shard), 0);
    assert_eq!(pinned.len(), 1);
    assert_eq!(pinned.search(&domain()), vec![RecordId(0)]);
    assert_eq!(
        pinned.stab(&Point::new([810.0, 405.0])),
        Vec::<RecordId>::new()
    );

    // A fresh pin observes the new cut, with the untouched shard's epoch
    // carried over unchanged.
    let fresh = index.snapshot();
    assert_eq!(fresh.global_epoch(), 2);
    assert_eq!(fresh.shard_epoch(left_shard), 1);
    assert_eq!(fresh.shard_epoch(right_shard), 1);
    assert_eq!(fresh.search(&domain()), vec![RecordId(0), RecordId(1)]);

    drop(fresh);
    drop(pinned);
    index.shutdown();
}

/// Deletes route to the shard their insert did, so cross-shard contents
/// stay exact under churn; a long-pinned global reader bounds — not
/// grows — the retired-vector backlog.
#[test]
fn delete_routing_and_pinned_reader_reclamation() {
    let (index, left, right) = two_shard_fixture();
    index
        .submit(IndexOp::Insert {
            rect: left,
            record: RecordId(0),
        })
        .unwrap();
    index
        .submit(IndexOp::Insert {
            rect: right,
            record: RecordId(1),
        })
        .unwrap();
    index.flush().unwrap();

    let pinned = index.snapshot();
    let pinned_epoch = pinned.global_epoch();

    // Churn: delete + reinsert on both shards, many commits.
    for round in 0..10u64 {
        index
            .submit(IndexOp::Delete {
                rect: left,
                record: RecordId(0),
            })
            .unwrap();
        index.flush().unwrap();
        index
            .submit(IndexOp::Insert {
                rect: left,
                record: RecordId(0),
            })
            .unwrap();
        index.flush().unwrap();
        let _ = round;
    }

    // The pinned reader held its exact vector while ≥ 20 later vectors
    // retired and were reclaimed around it.
    assert_eq!(pinned.global_epoch(), pinned_epoch);
    assert_eq!(pinned.len(), 2);
    assert!(
        index.retired_vectors() <= 2,
        "backlog bounded by what the reader holds, got {}",
        index.retired_vectors()
    );
    assert!(index.retired_vector_highwater() <= 3);
    drop(pinned);
    assert_eq!(index.retired_vectors(), 0, "unpin path drains the backlog");

    let snap = index.snapshot();
    assert_eq!(snap.search(&domain()), vec![RecordId(0), RecordId(1)]);
    drop(snap);
    index.shutdown();
}

/// The sharded handle works from other threads and after shutdown reads
/// keep serving the last published vector.
#[test]
fn sharded_handle_snapshots_across_threads_and_shutdown() {
    let (index, left, right) = two_shard_fixture();
    let handle = index.handle();
    index
        .submit(IndexOp::Insert {
            rect: left,
            record: RecordId(0),
        })
        .unwrap();
    handle
        .submit(IndexOp::Insert {
            rect: right,
            record: RecordId(1),
        })
        .unwrap();
    handle.flush().unwrap();

    let reader = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            let snap = handle.snapshot();
            (snap.global_epoch(), snap.search(&domain()))
        })
    };
    let (epoch, found) = reader.join().unwrap();
    assert!(epoch >= 2);
    assert_eq!(found, vec![RecordId(0), RecordId(1)]);

    index.shutdown();
    assert!(matches!(
        handle.submit(IndexOp::Insert {
            rect: left,
            record: RecordId(9),
        }),
        Err(segidx_concurrent::SubmitError::Closed)
    ));
    assert_eq!(handle.snapshot().search(&domain()).len(), 2);
}

/// Merged nearest-neighbor results are nearest-first with deterministic
/// tie-breaks and agree with the unsharded tree on distances.
#[test]
fn sharded_nearest_matches_unsharded_distances() {
    let records: Vec<(Rect<2>, RecordId)> = (0..80u64)
        .map(|i| {
            let x = ((i * 127) % 1_000) as f64;
            let y = ((i * 331) % 1_000) as f64;
            (Rect::new([x, y], [x + 10.0, y + 4.0]), RecordId(i))
        })
        .collect();
    let reference = build_variant("R-Tree", &records);
    let router = ZOrderRouter::new(domain(), 4);
    let trees = router
        .partition(&records)
        .iter()
        .map(|part| build_variant("R-Tree", part))
        .collect();
    let index = ShardedIndex::builder(router, trees).start().unwrap();
    let snap = index.snapshot();
    for (px, py) in [(10.0, 10.0), (500.0, 500.0), (999.0, 1.0)] {
        let p = Point::new([px, py]);
        for k in [1usize, 5, 20] {
            let merged = snap.nearest(&p, k);
            let expect = reference.nearest(&p, k);
            assert_eq!(merged.len(), expect.len());
            let merged_d: Vec<f64> = merged.iter().map(|n| n.distance).collect();
            let expect_d: Vec<f64> = expect.iter().map(|n| n.distance).collect();
            assert_eq!(merged_d, expect_d, "k={k} at ({px},{py})");
            assert!(
                merged.windows(2).all(|w| w[0].distance < w[1].distance
                    || (w[0].distance == w[1].distance && w[0].record < w[1].record)),
                "deterministic order"
            );
        }
    }
    drop(snap);
    index.shutdown();
}
