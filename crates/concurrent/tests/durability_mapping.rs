//! Epoch ↔ durability mapping: every published epoch of a durable
//! [`ConcurrentIndex`] is a checkpoint, and power-cutting the commit
//! stream at any point recovers exactly the snapshot of the last durably
//! committed epoch — never a partial batch, never a lost published epoch.

use segidx_concurrent::{CommitError, ConcurrentIndex, IndexOp, SubmitError};
use segidx_core::tree::Tree;
use segidx_core::{persist, IndexConfig, RecordId};
use segidx_geom::Rect;
use segidx_storage::{DiskManager, DiskManagerConfig, ScriptedFault};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "segidx-concurrent-dur-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn whole() -> Rect<2> {
    Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
}

fn rect(i: u64) -> Rect<2> {
    let x = ((i * 37) % 5_000) as f64;
    let y = ((i * 113) % 5_000) as f64;
    let len = if i % 9 == 0 { 1_500.0 } else { 30.0 };
    Rect::new([x, y], [x + len, y + 1.0])
}

/// The deterministic operation stream every test run replays: batches of
/// inserts with interleaved deletes of earlier records.
fn op_stream() -> Vec<Vec<IndexOp<2>>> {
    let mut batches = Vec::new();
    let mut next = 0u64;
    for round in 0..12u64 {
        let mut batch = Vec::new();
        for _ in 0..40 {
            batch.push(IndexOp::Insert {
                rect: rect(next),
                record: RecordId(next),
            });
            next += 1;
        }
        // From round 3 on, also delete the oldest surviving records.
        if round >= 3 {
            for k in 0..10u64 {
                let victim = (round - 3) * 10 + k;
                batch.push(IndexOp::Delete {
                    rect: rect(victim),
                    record: RecordId(victim),
                });
            }
        }
        batches.push(batch);
    }
    batches
}

/// Replays the stream against `index`, flushing after every batch and
/// keeping one [`CommitTicket`] per submitted operation — the ground truth
/// for which prefix of the stream durably committed.
struct StreamResult {
    /// `(durable_epoch, visible records)` after each successful flush.
    checkpoints: Vec<(u64, BTreeSet<RecordId>)>,
    /// Every accepted operation with its commit ticket, submission order.
    tickets: Vec<(IndexOp<2>, segidx_concurrent::CommitTicket)>,
    failed: bool,
}

impl StreamResult {
    /// The record set of the last durably committed epoch: a serial replay
    /// of exactly the operations whose tickets resolved `Ok`. Asserts the
    /// committed operations form a prefix of the submission order (group
    /// commits never skip or reorder).
    fn committed_prefix_records(&self) -> BTreeSet<RecordId> {
        let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
        let mut seen_failure = false;
        for (op, ticket) in &self.tickets {
            match ticket.try_receipt() {
                Some(Ok(_)) => {
                    assert!(!seen_failure, "committed ops must form a prefix");
                    match *op {
                        IndexOp::Insert { rect, record } => tree.insert(rect, record),
                        IndexOp::Delete { rect, record } => {
                            tree.delete(&rect, record);
                        }
                    }
                }
                _ => seen_failure = true,
            }
        }
        tree.search(&whole()).into_iter().collect()
    }
}

fn run_stream(index: &ConcurrentIndex<2>) -> StreamResult {
    let mut checkpoints = Vec::new();
    let mut tickets = Vec::new();
    for batch in op_stream() {
        let mut aborted = false;
        'ops: for op in &batch {
            loop {
                match index.submit(*op) {
                    Ok(ticket) => {
                        tickets.push((*op, ticket));
                        break;
                    }
                    Err(SubmitError::Closed) => {
                        aborted = true;
                        break 'ops;
                    }
                    Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                }
            }
        }
        if aborted {
            return StreamResult {
                checkpoints,
                tickets,
                failed: true,
            };
        }
        match index.flush() {
            Ok(receipt) => {
                let snap = index.snapshot();
                assert_eq!(
                    snap.durable_epoch(),
                    receipt.durable_epoch,
                    "published snapshot carries its checkpoint's durable epoch"
                );
                checkpoints.push((
                    receipt.durable_epoch.expect("durable index"),
                    snap.search(&whole()).into_iter().collect(),
                ));
            }
            Err(CommitError::Storage(_)) | Err(CommitError::WriterExited) => {
                return StreamResult {
                    checkpoints,
                    tickets,
                    failed: true,
                };
            }
        }
    }
    StreamResult {
        checkpoints,
        tickets,
        failed: false,
    }
}

#[test]
fn graceful_shutdown_reopens_on_final_epoch() {
    let path = temp("graceful.db");
    let disk = Arc::new(DiskManager::create(&path).unwrap());
    let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
        .durable(Arc::clone(&disk))
        .start()
        .unwrap();

    let result = run_stream(&index);
    assert!(!result.failed);
    // Durable epochs strictly increase: one checkpoint per published epoch.
    for pair in result.checkpoints.windows(2) {
        assert!(pair[0].0 < pair[1].0, "durable epochs strictly increase");
    }
    let (_, ref final_set) = *result.checkpoints.last().unwrap();
    index.shutdown();
    drop(disk);

    let disk = DiskManager::open(&path).unwrap();
    let back: Tree<2> = persist::load(&disk, disk.root().unwrap()).unwrap();
    back.assert_invariants();
    let got: BTreeSet<RecordId> = back.search(&whole()).into_iter().collect();
    assert_eq!(&got, final_set, "clean reopen lands on the final epoch");
}

#[test]
fn power_cut_recovers_exactly_last_durable_epoch() {
    // Pass 1: count the writes a fault-free run issues, so cut points can
    // be placed throughout the commit stream.
    let observer = Arc::new(ScriptedFault::observer());
    let baseline_path = temp("observe.db");
    let cfg = DiskManagerConfig {
        fault_injector: Some(observer.clone() as Arc<_>),
        ..DiskManagerConfig::default()
    };
    let disk = Arc::new(DiskManager::create_with(&baseline_path, cfg).unwrap());
    let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
        .durable(Arc::clone(&disk))
        .start()
        .unwrap();
    let setup_writes = observer.writes_seen();
    let result = run_stream(&index);
    assert!(!result.failed, "observer pass must not fail");
    index.shutdown();
    let total_writes = observer.writes_seen();
    assert!(total_writes > setup_writes + 16, "stream does real I/O");

    // Pass 2: replay the identical stream under a power cut at several
    // points in (setup, total); each run must recover exactly the record
    // set of its last durably committed epoch.
    let span = total_writes - setup_writes;
    let mut cut_failures = 0usize;
    for frac in [1u64, 3, 5, 7, 9] {
        let cut_at = setup_writes + 1 + span * frac / 10;
        let path = temp(&format!("cut-{frac}.db"));
        let cfg = DiskManagerConfig {
            fault_injector: Some(Arc::new(ScriptedFault::power_cut(cut_at, Some(64))) as Arc<_>),
            ..DiskManagerConfig::default()
        };
        let disk = Arc::new(DiskManager::create_with(&path, cfg).unwrap());
        let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
            .durable(Arc::clone(&disk))
            .start()
            .unwrap();
        let result = run_stream(&index);
        index.shutdown();
        drop(disk);
        if result.failed {
            cut_failures += 1;
        }

        // The committed prefix of the op stream (per per-op tickets) IS the
        // last durable epoch's snapshot — the writer may have durably
        // committed a partial round before the cut landed.
        let expected = result.committed_prefix_records();

        let (disk, report) =
            DiskManager::open_repair(&path, DiskManagerConfig::default(), None).unwrap();
        assert!(report.is_clean(), "a pure power cut corrupts nothing");
        let (tree, rr) = persist::recover::<2>(&disk, &report, None).unwrap();
        assert!(!rr.rebuilt, "committed checkpoint survives the cut whole");
        tree.assert_invariants();
        let got: BTreeSet<RecordId> = tree.search(&whole()).into_iter().collect();
        assert_eq!(
            got, expected,
            "cut at write {cut_at}: recovery == last durable epoch, exactly"
        );
    }
    assert!(
        cut_failures >= 3,
        "most cut points must land mid-stream ({cut_failures}/5 tripped)"
    );
}

#[test]
fn failed_commit_is_invisible_and_typed() {
    // Cut inside the very first group commit: the stream's epoch-1 batch
    // must fail with a typed storage error, stay unpublished, and leave
    // the recoverable state at epoch 0 (the initial checkpoint).
    let path = temp("firstfail.db");
    let cfg = DiskManagerConfig {
        // The initial empty-tree checkpoint takes a handful of writes;
        // cut shortly after it.
        fault_injector: Some(Arc::new(ScriptedFault::power_cut(6, Some(64))) as Arc<_>),
        ..DiskManagerConfig::default()
    };
    let disk = Arc::new(DiskManager::create_with(&path, cfg).unwrap());
    let index = match ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::rtree()))
        .durable(Arc::clone(&disk))
        .start()
    {
        Ok(index) => index,
        // The cut may already hit the initial checkpoint — equally fine,
        // and reported as a storage error at construction.
        Err(_) => return,
    };
    let epoch0 = index.snapshot().epoch();
    let ticket = index
        .submit(IndexOp::Insert {
            rect: rect(1),
            record: RecordId(1),
        })
        .unwrap();
    match ticket.wait() {
        Err(CommitError::Storage(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected storage failure, got {other:?}"),
    }
    // Published state never moved past the durable epoch …
    let snap = index.snapshot();
    assert_eq!(snap.epoch(), epoch0);
    assert_eq!(snap.len(), 0);
    // … and the writer refuses further work.
    assert!(matches!(
        index.submit(IndexOp::Insert {
            rect: rect(2),
            record: RecordId(2),
        }),
        Err(SubmitError::Closed)
    ));
}
