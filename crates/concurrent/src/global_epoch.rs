//! The cross-shard epoch protocol: a vector of per-shard snapshots
//! published through **one** atomic pointer swap, RCU-style, so a
//! multi-shard read pins one consistent global snapshot even while shards
//! commit independently.
//!
//! # Why a vector, not per-shard pins
//!
//! Pinning each shard one after another is not a snapshot: shard 1 could
//! commit between the pin of shard 0 and the pin of shard 1, and the
//! reader would observe shard 0 *before* and shard 1 *after* the same
//! wall-clock instant. Instead, every shard commit republishes an
//! immutable [`GlobalVector`] — global epoch `g+1`, the committing
//! shard's slot replaced, every other slot carried over by `Arc` clone —
//! and swaps it in with a single `AtomicPtr` store. A reader that loads
//! the pointer once therefore holds a vector some *single* global epoch
//! produced; there is no interleaving in which it sees shard `i` at its
//! epoch `e_i + 1` while the vector says `e_i`.
//!
//! Per-shard snapshots inside the vector are the very `Arc`s the shards
//! publish locally (`SnapshotInner`), so republication costs `N` `Arc`
//! bumps and one small allocation — no tree is cloned.
//!
//! # Reclamation
//!
//! Vector lifetimes use the same refined-slot registry as the per-shard
//! snapshots ([`EpochRegistry`]): a reader pins the global epoch, loads
//! the vector, refines its slot to the vector's exact epoch, and unpins on
//! drop. Retired vectors are freed when no slot protects them — on the
//! publish path *and* the reader unpin path, so a long-pinned cross-shard
//! reader holds exactly one vector (and, through it, one snapshot per
//! shard) while later vectors retire and free around it. Dropping a
//! vector drops its `Arc` references; a shard's old tree is freed when
//! the last vector and the shard's own retired list both let go.

use crate::epoch::EpochRegistry;
use crate::index::SnapshotInner;
use segidx_core::tree::Tree;
use segidx_obs::{Event, EventKind, ObsSink};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One immutable published state of the whole sharded index: the global
/// epoch plus every shard's snapshot at that epoch.
pub(crate) struct GlobalVector<const D: usize, E = Tree<D>> {
    pub(crate) epoch: u64,
    pub(crate) shards: Box<[Arc<SnapshotInner<D, E>>]>,
}

/// A retired vector tagged with its own epoch.
struct RetiredVector<const D: usize, E = Tree<D>>(*mut GlobalVector<D, E>, u64);

// SAFETY: the pointee is a heap allocation whose ownership moves with the
// `RetiredVector` value; its contents are `Send + Sync`.
unsafe impl<const D: usize, E: Send + Sync> Send for RetiredVector<D, E> {}

/// Ties one shard's writer thread to the publisher: on every local
/// publish, the writer also installs its fresh snapshot globally.
pub(crate) struct GlobalLink<const D: usize, E = Tree<D>> {
    pub(crate) shard: usize,
    pub(crate) publisher: Arc<GlobalPublisher<D, E>>,
}

/// The single swap point every shard publishes through and every
/// cross-shard reader pins against.
pub(crate) struct GlobalPublisher<const D: usize, E = Tree<D>> {
    published: AtomicPtr<GlobalVector<D, E>>,
    pub(crate) registry: EpochRegistry,
    /// Serializes vector construction + swap across shard writers. Held
    /// only for the N `Arc` bumps and the swap — readers never touch it.
    publish_lock: Mutex<()>,
    retired: Mutex<Vec<RetiredVector<D, E>>>,
    retired_count: AtomicUsize,
    retired_highwater: AtomicUsize,
    reclaimed: AtomicU64,
    publishes: AtomicU64,
    sink: Option<Arc<dyn ObsSink>>,
}

impl<const D: usize, E> GlobalPublisher<D, E> {
    /// A publisher whose epoch-0 vector holds every shard's initial
    /// snapshot. Must be created before any shard writer starts.
    pub(crate) fn new(
        initial: Vec<Arc<SnapshotInner<D, E>>>,
        sink: Option<Arc<dyn ObsSink>>,
    ) -> Self {
        let vector = Box::into_raw(Box::new(GlobalVector {
            epoch: 0,
            shards: initial.into_boxed_slice(),
        }));
        Self {
            published: AtomicPtr::new(vector),
            registry: EpochRegistry::new(),
            publish_lock: Mutex::new(()),
            retired: Mutex::new(Vec::new()),
            retired_count: AtomicUsize::new(0),
            retired_highwater: AtomicUsize::new(0),
            reclaimed: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            sink,
        }
    }

    /// Installs `snapshot` as shard `shard`'s entry: builds the successor
    /// vector, swaps it in atomically, retires the old one.
    pub(crate) fn publish(&self, shard: usize, snapshot: &Arc<SnapshotInner<D, E>>) {
        let _guard = self.publish_lock.lock().unwrap();
        let current = self.published.load(SeqCst);
        // SAFETY: `published` always points at a live vector; the publish
        // lock keeps it from being replaced (and thus retired) under us.
        let (next_epoch, shards) = unsafe {
            let cur = &*current;
            let mut shards = cur.shards.clone();
            shards[shard] = Arc::clone(snapshot);
            (cur.epoch + 1, shards)
        };
        let fresh = Box::into_raw(Box::new(GlobalVector {
            epoch: next_epoch,
            shards,
        }));
        let old = self.published.swap(fresh, SeqCst);
        self.registry.advance(next_epoch);
        self.publishes.fetch_add(1, SeqCst);
        {
            let mut retired = self.retired.lock().unwrap();
            // SAFETY: `old` was just swapped out; the list owns it now.
            let old_epoch = unsafe { (*old).epoch };
            retired.push(RetiredVector(old, old_epoch));
            let depth = retired.len();
            self.retired_count.store(depth, SeqCst);
            self.retired_highwater.fetch_max(depth, SeqCst);
        }
        self.reclaim();
    }

    /// Pins a slot, acquires the current vector, and refines the slot to
    /// the vector's exact epoch. The caller owns the (slot, pointer) pair
    /// and must [`release`](Self::release) it.
    pub(crate) fn acquire(&self) -> (usize, *const GlobalVector<D, E>) {
        let slot = self.registry.pin();
        let ptr = self.published.load(SeqCst);
        // SAFETY: the unrefined pin keeps `ptr` alive until refinement.
        let epoch = unsafe { (*ptr).epoch };
        self.registry.refine(slot, epoch);
        (slot, ptr)
    }

    /// Unpins `slot` and reclaims whatever that reader was the last one
    /// holding (amortized reclamation on the unpin path).
    pub(crate) fn release(&self, slot: usize) {
        self.registry.unpin(slot);
        if self.retired_count.load(SeqCst) > 0 {
            self.reclaim();
        }
    }

    /// Frees every retired vector no reader slot still protects. Same
    /// ordering argument as the per-shard reclaim: the slot scan runs
    /// inside the retired-list critical section.
    fn reclaim(&self) {
        let mut retired = self.retired.lock().unwrap();
        let mut i = 0;
        while i < retired.len() {
            if !self.registry.protects(retired[i].1) {
                let RetiredVector(ptr, epoch) = retired.swap_remove(i);
                // SAFETY: the list owns `ptr`; `protects` proved no reader
                // slot can still reach it.
                unsafe { drop(Box::from_raw(ptr)) };
                self.reclaimed.fetch_add(1, SeqCst);
                if let Some(sink) = &self.sink {
                    sink.event(Event::new(EventKind::EpochReclaimed).node(epoch));
                }
            } else {
                i += 1;
            }
        }
        self.retired_count.store(retired.len(), SeqCst);
    }

    /// The current global epoch (one per shard commit, any shard).
    pub(crate) fn epoch(&self) -> u64 {
        self.registry.global()
    }

    /// Retired global vectors not yet reclaimed.
    pub(crate) fn retired_vectors(&self) -> usize {
        self.retired_count.load(SeqCst)
    }

    /// The largest retired-vector backlog ever observed.
    pub(crate) fn retired_highwater(&self) -> usize {
        self.retired_highwater.load(SeqCst)
    }

    /// Global vectors reclaimed so far.
    pub(crate) fn reclaimed(&self) -> u64 {
        self.reclaimed.load(SeqCst)
    }

    /// Global vector publications (equals the sum of shard commits).
    pub(crate) fn publishes(&self) -> u64 {
        self.publishes.load(SeqCst)
    }

    /// Currently pinned cross-shard readers.
    pub(crate) fn active_readers(&self) -> usize {
        self.registry.active_readers()
    }
}

impl<const D: usize, E> Drop for GlobalPublisher<D, E> {
    fn drop(&mut self) {
        // No reader or shard writer can exist anymore: guards and links
        // hold an `Arc<GlobalPublisher>`.
        let published = self.published.load(SeqCst);
        // SAFETY: sole owner at drop time.
        unsafe { drop(Box::from_raw(published)) };
        for RetiredVector(ptr, _) in self.retired.lock().unwrap().drain(..) {
            // SAFETY: retired vectors are uniquely owned by the list.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

// SAFETY: all interior state is atomics, mutex-protected lists, and
// `Arc`s of `Send + Sync` payloads; the raw pointers are managed under
// the EBR protocol documented above.
unsafe impl<const D: usize, E: Send + Sync> Send for GlobalPublisher<D, E> {}
unsafe impl<const D: usize, E: Send + Sync> Sync for GlobalPublisher<D, E> {}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_core::IndexConfig;

    fn snap(epoch: u64) -> Arc<SnapshotInner<2>> {
        Arc::new(SnapshotInner {
            epoch,
            durable_epoch: None,
            tree: Tree::new(IndexConfig::rtree()),
        })
    }

    #[test]
    fn publish_bumps_only_the_committing_shard() {
        let publisher = GlobalPublisher::new(vec![snap(0), snap(0)], None);
        assert_eq!(publisher.epoch(), 0);
        publisher.publish(1, &snap(1));
        let (slot, ptr) = publisher.acquire();
        // SAFETY: acquired under the pin.
        let vector = unsafe { &*ptr };
        assert_eq!(vector.epoch, 1);
        assert_eq!((vector.shards[0].epoch, vector.shards[1].epoch), (0, 1));
        publisher.release(slot);
    }

    #[test]
    fn pinned_reader_keeps_its_vector_while_later_ones_reclaim() {
        let publisher = GlobalPublisher::new(vec![snap(0)], None);
        let (slot, ptr) = publisher.acquire(); // vector at epoch 0
        for e in 1..=10 {
            publisher.publish(0, &snap(e));
        }
        // The refined pin holds exactly the epoch-0 vector; vectors 1..=9
        // retired and were freed despite the active reader.
        assert_eq!(publisher.retired_vectors(), 1);
        assert!(publisher.reclaimed() >= 9);
        // SAFETY: still pinned.
        let vector = unsafe { &*ptr };
        assert_eq!(vector.epoch, 0);
        assert_eq!(vector.shards[0].epoch, 0);
        publisher.release(slot);
        assert_eq!(publisher.retired_vectors(), 0, "unpin path reclaimed");
        assert_eq!(publisher.reclaimed(), 10);
    }
}
