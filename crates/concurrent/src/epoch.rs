//! Hand-rolled epoch-based reclamation for published snapshots, with
//! *refined* reader slots so one long-pinned reader holds exactly one
//! snapshot instead of every snapshot retired after it.
//!
//! The scheme is the classic three-step reader protocol over a fixed slot
//! array, with every access `SeqCst` so the safety argument is a plain
//! total-order case analysis:
//!
//! 1. a reader *pins*: it loads the global epoch `E` and claims a slot by
//!    CAS-ing the **unrefined** encoding of `E` into it;
//! 2. only then does it load the published snapshot pointer, observing a
//!    snapshot at some epoch `A >= E`;
//! 3. it *refines* its slot to the exact epoch `A` it acquired — from now
//!    on the slot protects only that one snapshot;
//! 4. on drop it *unpins* by storing [`INACTIVE`] back into the slot.
//!
//! Reclamation asks, per retired snapshot at epoch `e`: does any slot
//! still [`protect`](EpochRegistry::protects) it?
//!
//! * an **unrefined** slot at `E` protects every `e >= E` — between its
//!   pin and its pointer load the reader may acquire whatever is current,
//!   which always has an epoch `>= E`;
//! * a **refined** slot at `A` protects exactly `e == A` — the guard
//!   holds one snapshot and has told us which.
//!
//! The payoff: a reader parked on epoch 5 while the writer publishes
//! epochs 6..=100 protects only snapshot 5. Snapshots 6..=99 are freed as
//! they retire, so the retired backlog under a long-pinned reader is
//! bounded (at most one snapshot per parked reader plus whatever is
//! mid-flight), not proportional to writer progress.
//!
//! # Safety argument (all accesses `SeqCst`)
//!
//! A snapshot `V` (epoch `e`) enters the retired list only after the
//! writer swapped the published pointer away from it, so no load performed
//! after that swap (in the `SeqCst` total order) can return `V`. Consider
//! a reclaimer scanning the slots (the scan happens inside the retired-
//! list critical section, so the swap *happens-before* it) and a reader
//! `R` that holds or will hold `V`:
//!
//! * `R`'s slot store precedes the scan: the scan observes either the
//!   unrefined `E` (with `E <= e`, since `R` could acquire `V`) or the
//!   refined `e` — both protect `V`, so it is not freed.
//! * `R`'s slot store follows the scan: `R`'s pointer load follows its
//!   own store, hence follows the scan, hence follows the swap that
//!   retired `V` — the load returns a newer snapshot, never `V`.
//!
//! Slots are a fixed array of [`MAX_READERS`] atomics; pinning spins (with
//! `yield_now`) only in the pathological case that more than
//! [`MAX_READERS`] guards are alive at once.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Maximum number of concurrently pinned snapshot guards.
pub const MAX_READERS: usize = 128;

/// Slot value marking "no reader here".
const INACTIVE: u64 = u64::MAX;

/// Slots encode `(epoch << 1) | refined_bit`, so the epoch space is 63
/// bits — enough for one commit per nanosecond for ~290 years.
const REFINED: u64 = 1;

/// The global epoch counter plus the reader slot array.
#[derive(Debug)]
pub(crate) struct EpochRegistry {
    global: AtomicU64,
    slots: [AtomicU64; MAX_READERS],
}

impl EpochRegistry {
    /// A registry at epoch 0 with every slot inactive.
    pub(crate) fn new() -> Self {
        Self {
            global: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(INACTIVE)),
        }
    }

    /// The current global epoch.
    #[inline]
    pub(crate) fn global(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Advances the global epoch to `epoch` (writer only, after the root
    /// pointer swap).
    pub(crate) fn advance(&self, epoch: u64) {
        self.global.store(epoch, SeqCst);
    }

    /// Claims a slot pinned (unrefined) at the current global epoch,
    /// returning its index. Lock-free unless all [`MAX_READERS`] slots are
    /// taken, in which case it yields and retries.
    pub(crate) fn pin(&self) -> usize {
        loop {
            let epoch = self.global.load(SeqCst);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot
                    .compare_exchange(INACTIVE, epoch << 1, SeqCst, SeqCst)
                    .is_ok()
                {
                    return i;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Narrows `slot`'s protection to exactly `epoch` — the epoch of the
    /// snapshot the reader actually acquired. Must only be called by the
    /// slot's owner, with `epoch >=` the pinned epoch.
    pub(crate) fn refine(&self, slot: usize, epoch: u64) {
        self.slots[slot].store((epoch << 1) | REFINED, SeqCst);
    }

    /// Releases a slot claimed by [`pin`](Self::pin).
    pub(crate) fn unpin(&self, slot: usize) {
        self.slots[slot].store(INACTIVE, SeqCst);
    }

    /// Whether any active reader may still hold the snapshot published at
    /// `epoch`. A retired snapshot is reclaimable iff this is `false`.
    pub(crate) fn protects(&self, epoch: u64) -> bool {
        self.slots.iter().any(|s| {
            let v = s.load(SeqCst);
            if v == INACTIVE {
                return false;
            }
            let slot_epoch = v >> 1;
            if v & REFINED == REFINED {
                slot_epoch == epoch
            } else {
                slot_epoch <= epoch
            }
        })
    }

    /// The smallest epoch any active reader is pinned at (refined or not),
    /// or `None` when no reader is active. A monitoring signal, not the
    /// reclamation criterion — see [`protects`](Self::protects).
    #[cfg(test)]
    pub(crate) fn min_pinned(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&v| v != INACTIVE)
            .map(|v| v >> 1)
            .min()
    }

    /// Number of currently pinned readers.
    pub(crate) fn active_readers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(SeqCst) != INACTIVE)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_records_current_epoch() {
        let reg = EpochRegistry::new();
        assert_eq!(reg.global(), 0);
        let a = reg.pin();
        assert_eq!(reg.min_pinned(), Some(0));
        reg.advance(3);
        let b = reg.pin();
        assert_ne!(a, b);
        assert_eq!(reg.active_readers(), 2);
        // The oldest pin dominates the monitoring horizon.
        assert_eq!(reg.min_pinned(), Some(0));
        reg.unpin(a);
        assert_eq!(reg.min_pinned(), Some(3));
        reg.unpin(b);
        assert_eq!(reg.min_pinned(), None);
        assert_eq!(reg.active_readers(), 0);
    }

    #[test]
    fn unrefined_pin_protects_everything_at_or_after_it() {
        let reg = EpochRegistry::new();
        reg.advance(5);
        let slot = reg.pin(); // unrefined at 5
        assert!(!reg.protects(4), "older snapshots cannot be acquired");
        assert!(reg.protects(5));
        assert!(reg.protects(17), "may acquire anything current or later");
        reg.unpin(slot);
        assert!(!reg.protects(5));
    }

    #[test]
    fn refined_pin_protects_exactly_one_epoch() {
        let reg = EpochRegistry::new();
        reg.advance(5);
        let slot = reg.pin();
        reg.refine(slot, 7); // acquired the snapshot published at 7
        assert!(!reg.protects(5), "refinement released the pin epoch");
        assert!(reg.protects(7));
        assert!(!reg.protects(8), "later snapshots are not held");
        reg.unpin(slot);
        assert!(!reg.protects(7));
    }

    #[test]
    fn slots_are_reused_after_unpin() {
        let reg = EpochRegistry::new();
        let first = reg.pin();
        reg.unpin(first);
        let again = reg.pin();
        assert_eq!(first, again, "first free slot wins");
    }

    #[test]
    fn many_concurrent_pins() {
        use std::sync::Arc;
        let reg = Arc::new(EpochRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..500 {
                        let s = reg.pin();
                        reg.refine(s, reg.global());
                        std::hint::black_box(reg.min_pinned());
                        reg.unpin(s);
                    }
                });
            }
        });
        assert_eq!(reg.active_readers(), 0);
    }
}
