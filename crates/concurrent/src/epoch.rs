//! Hand-rolled epoch-based reclamation for published snapshots.
//!
//! The scheme is the classic three-step reader protocol over a fixed slot
//! array, with every access `SeqCst` so the safety argument is a plain
//! total-order case analysis:
//!
//! 1. a reader *pins*: it loads the global epoch `E` and claims a slot by
//!    CAS-ing `E` into it;
//! 2. only then does it load the published snapshot pointer;
//! 3. on drop it *unpins* by storing [`INACTIVE`] back into the slot.
//!
//! The writer publishes a new snapshot by swapping the root pointer, then
//! advancing the global epoch to `G`, then retiring the old snapshot tagged
//! with `G`. A retired snapshot tagged `G` may be freed once every active
//! slot holds an epoch `>= G`: any reader that could still hold the old
//! pointer performed its slot store before the writer's slot scan (else the
//! scan's `SeqCst` position after the root swap would force the reader's
//! later pointer load to observe the *new* root), and that store wrote an
//! epoch `< G` — so the scan sees it and blocks the free.
//!
//! Slots are a fixed array of [`MAX_READERS`] atomics; pinning spins (with
//! `yield_now`) only in the pathological case that more than
//! [`MAX_READERS`] guards are alive at once.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Maximum number of concurrently pinned snapshot guards.
pub const MAX_READERS: usize = 128;

/// Slot value marking "no reader here".
const INACTIVE: u64 = u64::MAX;

/// The global epoch counter plus the reader slot array.
#[derive(Debug)]
pub(crate) struct EpochRegistry {
    global: AtomicU64,
    slots: [AtomicU64; MAX_READERS],
}

impl EpochRegistry {
    /// A registry at epoch 0 with every slot inactive.
    pub(crate) fn new() -> Self {
        Self {
            global: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(INACTIVE)),
        }
    }

    /// The current global epoch.
    #[inline]
    pub(crate) fn global(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Advances the global epoch to `epoch` (writer only, after the root
    /// pointer swap).
    pub(crate) fn advance(&self, epoch: u64) {
        self.global.store(epoch, SeqCst);
    }

    /// Claims a slot pinned at the current global epoch, returning its
    /// index. Lock-free unless all [`MAX_READERS`] slots are taken, in
    /// which case it yields and retries.
    pub(crate) fn pin(&self) -> usize {
        loop {
            let epoch = self.global.load(SeqCst);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot
                    .compare_exchange(INACTIVE, epoch, SeqCst, SeqCst)
                    .is_ok()
                {
                    return i;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Releases a slot claimed by [`pin`](Self::pin).
    pub(crate) fn unpin(&self, slot: usize) {
        self.slots[slot].store(INACTIVE, SeqCst);
    }

    /// The smallest epoch any active reader is pinned at, or `None` when no
    /// reader is active. A snapshot retired at epoch `G` is reclaimable iff
    /// `min_pinned().map_or(true, |m| m >= G)`.
    pub(crate) fn min_pinned(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&e| e != INACTIVE)
            .min()
    }

    /// Number of currently pinned readers.
    pub(crate) fn active_readers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(SeqCst) != INACTIVE)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_records_current_epoch() {
        let reg = EpochRegistry::new();
        assert_eq!(reg.global(), 0);
        let a = reg.pin();
        assert_eq!(reg.min_pinned(), Some(0));
        reg.advance(3);
        let b = reg.pin();
        assert_ne!(a, b);
        assert_eq!(reg.active_readers(), 2);
        // The oldest pin dominates the reclamation horizon.
        assert_eq!(reg.min_pinned(), Some(0));
        reg.unpin(a);
        assert_eq!(reg.min_pinned(), Some(3));
        reg.unpin(b);
        assert_eq!(reg.min_pinned(), None);
        assert_eq!(reg.active_readers(), 0);
    }

    #[test]
    fn slots_are_reused_after_unpin() {
        let reg = EpochRegistry::new();
        let first = reg.pin();
        reg.unpin(first);
        let again = reg.pin();
        assert_eq!(first, again, "first free slot wins");
    }

    #[test]
    fn many_concurrent_pins() {
        use std::sync::Arc;
        let reg = Arc::new(EpochRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..500 {
                        let s = reg.pin();
                        std::hint::black_box(reg.min_pinned());
                        reg.unpin(s);
                    }
                });
            }
        });
        assert_eq!(reg.active_readers(), 0);
    }
}
