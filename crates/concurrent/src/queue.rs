//! The bounded submission queue between front-end threads and the single
//! writer, plus the ticket machinery that reports each operation's group
//! commit back to its submitter.
//!
//! Admission control happens here: the queue holds at most `capacity`
//! operations, and a submit against a full queue is rejected *immediately*
//! with the typed [`SubmitError::Overloaded`] — callers never block on a
//! slow writer, they get backpressure they can act on (shed load, retry
//! with jitter, fail the request upstream). Flush barriers bypass the
//! capacity check because they carry no work, only a rendezvous.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use segidx_core::RecordId;
use segidx_geom::Rect;
use segidx_obs::trace::{self, Dim};

/// One mutation submitted to a concurrent index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IndexOp<const D: usize> {
    /// Insert `record` with bounding rectangle `rect`.
    Insert {
        /// The record's bounding rectangle.
        rect: Rect<D>,
        /// The record id to insert.
        record: RecordId,
    },
    /// Delete the record matching `rect`/`record` exactly.
    Delete {
        /// The rectangle the record was inserted with.
        rect: Rect<D>,
        /// The record id to delete.
        record: RecordId,
    },
}

/// Why a submission was rejected without being enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue is full: the writer is behind. The operation
    /// was **not** enqueued; `depth` is the queue depth at rejection.
    Overloaded {
        /// Operations queued when the rejection happened.
        depth: usize,
    },
    /// The index has shut down (or its writer died on a storage error);
    /// no further submissions are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth } => {
                write!(f, "submission queue full ({depth} operations pending)")
            }
            SubmitError::Closed => write!(f, "index is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a submitted operation's group commit failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The durable checkpoint of the group commit failed; the message is
    /// the underlying storage error. The operation is **not** durable and
    /// **not** published, and the writer has stopped.
    Storage(String),
    /// The writer exited before this operation's group commit ran.
    WriterExited,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Storage(msg) => write!(f, "group commit failed: {msg}"),
            CommitError::WriterExited => write!(f, "writer exited before commit"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Proof of a completed group commit, returned through a [`CommitTicket`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The snapshot epoch this operation became visible in. Every read
    /// pinned at this epoch or later observes the operation.
    pub epoch: u64,
    /// The storage meta-commit epoch the group commit was checkpointed
    /// under, `None` for a memory-only index. After a crash, the recovered
    /// disk reports exactly the epoch of the last durable group commit.
    pub durable_epoch: Option<u64>,
    /// Total operations in the group commit (≥ 1 unless this receipt
    /// answered a flush barrier on an idle index).
    pub ops_in_commit: usize,
}

/// Where the wall-clock time of one committed operation went, measured on
/// the writer thread and reported back through the operation's ticket.
///
/// `queue_wait_nanos` is per operation (submission → drain); the other
/// three phases are properties of the whole group commit the operation
/// rode in. A waiter that is part of an active trace turns these into
/// synthetic child spans, so a slow commit shows *which* phase was slow —
/// queued behind a backlog, applying a big batch, fsyncing a checkpoint,
/// or publishing/reclaiming snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitPhases {
    /// Time this operation spent queued before its batch was drained.
    pub queue_wait_nanos: u64,
    /// Time the writer spent applying the batch to its private engine.
    pub apply_nanos: u64,
    /// Time spent in the durable checkpoint (0 for memory-only indexes).
    pub checkpoint_nanos: u64,
    /// Time spent publishing the snapshot, retiring and reclaiming old
    /// ones, and completing tickets' bookkeeping.
    pub publish_nanos: u64,
}

impl CommitPhases {
    /// Sum of all phases.
    pub fn total_nanos(&self) -> u64 {
        self.queue_wait_nanos + self.apply_nanos + self.checkpoint_nanos + self.publish_nanos
    }
}

/// Shared completion state behind a [`CommitTicket`].
#[derive(Debug, Default)]
pub(crate) struct TicketState {
    result: Mutex<Option<Result<CommitReceipt, CommitError>>>,
    done: Condvar,
    /// Phase breakdown, set by the writer just before `complete`. A side
    /// channel rather than receipt fields so [`CommitReceipt`] stays a
    /// pure value type (tests compare receipts with `Eq`).
    phases: Mutex<Option<CommitPhases>>,
}

impl TicketState {
    pub(crate) fn complete(&self, result: Result<CommitReceipt, CommitError>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }

    pub(crate) fn set_phases(&self, phases: CommitPhases) {
        *self.phases.lock().unwrap() = Some(phases);
    }

    fn wait(&self) -> Result<CommitReceipt, CommitError> {
        let mut slot = self.result.lock().unwrap();
        while slot.is_none() {
            slot = self.done.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<CommitReceipt, CommitError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.result.lock().unwrap();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self.done.wait_timeout(slot, deadline - now).unwrap();
            slot = next;
            if timed_out.timed_out() && slot.is_none() {
                return None;
            }
        }
        slot.clone()
    }

    fn peek(&self) -> Option<Result<CommitReceipt, CommitError>> {
        self.result.lock().unwrap().clone()
    }
}

/// A handle to one submitted operation's (future) group commit.
///
/// Submission is asynchronous: `submit` returns as soon as the operation is
/// enqueued. The ticket tells the caller *when* and *at which epoch* the
/// operation committed — or why it never will.
#[derive(Clone, Debug)]
pub struct CommitTicket {
    pub(crate) state: Arc<TicketState>,
}

impl CommitTicket {
    /// Blocks until the operation's group commit completes (or fails).
    ///
    /// If the calling thread is inside an active trace, the wait is
    /// recorded as a `commit.wait` span whose children are the commit's
    /// phase breakdown (queue wait, apply, checkpoint, publish) measured
    /// on the writer thread.
    pub fn wait(&self) -> Result<CommitReceipt, CommitError> {
        if !trace::active() {
            return self.state.wait();
        }
        let sp = trace::span("commit.wait");
        let result = self.state.wait();
        if let Ok(receipt) = &result {
            sp.items(receipt.ops_in_commit as u64);
        }
        self.record_phases();
        result
    }

    /// Blocks for at most `timeout`, returning `None` if the commit is
    /// still pending when it elapses. The ticket stays valid: callers can
    /// keep polling or fall back to [`wait`](Self::wait). This is how
    /// harnesses avoid parking forever on a poisoned shard — bound the
    /// wait, then inspect the shard instead of hanging.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<CommitReceipt, CommitError>> {
        if !trace::active() {
            return self.state.wait_timeout(timeout);
        }
        let sp = trace::span("commit.wait");
        let result = self.state.wait_timeout(timeout);
        if let Some(Ok(receipt)) = &result {
            sp.items(receipt.ops_in_commit as u64);
        }
        if result.is_some() {
            self.record_phases();
        }
        result
    }

    /// The commit outcome if it is already known, without blocking.
    pub fn try_receipt(&self) -> Option<Result<CommitReceipt, CommitError>> {
        self.state.peek()
    }

    /// The commit's phase breakdown, if the writer has completed it.
    pub fn phases(&self) -> Option<CommitPhases> {
        *self.state.phases.lock().unwrap()
    }

    /// Attributes the completed commit's phases to the active trace: one
    /// synthetic child span per non-empty phase (laid end-to-end so they
    /// finish "now", which is when the waiter observed completion) plus
    /// the matching profile counters.
    fn record_phases(&self) {
        let Some(ctx) = trace::current() else { return };
        let Some(p) = self.phases() else { return };
        trace::add(Dim::QueueWaitNanos, p.queue_wait_nanos);
        trace::add(Dim::ApplyNanos, p.apply_nanos);
        trace::add(Dim::CheckpointNanos, p.checkpoint_nanos);
        trace::add(Dim::PublishNanos, p.publish_nanos);
        let now = ctx.now_nanos();
        let mut t = now.saturating_sub(p.total_nanos());
        for (name, dur) in [
            ("commit.queue_wait", p.queue_wait_nanos),
            ("commit.apply", p.apply_nanos),
            ("commit.checkpoint", p.checkpoint_nanos),
            ("commit.publish", p.publish_nanos),
        ] {
            if dur > 0 {
                ctx.record_interval(name, t, t.saturating_add(dur), 0);
            }
            t = t.saturating_add(dur);
        }
    }
}

/// One queued entry: an operation or a flush barrier.
pub(crate) enum QueueItem<const D: usize> {
    Op {
        op: IndexOp<D>,
        ticket: Arc<TicketState>,
        enqueued: Instant,
    },
    Barrier(Arc<TicketState>),
}

struct QueueInner<const D: usize> {
    items: VecDeque<QueueItem<D>>,
    /// Queued operations (barriers excluded) — the number admission control
    /// compares against capacity.
    ops: usize,
    closed: bool,
}

/// The bounded MPSC channel feeding the writer thread.
pub(crate) struct SubmissionQueue<const D: usize> {
    inner: Mutex<QueueInner<D>>,
    nonempty: Condvar,
    capacity: usize,
    /// Mirror of `inner.ops` readable without the lock (metrics gauge).
    depth: AtomicUsize,
}

impl<const D: usize> SubmissionQueue<D> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                ops: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    /// Queued operations right now (lock-free; may lag by a moment).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(SeqCst)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues an operation, or rejects it under admission control.
    pub(crate) fn push_op(
        &self,
        op: IndexOp<D>,
        ticket: Arc<TicketState>,
    ) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.ops >= self.capacity {
            return Err(SubmitError::Overloaded { depth: inner.ops });
        }
        inner.items.push_back(QueueItem::Op {
            op,
            ticket,
            enqueued: Instant::now(),
        });
        inner.ops += 1;
        self.depth.store(inner.ops, SeqCst);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Enqueues a flush barrier (not subject to the capacity limit).
    pub(crate) fn push_barrier(&self, ticket: Arc<TicketState>) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        inner.items.push_back(QueueItem::Barrier(ticket));
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Writer side: blocks until work is available, then takes up to
    /// `max_batch` items. Returns `(batch, closed)`; an empty batch with
    /// `closed == true` means the queue drained after shutdown — exit.
    pub(crate) fn drain(&self, max_batch: usize) -> (Vec<QueueItem<D>>, bool) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max_batch.max(1));
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    let item = inner.items.pop_front().unwrap();
                    if matches!(item, QueueItem::Op { .. }) {
                        inner.ops -= 1;
                    }
                    batch.push(item);
                }
                self.depth.store(inner.ops, SeqCst);
                return (batch, false);
            }
            if inner.closed {
                return (Vec::new(), true);
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future submissions fail with [`SubmitError::Closed`];
    /// already-queued items still drain (graceful shutdown flushes).
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Empties the queue, failing every pending ticket with `err`. Used on
    /// the writer's storage-error exit path, where queued work can never
    /// commit.
    pub(crate) fn fail_remaining(&self, err: &CommitError) {
        let drained: Vec<QueueItem<D>> = {
            let mut inner = self.inner.lock().unwrap();
            inner.ops = 0;
            self.depth.store(0, SeqCst);
            inner.items.drain(..).collect()
        };
        for item in drained {
            match item {
                QueueItem::Op { ticket, .. } | QueueItem::Barrier(ticket) => {
                    ticket.complete(Err(err.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64) -> IndexOp<2> {
        IndexOp::Insert {
            rect: Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
            record: RecordId(i),
        }
    }

    #[test]
    fn overload_is_typed_and_nondestructive() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(2);
        q.push_op(op(0), Arc::new(TicketState::default())).unwrap();
        q.push_op(op(1), Arc::new(TicketState::default())).unwrap();
        let err = q
            .push_op(op(2), Arc::new(TicketState::default()))
            .unwrap_err();
        assert_eq!(err, SubmitError::Overloaded { depth: 2 });
        assert_eq!(q.depth(), 2, "rejected op was not enqueued");
        // Barriers are exempt from capacity.
        q.push_barrier(Arc::new(TicketState::default())).unwrap();
        let (batch, closed) = q.drain(16);
        assert_eq!(batch.len(), 3);
        assert!(!closed);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drain_respects_batch_limit() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(64);
        for i in 0..10 {
            q.push_op(op(i), Arc::new(TicketState::default())).unwrap();
        }
        let (batch, _) = q.drain(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(8);
        q.push_op(op(0), Arc::new(TicketState::default())).unwrap();
        q.close();
        assert_eq!(
            q.push_op(op(1), Arc::new(TicketState::default())),
            Err(SubmitError::Closed)
        );
        let (batch, closed) = q.drain(16);
        assert_eq!(
            (batch.len(), closed),
            (1, false),
            "queued work survives close"
        );
        let (batch, closed) = q.drain(16);
        assert_eq!((batch.len(), closed), (0, true));
    }

    #[test]
    fn tickets_complete_once() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        assert!(ticket.try_receipt().is_none());
        let receipt = CommitReceipt {
            epoch: 7,
            durable_epoch: None,
            ops_in_commit: 3,
        };
        state.complete(Ok(receipt.clone()));
        state.complete(Err(CommitError::WriterExited)); // ignored: already done
        assert_eq!(ticket.wait(), Ok(receipt));
    }

    #[test]
    fn wait_timeout_expires_without_consuming_the_ticket() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        assert_eq!(ticket.wait_timeout(Duration::from_millis(10)), None);
        // The timeout did not poison anything: a later completion is
        // observed by both polling styles.
        let receipt = CommitReceipt {
            epoch: 1,
            durable_epoch: None,
            ops_in_commit: 1,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(10)),
            Some(Ok(receipt.clone()))
        );
        assert_eq!(ticket.try_receipt(), Some(Ok(receipt)));
    }

    #[test]
    fn wait_timeout_wakes_on_completion() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        let receipt = CommitReceipt {
            epoch: 9,
            durable_epoch: Some(9),
            ops_in_commit: 2,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(waiter.join().unwrap(), Some(Ok(receipt)));
    }

    #[test]
    fn fail_remaining_completes_all_tickets() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(8);
        let t1 = Arc::new(TicketState::default());
        let t2 = Arc::new(TicketState::default());
        q.push_op(op(0), Arc::clone(&t1)).unwrap();
        q.push_barrier(Arc::clone(&t2)).unwrap();
        q.fail_remaining(&CommitError::WriterExited);
        assert_eq!(q.depth(), 0);
        for t in [t1, t2] {
            assert_eq!(
                CommitTicket { state: t }.wait(),
                Err(CommitError::WriterExited)
            );
        }
    }
}
