//! The bounded submission queue between front-end threads and the single
//! writer, plus the ticket machinery that reports each operation's group
//! commit back to its submitter.
//!
//! Admission control happens here: the queue holds at most `capacity`
//! operations, and a submit against a full queue is rejected *immediately*
//! with the typed [`SubmitError::Overloaded`] — callers never block on a
//! slow writer, they get backpressure they can act on (shed load, retry
//! with jitter, fail the request upstream). Flush barriers bypass the
//! capacity check because they carry no work, only a rendezvous.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use segidx_core::RecordId;
use segidx_geom::Rect;
use segidx_obs::trace::{self, Dim};

/// One mutation submitted to a concurrent index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IndexOp<const D: usize> {
    /// Insert `record` with bounding rectangle `rect`.
    Insert {
        /// The record's bounding rectangle.
        rect: Rect<D>,
        /// The record id to insert.
        record: RecordId,
    },
    /// Delete the record matching `rect`/`record` exactly.
    Delete {
        /// The rectangle the record was inserted with.
        rect: Rect<D>,
        /// The record id to delete.
        record: RecordId,
    },
}

/// Why a submission was rejected without being enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue is full: the writer is behind. The operation
    /// was **not** enqueued; `depth` is the queue depth at rejection.
    Overloaded {
        /// Operations queued when the rejection happened.
        depth: usize,
    },
    /// The index has shut down (or its writer died on a storage error);
    /// no further submissions are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth } => {
                write!(f, "submission queue full ({depth} operations pending)")
            }
            SubmitError::Closed => write!(f, "index is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a submitted operation's group commit failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The durable checkpoint of the group commit failed; the message is
    /// the underlying storage error. The operation is **not** durable and
    /// **not** published, and the writer has stopped.
    Storage(String),
    /// The writer exited before this operation's group commit ran.
    WriterExited,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Storage(msg) => write!(f, "group commit failed: {msg}"),
            CommitError::WriterExited => write!(f, "writer exited before commit"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Proof of a completed group commit, returned through a [`CommitTicket`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The snapshot epoch this operation became visible in. Every read
    /// pinned at this epoch or later observes the operation.
    pub epoch: u64,
    /// The storage meta-commit epoch the group commit was checkpointed
    /// under, `None` for a memory-only index. After a crash, the recovered
    /// disk reports exactly the epoch of the last durable group commit.
    pub durable_epoch: Option<u64>,
    /// Total operations in the group commit (≥ 1 unless this receipt
    /// answered a flush barrier on an idle index).
    pub ops_in_commit: usize,
}

/// Where the wall-clock time of one committed operation went, measured on
/// the writer thread and reported back through the operation's ticket.
///
/// `queue_wait_nanos` is per operation (submission → drain); the other
/// three phases are properties of the whole group commit the operation
/// rode in. A waiter that is part of an active trace turns these into
/// synthetic child spans, so a slow commit shows *which* phase was slow —
/// queued behind a backlog, applying a big batch, fsyncing a checkpoint,
/// or publishing/reclaiming snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitPhases {
    /// Time this operation spent queued before its batch was drained.
    pub queue_wait_nanos: u64,
    /// Time the writer spent applying the batch to its private engine.
    pub apply_nanos: u64,
    /// Time spent in the durable checkpoint (0 for memory-only indexes).
    pub checkpoint_nanos: u64,
    /// Time spent publishing the snapshot, retiring and reclaiming old
    /// ones, and completing tickets' bookkeeping.
    pub publish_nanos: u64,
}

impl CommitPhases {
    /// Sum of all phases.
    pub fn total_nanos(&self) -> u64 {
        self.queue_wait_nanos + self.apply_nanos + self.checkpoint_nanos + self.publish_nanos
    }
}

/// A completion callback registered on a pending ticket; runs exactly once
/// on the writer thread when the commit resolves (see
/// [`CommitTicket::on_complete`]).
type CompletionFn = Box<dyn FnOnce(&Result<CommitReceipt, CommitError>) + Send>;

/// Something waiting for a ticket to resolve without parking a thread.
enum Waiter {
    /// Run a closure with the outcome.
    Callback(CompletionFn),
    /// Wake a task so it re-polls ([`CommitTicket::register_waker`] /
    /// the ticket's `Future` impl).
    Waker(std::task::Waker),
}

impl Waiter {
    fn fire(self, result: &Result<CommitReceipt, CommitError>) {
        match self {
            Waiter::Callback(f) => f(result),
            Waiter::Waker(w) => w.wake(),
        }
    }
}

/// The result slot plus everything waiting on it. One mutex guards both so
/// a waiter registered concurrently with `complete` either sees the result
/// (and fires inline) or is drained by `complete` — never lost.
#[derive(Default)]
struct Completion {
    result: Option<Result<CommitReceipt, CommitError>>,
    waiters: Vec<Waiter>,
}

/// Shared completion state behind a [`CommitTicket`].
#[derive(Default)]
pub(crate) struct TicketState {
    completion: Mutex<Completion>,
    done: Condvar,
    /// Phase breakdown, set by the writer just before `complete`. A side
    /// channel rather than receipt fields so [`CommitReceipt`] stays a
    /// pure value type (tests compare receipts with `Eq`).
    phases: Mutex<Option<CommitPhases>>,
}

impl std::fmt::Debug for TicketState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.completion.lock().unwrap();
        f.debug_struct("TicketState")
            .field("result", &c.result)
            .field("waiters", &c.waiters.len())
            .finish()
    }
}

impl TicketState {
    pub(crate) fn complete(&self, result: Result<CommitReceipt, CommitError>) {
        let waiters = {
            let mut c = self.completion.lock().unwrap();
            if c.result.is_some() {
                return;
            }
            c.result = Some(result.clone());
            self.done.notify_all();
            std::mem::take(&mut c.waiters)
        };
        // Callbacks run outside the lock: they may clone the ticket and
        // inspect it (try_receipt / phases) without deadlocking.
        for w in waiters {
            w.fire(&result);
        }
    }

    pub(crate) fn set_phases(&self, phases: CommitPhases) {
        *self.phases.lock().unwrap() = Some(phases);
    }

    fn on_complete(&self, f: CompletionFn) {
        let ready = {
            let mut c = self.completion.lock().unwrap();
            match &c.result {
                Some(r) => r.clone(),
                None => {
                    c.waiters.push(Waiter::Callback(f));
                    return;
                }
            }
        };
        f(&ready);
    }

    /// Registers `waker` unless the result is already known; returns
    /// `true` if the ticket is ready (caller should read the result now).
    fn register_waker(&self, waker: &std::task::Waker) -> bool {
        let mut c = self.completion.lock().unwrap();
        if c.result.is_some() {
            return true;
        }
        // A task re-polling with the same waker keeps its single entry;
        // distinct tasks polling clones of one ticket each get their own
        // (replacing another task's waker would lose its wakeup).
        let registered = c
            .waiters
            .iter()
            .any(|w| matches!(w, Waiter::Waker(e) if e.will_wake(waker)));
        if !registered {
            c.waiters.push(Waiter::Waker(waker.clone()));
        }
        false
    }

    fn wait(&self) -> Result<CommitReceipt, CommitError> {
        let mut c = self.completion.lock().unwrap();
        while c.result.is_none() {
            c = self.done.wait(c).unwrap();
        }
        c.result.clone().unwrap()
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<CommitReceipt, CommitError>> {
        // An unrepresentable deadline (e.g. `Duration::MAX`) degrades to an
        // untimed wait instead of overflowing.
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Some(self.wait());
        };
        let mut c = self.completion.lock().unwrap();
        while c.result.is_none() {
            // Recompute the remaining budget from the *absolute* deadline
            // on every pass, so spurious condvar wakeups near the deadline
            // never extend the wait (each wakeup re-waits only for what is
            // left, not the original timeout).
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, timed_out) = self.done.wait_timeout(c, remaining).unwrap();
            c = next;
            if timed_out.timed_out() && c.result.is_none() {
                return None;
            }
        }
        c.result.clone()
    }

    fn peek(&self) -> Option<Result<CommitReceipt, CommitError>> {
        self.completion.lock().unwrap().result.clone()
    }
}

/// A handle to one submitted operation's (future) group commit.
///
/// Submission is asynchronous: `submit` returns as soon as the operation is
/// enqueued. The ticket tells the caller *when* and *at which epoch* the
/// operation committed — or why it never will.
#[derive(Clone, Debug)]
pub struct CommitTicket {
    pub(crate) state: Arc<TicketState>,
}

impl CommitTicket {
    /// Blocks until the operation's group commit completes (or fails).
    ///
    /// If the calling thread is inside an active trace, the wait is
    /// recorded as a `commit.wait` span whose children are the commit's
    /// phase breakdown (queue wait, apply, checkpoint, publish) measured
    /// on the writer thread.
    pub fn wait(&self) -> Result<CommitReceipt, CommitError> {
        if !trace::active() {
            return self.state.wait();
        }
        let sp = trace::span("commit.wait");
        let result = self.state.wait();
        if let Ok(receipt) = &result {
            sp.items(receipt.ops_in_commit as u64);
        }
        self.record_phases();
        result
    }

    /// Blocks for at most `timeout`, returning `None` if the commit is
    /// still pending when it elapses. The ticket stays valid: callers can
    /// keep polling or fall back to [`wait`](Self::wait). This is how
    /// harnesses avoid parking forever on a poisoned shard — bound the
    /// wait, then inspect the shard instead of hanging.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<CommitReceipt, CommitError>> {
        if !trace::active() {
            return self.state.wait_timeout(timeout);
        }
        let sp = trace::span("commit.wait");
        let result = self.state.wait_timeout(timeout);
        if let Some(Ok(receipt)) = &result {
            sp.items(receipt.ops_in_commit as u64);
        }
        if result.is_some() {
            self.record_phases();
        }
        result
    }

    /// The commit outcome if it is already known, without blocking.
    pub fn try_receipt(&self) -> Option<Result<CommitReceipt, CommitError>> {
        self.state.peek()
    }

    /// Registers `f` to run exactly once with the commit outcome, without
    /// parking any thread.
    ///
    /// If the commit has already resolved, `f` runs inline on the calling
    /// thread. Otherwise it runs **on the writer thread** during the
    /// completion of this operation's group commit, so it must be quick
    /// and must not block — hand the result off (fill a slot, push to a
    /// queue, wake a reactor) rather than doing work in place. This is
    /// the completion surface a server event loop uses to keep thousands
    /// of writes in flight with zero parked threads.
    pub fn on_complete(
        &self,
        f: impl FnOnce(&Result<CommitReceipt, CommitError>) + Send + 'static,
    ) {
        self.state.on_complete(Box::new(f));
    }

    /// Registers a [`std::task::Waker`] to be woken when the commit
    /// resolves. Returns `true` if the result is already available (the
    /// caller should read it via [`try_receipt`](Self::try_receipt) now
    /// instead of sleeping). Tickets also implement [`Future`](std::future::Future), which is
    /// built on this.
    ///
    /// Distinct tasks polling clones of one ticket are all woken;
    /// re-registering a waker that [`will_wake`](std::task::Waker::will_wake)
    /// an already-registered one is a no-op.
    pub fn register_waker(&self, waker: &std::task::Waker) -> bool {
        self.state.register_waker(waker)
    }

    /// The commit's phase breakdown, if the writer has completed it.
    pub fn phases(&self) -> Option<CommitPhases> {
        *self.state.phases.lock().unwrap()
    }

    /// Attributes the completed commit's phases to the active trace: one
    /// synthetic child span per non-empty phase (laid end-to-end so they
    /// finish "now", which is when the waiter observed completion) plus
    /// the matching profile counters.
    fn record_phases(&self) {
        let Some(ctx) = trace::current() else { return };
        let Some(p) = self.phases() else { return };
        trace::add(Dim::QueueWaitNanos, p.queue_wait_nanos);
        trace::add(Dim::ApplyNanos, p.apply_nanos);
        trace::add(Dim::CheckpointNanos, p.checkpoint_nanos);
        trace::add(Dim::PublishNanos, p.publish_nanos);
        let now = ctx.now_nanos();
        let mut t = now.saturating_sub(p.total_nanos());
        for (name, dur) in [
            ("commit.queue_wait", p.queue_wait_nanos),
            ("commit.apply", p.apply_nanos),
            ("commit.checkpoint", p.checkpoint_nanos),
            ("commit.publish", p.publish_nanos),
        ] {
            if dur > 0 {
                ctx.record_interval(name, t, t.saturating_add(dur), 0);
            }
            t = t.saturating_add(dur);
        }
    }
}

/// `CommitTicket` is a future: polling returns the commit outcome, waking
/// the task when the writer resolves it. The ticket stays usable after
/// completion — re-polling (or a clone's poll) yields the same result, so
/// a ticket can back both an async wait and a later synchronous
/// [`try_receipt`](CommitTicket::try_receipt).
impl std::future::Future for CommitTicket {
    type Output = Result<CommitReceipt, CommitError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        // Register first, then read: if completion raced between the
        // registration and the peek, `register_waker` returned `true` and
        // the result is guaranteed visible.
        if self.state.register_waker(cx.waker()) {
            return std::task::Poll::Ready(self.state.peek().expect("ready ticket has a result"));
        }
        match self.state.peek() {
            Some(result) => std::task::Poll::Ready(result),
            None => std::task::Poll::Pending,
        }
    }
}

/// One queued entry: an operation or a flush barrier.
pub(crate) enum QueueItem<const D: usize> {
    Op {
        op: IndexOp<D>,
        ticket: Arc<TicketState>,
        enqueued: Instant,
    },
    Barrier(Arc<TicketState>),
}

struct QueueInner<const D: usize> {
    items: VecDeque<QueueItem<D>>,
    /// Queued operations (barriers excluded) — the number admission control
    /// compares against capacity.
    ops: usize,
    closed: bool,
}

/// The bounded MPSC channel feeding the writer thread.
pub(crate) struct SubmissionQueue<const D: usize> {
    inner: Mutex<QueueInner<D>>,
    nonempty: Condvar,
    capacity: usize,
    /// Mirror of `inner.ops` readable without the lock (metrics gauge).
    depth: AtomicUsize,
}

impl<const D: usize> SubmissionQueue<D> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                ops: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    /// Queued operations right now (lock-free; may lag by a moment).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(SeqCst)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues an operation, or rejects it under admission control.
    pub(crate) fn push_op(
        &self,
        op: IndexOp<D>,
        ticket: Arc<TicketState>,
    ) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.ops >= self.capacity {
            return Err(SubmitError::Overloaded { depth: inner.ops });
        }
        inner.items.push_back(QueueItem::Op {
            op,
            ticket,
            enqueued: Instant::now(),
        });
        inner.ops += 1;
        self.depth.store(inner.ops, SeqCst);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Enqueues a run of operations under **one** lock acquisition,
    /// applying admission control per operation: each op is either
    /// admitted (its fresh ticket state is returned) or rejected typed,
    /// and a rejection does not stop later ops in the run from being
    /// admitted. One condvar signal covers the whole run — this is the
    /// batch half of backpressure-aware submission, amortizing the
    /// per-op lock/notify cost a pipelined front-end would otherwise pay.
    pub(crate) fn push_ops(
        &self,
        ops: impl IntoIterator<Item = IndexOp<D>>,
    ) -> Vec<Result<Arc<TicketState>, SubmitError>> {
        let mut inner = self.inner.lock().unwrap();
        let now = Instant::now();
        let mut admitted = 0usize;
        let out: Vec<Result<Arc<TicketState>, SubmitError>> = ops
            .into_iter()
            .map(|op| {
                if inner.closed {
                    return Err(SubmitError::Closed);
                }
                if inner.ops >= self.capacity {
                    return Err(SubmitError::Overloaded { depth: inner.ops });
                }
                let ticket = Arc::new(TicketState::default());
                inner.items.push_back(QueueItem::Op {
                    op,
                    ticket: Arc::clone(&ticket),
                    enqueued: now,
                });
                inner.ops += 1;
                admitted += 1;
                Ok(ticket)
            })
            .collect();
        self.depth.store(inner.ops, SeqCst);
        drop(inner);
        if admitted > 0 {
            self.nonempty.notify_one();
        }
        out
    }

    /// Enqueues a flush barrier (not subject to the capacity limit).
    pub(crate) fn push_barrier(&self, ticket: Arc<TicketState>) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        inner.items.push_back(QueueItem::Barrier(ticket));
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Writer side: blocks until work is available, then takes up to
    /// `max_batch` items. Returns `(batch, closed)`; an empty batch with
    /// `closed == true` means the queue drained after shutdown — exit.
    pub(crate) fn drain(&self, max_batch: usize) -> (Vec<QueueItem<D>>, bool) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max_batch.max(1));
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    let item = inner.items.pop_front().unwrap();
                    if matches!(item, QueueItem::Op { .. }) {
                        inner.ops -= 1;
                    }
                    batch.push(item);
                }
                self.depth.store(inner.ops, SeqCst);
                return (batch, false);
            }
            if inner.closed {
                return (Vec::new(), true);
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future submissions fail with [`SubmitError::Closed`];
    /// already-queued items still drain (graceful shutdown flushes).
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Empties the queue, failing every pending ticket with `err`. Used on
    /// the writer's storage-error exit path, where queued work can never
    /// commit.
    pub(crate) fn fail_remaining(&self, err: &CommitError) {
        let drained: Vec<QueueItem<D>> = {
            let mut inner = self.inner.lock().unwrap();
            inner.ops = 0;
            self.depth.store(0, SeqCst);
            inner.items.drain(..).collect()
        };
        for item in drained {
            match item {
                QueueItem::Op { ticket, .. } | QueueItem::Barrier(ticket) => {
                    ticket.complete(Err(err.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64) -> IndexOp<2> {
        IndexOp::Insert {
            rect: Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
            record: RecordId(i),
        }
    }

    #[test]
    fn overload_is_typed_and_nondestructive() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(2);
        q.push_op(op(0), Arc::new(TicketState::default())).unwrap();
        q.push_op(op(1), Arc::new(TicketState::default())).unwrap();
        let err = q
            .push_op(op(2), Arc::new(TicketState::default()))
            .unwrap_err();
        assert_eq!(err, SubmitError::Overloaded { depth: 2 });
        assert_eq!(q.depth(), 2, "rejected op was not enqueued");
        // Barriers are exempt from capacity.
        q.push_barrier(Arc::new(TicketState::default())).unwrap();
        let (batch, closed) = q.drain(16);
        assert_eq!(batch.len(), 3);
        assert!(!closed);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drain_respects_batch_limit() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(64);
        for i in 0..10 {
            q.push_op(op(i), Arc::new(TicketState::default())).unwrap();
        }
        let (batch, _) = q.drain(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(8);
        q.push_op(op(0), Arc::new(TicketState::default())).unwrap();
        q.close();
        assert_eq!(
            q.push_op(op(1), Arc::new(TicketState::default())),
            Err(SubmitError::Closed)
        );
        let (batch, closed) = q.drain(16);
        assert_eq!(
            (batch.len(), closed),
            (1, false),
            "queued work survives close"
        );
        let (batch, closed) = q.drain(16);
        assert_eq!((batch.len(), closed), (0, true));
    }

    #[test]
    fn tickets_complete_once() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        assert!(ticket.try_receipt().is_none());
        let receipt = CommitReceipt {
            epoch: 7,
            durable_epoch: None,
            ops_in_commit: 3,
        };
        state.complete(Ok(receipt.clone()));
        state.complete(Err(CommitError::WriterExited)); // ignored: already done
        assert_eq!(ticket.wait(), Ok(receipt));
    }

    #[test]
    fn wait_timeout_expires_without_consuming_the_ticket() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        assert_eq!(ticket.wait_timeout(Duration::from_millis(10)), None);
        // The timeout did not poison anything: a later completion is
        // observed by both polling styles.
        let receipt = CommitReceipt {
            epoch: 1,
            durable_epoch: None,
            ops_in_commit: 1,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(10)),
            Some(Ok(receipt.clone()))
        );
        assert_eq!(ticket.try_receipt(), Some(Ok(receipt)));
    }

    #[test]
    fn wait_timeout_wakes_on_completion() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        let receipt = CommitReceipt {
            epoch: 9,
            durable_epoch: Some(9),
            ops_in_commit: 2,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(waiter.join().unwrap(), Some(Ok(receipt)));
    }

    /// Regression: spurious condvar wakeups near the deadline must not
    /// extend (or truncate) the wait. A hammer thread fires `notify_all`
    /// on the ticket's condvar in a tight loop *without completing it*;
    /// every wakeup re-enters the wait loop, which must recompute the
    /// remaining budget from the absolute deadline. Before the
    /// deadline-recomputation hardening, a wakeup storm could drift the
    /// effective deadline; this pins the observable contract: `None` is
    /// returned, and not meaningfully later than the requested timeout.
    #[test]
    fn wait_timeout_is_immune_to_spurious_wakeups_near_the_deadline() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammer = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(SeqCst) {
                    // Wake every waiter without resolving the ticket: to a
                    // waiter this is indistinguishable from a spurious
                    // condvar wakeup.
                    state.done.notify_all();
                    std::thread::yield_now();
                }
            })
        };
        let timeout = Duration::from_millis(60);
        let started = Instant::now();
        let result = ticket.wait_timeout(timeout);
        let waited = started.elapsed();
        stop.store(true, SeqCst);
        hammer.join().unwrap();
        assert_eq!(result, None, "ticket was never completed");
        assert!(
            waited >= timeout,
            "returned {waited:?} before the {timeout:?} deadline"
        );
        assert!(
            waited < timeout + Duration::from_secs(5),
            "wakeup storm drifted the deadline: waited {waited:?}"
        );
        // The ticket survived the storm: completion still resolves it.
        state.complete(Ok(CommitReceipt {
            epoch: 3,
            durable_epoch: None,
            ops_in_commit: 1,
        }));
        assert!(matches!(ticket.try_receipt(), Some(Ok(_))));
    }

    /// `Duration::MAX` must not overflow the deadline computation — it
    /// degrades to an untimed wait that completion resolves.
    #[test]
    fn wait_timeout_with_unrepresentable_deadline_waits_untimed() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(20));
        let receipt = CommitReceipt {
            epoch: 1,
            durable_epoch: None,
            ops_in_commit: 1,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(waiter.join().unwrap(), Some(Ok(receipt)));
    }

    #[test]
    fn on_complete_fires_on_completion_and_inline_when_late() {
        let state = Arc::new(TicketState::default());
        let ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let fired = Arc::new(AtomicUsize::new(0));
        let early = Arc::clone(&fired);
        ticket.on_complete(move |r| {
            assert!(r.is_ok());
            early.fetch_add(1, SeqCst);
        });
        assert_eq!(fired.load(SeqCst), 0, "pending ticket defers callbacks");
        let receipt = CommitReceipt {
            epoch: 2,
            durable_epoch: None,
            ops_in_commit: 1,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(fired.load(SeqCst), 1, "completion fires the callback");
        // A second complete is ignored and re-fires nothing.
        state.complete(Err(CommitError::WriterExited));
        assert_eq!(fired.load(SeqCst), 1);
        // Late registration runs inline with the known result.
        let late = Arc::clone(&fired);
        ticket.on_complete(move |r| {
            assert_eq!(r, &Ok(receipt.clone()));
            late.fetch_add(1, SeqCst);
        });
        assert_eq!(fired.load(SeqCst), 2);
    }

    #[test]
    fn ticket_future_wakes_and_resolves() {
        use std::future::Future;
        use std::pin::Pin;
        use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

        // A waker that counts wakes through an Arc<AtomicUsize>.
        fn counting_waker(count: Arc<AtomicUsize>) -> Waker {
            unsafe fn clone(data: *const ()) -> RawWaker {
                let arc = unsafe { Arc::from_raw(data as *const AtomicUsize) };
                let cloned = Arc::clone(&arc);
                std::mem::forget(arc);
                RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
            }
            unsafe fn wake(data: *const ()) {
                let arc = unsafe { Arc::from_raw(data as *const AtomicUsize) };
                arc.fetch_add(1, SeqCst);
            }
            unsafe fn wake_by_ref(data: *const ()) {
                unsafe { (*(data as *const AtomicUsize)).fetch_add(1, SeqCst) };
            }
            unsafe fn drop_raw(data: *const ()) {
                drop(unsafe { Arc::from_raw(data as *const AtomicUsize) });
            }
            static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
            let raw = RawWaker::new(Arc::into_raw(count) as *const (), &VTABLE);
            unsafe { Waker::from_raw(raw) }
        }

        let state = Arc::new(TicketState::default());
        let mut ticket = CommitTicket {
            state: Arc::clone(&state),
        };
        let wakes = Arc::new(AtomicUsize::new(0));
        let waker = counting_waker(Arc::clone(&wakes));
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut ticket).poll(&mut cx).is_pending());
        // Re-polling with the same waker does not double-register.
        assert!(Pin::new(&mut ticket).poll(&mut cx).is_pending());
        let receipt = CommitReceipt {
            epoch: 5,
            durable_epoch: None,
            ops_in_commit: 2,
        };
        state.complete(Ok(receipt.clone()));
        assert_eq!(wakes.load(SeqCst), 1, "completion woke the task once");
        match Pin::new(&mut ticket).poll(&mut cx) {
            Poll::Ready(r) => assert_eq!(r, Ok(receipt)),
            Poll::Pending => panic!("completed ticket still pending"),
        }
    }

    #[test]
    fn push_ops_admits_per_op_under_one_lock() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(2);
        let results = q.push_ops((0..4).map(op));
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok() && results[1].is_ok());
        assert_eq!(
            results[2].as_ref().unwrap_err(),
            &SubmitError::Overloaded { depth: 2 }
        );
        assert_eq!(
            results[3].as_ref().unwrap_err(),
            &SubmitError::Overloaded { depth: 2 }
        );
        assert_eq!(q.depth(), 2, "rejected ops were not enqueued");
        // Draining frees capacity for a later batch.
        let (batch, _) = q.drain(16);
        assert_eq!(batch.len(), 2);
        assert!(q.push_ops((0..1).map(op)).pop().unwrap().is_ok());
    }

    #[test]
    fn fail_remaining_completes_all_tickets() {
        let q: SubmissionQueue<2> = SubmissionQueue::new(8);
        let t1 = Arc::new(TicketState::default());
        let t2 = Arc::new(TicketState::default());
        q.push_op(op(0), Arc::clone(&t1)).unwrap();
        q.push_barrier(Arc::clone(&t2)).unwrap();
        q.fail_remaining(&CommitError::WriterExited);
        assert_eq!(q.depth(), 0);
        for t in [t1, t2] {
            assert_eq!(
                CommitTicket { state: t }.wait(),
                Err(CommitError::WriterExited)
            );
        }
    }
}
