//! The concurrent index service: epoch-published snapshots over a
//! copy-on-write [`Tree`], fed by a single writer thread running group
//! commits.
//!
//! # Architecture
//!
//! ```text
//!  readers                    writer thread
//!  ───────                    ─────────────
//!  snapshot() ──pin epoch──►  drain ≤ max_batch ops from the queue
//!  search / stab on an        apply them to the private tree
//!  immutable Tree             (durable: persist::commit + sync)
//!  drop guard ──unpin──►      publish: swap root ptr, bump epoch
//!                             retire old snapshot, reclaim safe ones
//!                             complete tickets with the commit epoch
//! ```
//!
//! Readers never block and never observe a half-applied batch: they pin the
//! published [`SnapshotGuard`] and run any read — including
//! `search_batch`/`stab_batch` — against a tree no one will ever mutate.
//! The writer's private tree shares all untouched nodes with the published
//! snapshots (see `Arena` in `segidx-core`), so publishing epoch *n+1*
//! costs one `Arc` bump per node plus copies of only the nodes the batch
//! touched.
//!
//! # Durability = visibility
//!
//! When built over a [`DiskManager`], every group commit runs
//! [`persist::commit`] **before** the snapshot is published. A snapshot can
//! therefore never be observed that is not already durable: the chain of
//! published epochs maps 1:1 onto the chain of durable checkpoints, and a
//! crash at any point recovers exactly the tree of the last epoch any
//! reader could have seen.

use crate::engine::SnapshotEngine;
use crate::epoch::EpochRegistry;
use crate::global_epoch::GlobalLink;
use crate::queue::{
    CommitError, CommitPhases, CommitReceipt, CommitTicket, IndexOp, QueueItem, SubmissionQueue,
    SubmitError, TicketState,
};
use segidx_core::tree::Tree;
use segidx_core::RecordId;
use segidx_geom::Rect;
use segidx_obs::trace::{self, Tracer};
use segidx_obs::{
    Event, EventKind, LatencyHistogram, Metric, MetricsRegistry, ObsSink, RingBufferSink,
};
use segidx_storage::{DiskManager, StorageError};
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Writer-side counters and latency distributions, shared with every
/// [`IndexHandle`].
#[derive(Debug, Default)]
pub struct ConcurrentTelemetry {
    /// Time each operation spent queued before its batch was drained.
    pub queue_wait: LatencyHistogram,
    /// Wall-clock duration of each group commit (apply + checkpoint +
    /// publish).
    pub commit_latency: LatencyHistogram,
    commits: AtomicU64,
    ops_applied: AtomicU64,
    overloads: AtomicU64,
    reclaimed: AtomicU64,
}

impl ConcurrentTelemetry {
    /// Group commits published.
    pub fn commits(&self) -> u64 {
        self.commits.load(SeqCst)
    }

    /// Operations applied across all group commits.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied.load(SeqCst)
    }

    /// Submissions rejected by admission control.
    pub fn overloads(&self) -> u64 {
        self.overloads.load(SeqCst)
    }

    /// Retired snapshots whose memory has been reclaimed.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(SeqCst)
    }
}

/// One published, immutable snapshot: the tree plus its epoch identity.
/// `Arc`-shared so a cross-shard [`GlobalEpochVector`](crate::global_epoch)
/// can reference the same snapshot the shard publishes locally without
/// re-cloning the tree.
pub(crate) struct SnapshotInner<const D: usize, E = Tree<D>> {
    pub(crate) epoch: u64,
    pub(crate) durable_epoch: Option<u64>,
    /// The frozen engine (historically a [`Tree`]; any [`SnapshotEngine`]).
    pub(crate) tree: E,
}

/// A retired snapshot reference tagged with the snapshot's *own* epoch;
/// freeable once no reader slot [`protects`](EpochRegistry::protects) that
/// epoch. The pointer came from `Arc::into_raw`, so "freeing" drops this
/// holder's reference — the tree lives on if a global epoch vector still
/// shares it.
struct Retired<const D: usize, E = Tree<D>>(*const SnapshotInner<D, E>, u64);

// SAFETY: the pointee is a heap allocation whose ownership moves with the
// `Retired` value; the engine itself is `Send`.
unsafe impl<const D: usize, E: Send> Send for Retired<D, E> {}

/// State shared by the writer thread, the owner, and every handle.
struct Shared<const D: usize, E = Tree<D>> {
    published: AtomicPtr<SnapshotInner<D, E>>,
    epochs: EpochRegistry,
    queue: SubmissionQueue<D>,
    retired: Mutex<Vec<Retired<D, E>>>,
    retired_count: AtomicUsize,
    retired_highwater: AtomicUsize,
    telemetry: Arc<ConcurrentTelemetry>,
    sink: Option<Arc<dyn ObsSink>>,
    /// Concrete handle to the ring sink (when the sink *is* one), so
    /// `register_metrics` can export its dropped/buffered gauges.
    ring: Option<Arc<RingBufferSink>>,
    /// Tracer whose flight recorder / drop counters this index's metrics
    /// should carry.
    tracer: Option<Arc<Tracer>>,
}

impl<const D: usize, E> Shared<D, E> {
    fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.event(event);
        }
    }

    fn snapshot(self: &Arc<Self>) -> SnapshotGuard<D, E> {
        let slot = self.epochs.pin();
        let ptr = self.published.load(SeqCst);
        // SAFETY: the unrefined pin keeps `ptr` alive until the slot is
        // refined or released.
        let epoch = unsafe { (*ptr).epoch };
        // Narrow the slot to the snapshot actually acquired, so retired
        // snapshots published later are not held hostage by this guard.
        self.epochs.refine(slot, epoch);
        SnapshotGuard {
            shared: Arc::clone(self),
            ptr,
            slot,
        }
    }

    fn submit(&self, op: IndexOp<D>) -> Result<CommitTicket, SubmitError> {
        let _sp = trace::span("index.submit");
        let state = Arc::new(TicketState::default());
        match self.queue.push_op(op, Arc::clone(&state)) {
            Ok(()) => Ok(CommitTicket { state }),
            Err(err) => {
                if let SubmitError::Overloaded { depth } = err {
                    self.telemetry.overloads.fetch_add(1, SeqCst);
                    self.emit(Event::new(EventKind::WriterStalled).detail(depth as u64));
                }
                Err(err)
            }
        }
    }

    fn submit_batch(&self, ops: Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>> {
        let _sp = trace::span("index.submit_batch");
        self.queue
            .push_ops(ops)
            .into_iter()
            .map(|r| match r {
                Ok(state) => Ok(CommitTicket { state }),
                Err(err) => {
                    if let SubmitError::Overloaded { depth } = &err {
                        self.telemetry.overloads.fetch_add(1, SeqCst);
                        self.emit(Event::new(EventKind::WriterStalled).detail(*depth as u64));
                    }
                    Err(err)
                }
            })
            .collect()
    }

    fn flush(&self) -> Result<CommitReceipt, CommitError> {
        let state = Arc::new(TicketState::default());
        match self.queue.push_barrier(Arc::clone(&state)) {
            Ok(()) => CommitTicket { state }.wait(),
            Err(_) => Err(CommitError::WriterExited),
        }
    }

    /// Frees every retired snapshot no reader slot still protects. Runs on
    /// the writer after each publish *and* on the reader unpin path, so a
    /// long-pinned reader's backlog is released the moment it lets go
    /// rather than at the next commit. The slot scan happens inside the
    /// retired-list critical section — see `epoch.rs` for why that
    /// ordering makes the free safe.
    fn reclaim(&self) {
        let mut retired = self.retired.lock().unwrap();
        let mut i = 0;
        while i < retired.len() {
            if !self.epochs.protects(retired[i].1) {
                let Retired(ptr, epoch) = retired.swap_remove(i);
                // SAFETY: the pointer came from `Arc::into_raw` and this
                // list owns that reference; the `protects` check proves no
                // reader slot can still reach it.
                unsafe { drop(Arc::from_raw(ptr)) };
                self.telemetry.reclaimed.fetch_add(1, SeqCst);
                self.emit(Event::new(EventKind::EpochReclaimed).node(epoch));
            } else {
                i += 1;
            }
        }
        self.retired_count.store(retired.len(), SeqCst);
    }

    /// Moves the replaced snapshot onto the retired list, tagged with its
    /// own epoch, and tracks the backlog high-water mark.
    fn retire(&self, old: *const SnapshotInner<D, E>) {
        // SAFETY: `old` was just swapped out of `published`; the list now
        // owns its reference and keeps it alive.
        let old_epoch = unsafe { (*old).epoch };
        let mut retired = self.retired.lock().unwrap();
        retired.push(Retired(old, old_epoch));
        let depth = retired.len();
        self.retired_count.store(depth, SeqCst);
        self.retired_highwater.fetch_max(depth, SeqCst);
    }

    /// The published snapshot's durable epoch. Writer-thread / owner use;
    /// safe because the published snapshot is only freed after it has been
    /// retired *and* replaced.
    fn published_durable_epoch(&self) -> Option<u64> {
        // SAFETY: `published` always points at a live snapshot.
        unsafe { (*self.published.load(SeqCst)).durable_epoch }
    }
}

impl<const D: usize, E> Drop for Shared<D, E> {
    fn drop(&mut self) {
        // No readers or writer can exist anymore: every guard and handle
        // holds an `Arc<Shared>`.
        let published = self.published.load(SeqCst);
        // SAFETY: sole owner at drop time; the pointer came from
        // `Arc::into_raw` and this drops the published reference.
        unsafe { drop(Arc::from_raw(published)) };
        for Retired(ptr, _) in self.retired.lock().unwrap().drain(..) {
            // SAFETY: retired references are owned by the list.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

/// A pinned, immutable view of one published snapshot.
///
/// Dereferences to the snapshot's [`Tree`], so every read-side method —
/// `search`, `stab`, `search_batch`, `nearest`, `validate` — works
/// unchanged. Holding a guard keeps its snapshot's memory alive; drop it
/// promptly so retired epochs can be reclaimed.
pub struct SnapshotGuard<const D: usize, E = Tree<D>> {
    shared: Arc<Shared<D, E>>,
    ptr: *const SnapshotInner<D, E>,
    slot: usize,
}

impl<const D: usize, E> SnapshotGuard<D, E> {
    /// The epoch this snapshot was published at. Monotone across
    /// re-pins: a later `snapshot()` call never observes a smaller epoch.
    pub fn epoch(&self) -> u64 {
        // SAFETY: the pin taken in `Shared::snapshot` keeps `ptr` alive.
        unsafe { (*self.ptr).epoch }
    }

    /// The storage meta-commit epoch this snapshot was checkpointed under
    /// (`None` for a memory-only index).
    pub fn durable_epoch(&self) -> Option<u64> {
        // SAFETY: as in `epoch`.
        unsafe { (*self.ptr).durable_epoch }
    }
}

impl<const D: usize, E> Deref for SnapshotGuard<D, E> {
    type Target = E;

    fn deref(&self) -> &E {
        // SAFETY: the pin taken in `Shared::snapshot` keeps `ptr` alive,
        // and published trees are never mutated.
        unsafe { &(*self.ptr).tree }
    }
}

impl<const D: usize, E> Drop for SnapshotGuard<D, E> {
    fn drop(&mut self) {
        self.shared.epochs.unpin(self.slot);
        // Amortized reclamation: whatever this reader was the last one
        // holding is freed here, on the unpin path, instead of waiting for
        // the writer's next publish (which may never come on an idle
        // index). Cheap when nothing is retired — one atomic load.
        if self.shared.retired_count.load(SeqCst) > 0 {
            self.shared.reclaim();
        }
    }
}

impl<const D: usize, E: SnapshotEngine<D>> std::fmt::Debug for SnapshotGuard<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotGuard")
            .field("epoch", &self.epoch())
            .field("durable_epoch", &self.durable_epoch())
            .field("len", &self.len())
            .finish()
    }
}

/// Called on the writer thread with the epoch about to be published, after
/// the batch is applied but before it is checkpointed/published. Test
/// seam: lets a test hold a commit "in flight" deterministically.
pub type CommitHook = Box<dyn FnMut(u64) + Send>;

/// Configures and starts a [`ConcurrentIndex`].
pub struct Builder<const D: usize, E = Tree<D>> {
    tree: E,
    disk: Option<Arc<DiskManager>>,
    queue_capacity: usize,
    max_batch: usize,
    sink: Option<Arc<dyn ObsSink>>,
    ring: Option<Arc<RingBufferSink>>,
    tracer: Option<Arc<Tracer>>,
    commit_hook: Option<CommitHook>,
}

impl<const D: usize, E: SnapshotEngine<D>> Builder<D, E> {
    /// Backs the index with `disk`: every group commit is checkpointed via
    /// `persist::commit` before its snapshot is published.
    pub fn durable(mut self, disk: Arc<DiskManager>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Maximum queued (unapplied) operations before submissions are
    /// rejected with [`SubmitError::Overloaded`]. Default 1024.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Maximum operations folded into one group commit. Default 128.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Receives [`EventKind::SnapshotPublished`], [`EventKind::EpochReclaimed`],
    /// and [`EventKind::WriterStalled`] events.
    pub fn sink(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Like [`sink`](Self::sink), but keeps the concrete ring-buffer
    /// handle so [`IndexHandle::register_metrics`] also exports the
    /// sink's `segidx_events_dropped_total` / `segidx_events_buffered`
    /// series — lost observability is itself observable.
    pub fn ring_sink(mut self, sink: Arc<RingBufferSink>) -> Self {
        self.ring = Some(Arc::clone(&sink));
        self.sink = Some(sink);
        self
    }

    /// Associates a [`Tracer`] with this index: its sampling counters,
    /// trace-buffer drop counter, and flight-recorder depth ride along in
    /// [`IndexHandle::register_metrics`].
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Installs a [`CommitHook`] (test seam for in-flight commits).
    pub fn commit_hook(mut self, hook: CommitHook) -> Self {
        self.commit_hook = Some(hook);
        self
    }

    /// Starts the writer thread and publishes the initial snapshot (epoch
    /// 0). For a durable index the initial tree is checkpointed first, so
    /// even epoch 0 is recoverable; that checkpoint is the only way this
    /// returns an error.
    pub fn start(self) -> Result<ConcurrentIndex<D, E>, StorageError> {
        Ok(self.prepare()?.launch(None))
    }

    /// Builds the shared state and initial snapshot without spawning the
    /// writer. [`ShardedIndex`](crate::ShardedIndex) uses this two-phase
    /// start so every shard's epoch-0 snapshot can be gathered into the
    /// initial global epoch vector *before* any writer can publish.
    pub(crate) fn prepare(self) -> Result<Prepared<D, E>, StorageError> {
        let Builder {
            tree,
            disk,
            queue_capacity,
            max_batch,
            sink,
            ring,
            tracer,
            commit_hook,
        } = self;
        let durable_epoch = match &disk {
            Some(disk) => {
                tree.checkpoint(disk)?;
                Some(disk.epoch())
            }
            None => None,
        };
        let initial = Arc::new(SnapshotInner {
            epoch: 0,
            durable_epoch,
            tree: tree.clone(),
        });
        let published = Arc::into_raw(Arc::clone(&initial)) as *mut SnapshotInner<D, E>;
        let shared = Arc::new(Shared {
            published: AtomicPtr::new(published),
            epochs: EpochRegistry::new(),
            queue: SubmissionQueue::new(queue_capacity),
            retired: Mutex::new(Vec::new()),
            retired_count: AtomicUsize::new(0),
            retired_highwater: AtomicUsize::new(0),
            telemetry: Arc::new(ConcurrentTelemetry::default()),
            sink,
            ring,
            tracer,
        });
        Ok(Prepared {
            shared,
            tree,
            disk,
            max_batch,
            commit_hook,
            initial,
        })
    }
}

/// A fully built but not yet serving index: the writer thread has not been
/// spawned, so nothing can commit or publish past epoch 0.
pub(crate) struct Prepared<const D: usize, E = Tree<D>> {
    shared: Arc<Shared<D, E>>,
    tree: E,
    disk: Option<Arc<DiskManager>>,
    max_batch: usize,
    commit_hook: Option<CommitHook>,
    initial: Arc<SnapshotInner<D, E>>,
}

impl<const D: usize, E: SnapshotEngine<D>> Prepared<D, E> {
    /// The epoch-0 snapshot, for seeding a global epoch vector.
    pub(crate) fn initial(&self) -> &Arc<SnapshotInner<D, E>> {
        &self.initial
    }

    /// Spawns the writer thread. With a `global` link, every publish also
    /// installs the shard's new snapshot into the global epoch vector.
    pub(crate) fn launch(self, global: Option<GlobalLink<D, E>>) -> ConcurrentIndex<D, E> {
        let Prepared {
            shared,
            tree,
            disk,
            max_batch,
            commit_hook,
            initial: _,
        } = self;
        let writer_shared = Arc::clone(&shared);
        let name = match &global {
            Some(link) => format!("segidx-writer-{}", link.shard),
            None => "segidx-writer".into(),
        };
        let writer = std::thread::Builder::new()
            .name(name)
            .spawn(move || writer_loop(writer_shared, tree, disk, max_batch, commit_hook, global))
            .expect("spawn writer thread");
        ConcurrentIndex {
            shared,
            writer: Some(writer),
        }
    }
}

/// An index served concurrently: any number of snapshot readers, one
/// writer thread applying submitted mutations in group commits.
///
/// Construct with [`ConcurrentIndex::builder`] from any [`Tree`] — use
/// `into_tree()` on the four paper-variant wrappers. Cheap cloneable
/// [`IndexHandle`]s (from [`handle`](Self::handle)) give other threads the
/// same read/submit API.
///
/// ```
/// use segidx_concurrent::{ConcurrentIndex, IndexOp};
/// use segidx_core::{IndexConfig, RecordId};
/// use segidx_core::tree::Tree;
/// use segidx_geom::Rect;
///
/// let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
///     .start()
///     .unwrap();
/// let ticket = index
///     .submit(IndexOp::Insert {
///         rect: Rect::new([0.0, 0.0], [10.0, 1.0]),
///         record: RecordId(1),
///     })
///     .unwrap();
/// let receipt = ticket.wait().unwrap();
///
/// let snap = index.snapshot();
/// assert!(snap.epoch() >= receipt.epoch);
/// assert_eq!(snap.search(&Rect::new([5.0, 0.0], [6.0, 2.0])), vec![RecordId(1)]);
/// ```
pub struct ConcurrentIndex<const D: usize, E = Tree<D>> {
    shared: Arc<Shared<D, E>>,
    writer: Option<JoinHandle<()>>,
}

impl<const D: usize, E> ConcurrentIndex<D, E> {
    /// A builder over the engine's current contents (any
    /// [`SnapshotEngine`]: a [`Tree`], a `HintIndex`, ...).
    pub fn builder(tree: E) -> Builder<D, E> {
        Builder {
            tree,
            disk: None,
            queue_capacity: 1024,
            max_batch: 128,
            sink: None,
            ring: None,
            tracer: None,
            commit_hook: None,
        }
    }

    /// A cloneable handle sharing this index's read/submit API.
    pub fn handle(&self) -> IndexHandle<D, E> {
        IndexHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pins and returns the current published snapshot. Never blocks.
    pub fn snapshot(&self) -> SnapshotGuard<D, E> {
        self.shared.snapshot()
    }

    /// Submits one mutation; see [`IndexHandle::submit`].
    pub fn submit(&self, op: IndexOp<D>) -> Result<CommitTicket, SubmitError> {
        self.shared.submit(op)
    }

    /// Submits a run of mutations under one queue lock; see
    /// [`IndexHandle::submit_batch`].
    pub fn submit_batch(&self, ops: Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>> {
        self.shared.submit_batch(ops)
    }

    /// Blocks until everything submitted before this call is committed and
    /// published, returning that commit's receipt.
    pub fn flush(&self) -> Result<CommitReceipt, CommitError> {
        self.shared.flush()
    }

    /// Writer-side telemetry.
    pub fn telemetry(&self) -> Arc<ConcurrentTelemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.global()
    }

    /// Operations currently queued for the writer.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Retired snapshots not yet reclaimed (readers still pin them).
    pub fn retired_snapshots(&self) -> usize {
        self.shared.retired_count.load(SeqCst)
    }

    /// The largest retired-snapshot backlog ever observed — the alerting
    /// signal for a reader pinning snapshots longer than it should.
    pub fn retired_highwater(&self) -> usize {
        self.shared.retired_highwater.load(SeqCst)
    }

    /// Currently pinned snapshot guards.
    pub fn active_readers(&self) -> usize {
        self.shared.epochs.active_readers()
    }

    /// Shuts down gracefully: already-queued operations still commit, then
    /// the writer exits. Equivalent to `drop`, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

impl<const D: usize, E> Drop for ConcurrentIndex<D, E> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl<const D: usize, E> std::fmt::Debug for ConcurrentIndex<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentIndex")
            .field("epoch", &self.epoch())
            .field("queue_depth", &self.queue_depth())
            .field("retired_snapshots", &self.retired_snapshots())
            .finish()
    }
}

/// A cloneable, `Send + Sync` handle to a [`ConcurrentIndex`].
///
/// Handles share the index's snapshot/submit API; they do not keep the
/// writer alive — once the owning `ConcurrentIndex` shuts down, submissions
/// fail with [`SubmitError::Closed`] while snapshots continue to serve the
/// last published state.
pub struct IndexHandle<const D: usize, E = Tree<D>> {
    shared: Arc<Shared<D, E>>,
}

impl<const D: usize, E> Clone for IndexHandle<D, E> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<const D: usize, E> IndexHandle<D, E> {
    /// Pins and returns the current published snapshot. Never blocks.
    pub fn snapshot(&self) -> SnapshotGuard<D, E> {
        self.shared.snapshot()
    }

    /// Submits one mutation. Returns immediately with a [`CommitTicket`],
    /// or rejects with [`SubmitError::Overloaded`] (queue full — the op was
    /// *not* enqueued) or [`SubmitError::Closed`].
    pub fn submit(&self, op: IndexOp<D>) -> Result<CommitTicket, SubmitError> {
        self.shared.submit(op)
    }

    /// Submits a run of mutations under **one** queue lock acquisition,
    /// with per-op admission: each element is either a [`CommitTicket`]
    /// or a typed rejection, in input order, and an
    /// [`Overloaded`](SubmitError::Overloaded) op does not prevent later
    /// ops in the run from being admitted.
    ///
    /// Combined with [`CommitTicket::on_complete`] this is the
    /// backpressure-aware path a pipelined front-end uses: one lock and
    /// one writer wakeup per pipeline flush, zero parked threads per
    /// in-flight write.
    pub fn submit_batch(&self, ops: Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>> {
        self.shared.submit_batch(ops)
    }

    /// Convenience: submit an insert.
    pub fn insert(&self, rect: Rect<D>, record: RecordId) -> Result<CommitTicket, SubmitError> {
        self.submit(IndexOp::Insert { rect, record })
    }

    /// Convenience: submit a delete.
    pub fn delete(&self, rect: Rect<D>, record: RecordId) -> Result<CommitTicket, SubmitError> {
        self.submit(IndexOp::Delete { rect, record })
    }

    /// Blocks until everything submitted before this call is committed.
    pub fn flush(&self) -> Result<CommitReceipt, CommitError> {
        self.shared.flush()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.global()
    }

    /// Operations currently queued for the writer.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The admission-control limit on queued operations.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Retired snapshots not yet reclaimed.
    pub fn retired_snapshots(&self) -> usize {
        self.shared.retired_count.load(SeqCst)
    }

    /// The largest retired-snapshot backlog ever observed.
    pub fn retired_highwater(&self) -> usize {
        self.shared.retired_highwater.load(SeqCst)
    }

    /// Writer-side telemetry.
    pub fn telemetry(&self) -> Arc<ConcurrentTelemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Registers gauges, counters, and latency histograms for this index
    /// under the given labels (add e.g. `("component", "concurrent")`):
    ///
    /// * `segidx_concurrent_epoch`, `segidx_concurrent_queue_depth`,
    ///   `segidx_concurrent_retired_snapshots`,
    ///   `segidx_concurrent_retired_highwater`,
    ///   `segidx_concurrent_active_readers` — gauges;
    /// * `segidx_concurrent_commits_total`,
    ///   `segidx_concurrent_ops_applied_total`,
    ///   `segidx_concurrent_overloads_total`,
    ///   `segidx_concurrent_reclaimed_total` — counters;
    /// * `segidx_concurrent_queue_wait_nanos`,
    ///   `segidx_concurrent_commit_latency_nanos` — histograms.
    ///
    /// When the index was built with [`Builder::ring_sink`] or
    /// [`Builder::tracer`], the sink's `segidx_events_*` and the tracer's
    /// `segidx_trace_*` series are registered under the same labels.
    pub fn register_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)])
    where
        E: Send + Sync + 'static,
    {
        if let Some(ring) = &self.shared.ring {
            registry.register_ring_sink(ring, labels);
        }
        if let Some(tracer) = &self.shared.tracer {
            registry.register_tracer(tracer, labels);
        }
        let shared = Arc::clone(&self.shared);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        registry.register(Box::new(move |out| {
            let l: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let t = &shared.telemetry;
            out.push(Metric::gauge(
                "segidx_concurrent_epoch",
                &l,
                shared.epochs.global() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_queue_depth",
                &l,
                shared.queue.depth() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_retired_snapshots",
                &l,
                shared.retired_count.load(SeqCst) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_retired_highwater",
                &l,
                shared.retired_highwater.load(SeqCst) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_active_readers",
                &l,
                shared.epochs.active_readers() as f64,
            ));
            out.push(Metric::counter(
                "segidx_concurrent_commits_total",
                &l,
                t.commits(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_ops_applied_total",
                &l,
                t.ops_applied(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_overloads_total",
                &l,
                t.overloads(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_reclaimed_total",
                &l,
                t.reclaimed(),
            ));
            out.push(Metric::histogram(
                "segidx_concurrent_queue_wait_nanos",
                &l,
                t.queue_wait.snapshot(),
            ));
            out.push(Metric::histogram(
                "segidx_concurrent_commit_latency_nanos",
                &l,
                t.commit_latency.snapshot(),
            ));
        }));
    }
}

impl<const D: usize, E> std::fmt::Debug for IndexHandle<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle")
            .field("epoch", &self.epoch())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// The single writer: drain → apply → checkpoint → publish → reclaim.
fn writer_loop<const D: usize, E: SnapshotEngine<D>>(
    shared: Arc<Shared<D, E>>,
    mut tree: E,
    disk: Option<Arc<DiskManager>>,
    max_batch: usize,
    mut hook: Option<CommitHook>,
    global: Option<GlobalLink<D, E>>,
) {
    loop {
        let (batch, closed) = shared.queue.drain(max_batch);
        if batch.is_empty() {
            if closed {
                return;
            }
            continue;
        }
        let commit_start = Instant::now();
        // Each ticket keeps its own queue wait; the apply/checkpoint/
        // publish phases below are shared by the whole group commit.
        let mut tickets: Vec<(Arc<TicketState>, u64)> = Vec::new();
        let mut applied = 0usize;
        for item in batch {
            match item {
                QueueItem::Op {
                    op,
                    ticket,
                    enqueued,
                } => {
                    let waited = enqueued.elapsed();
                    shared.telemetry.queue_wait.record_duration(waited);
                    match op {
                        IndexOp::Insert { rect, record } => tree.apply_insert(rect, record),
                        IndexOp::Delete { rect, record } => {
                            tree.apply_delete(&rect, record);
                        }
                    }
                    applied += 1;
                    tickets.push((ticket, waited.as_nanos() as u64));
                }
                QueueItem::Barrier(ticket) => tickets.push((ticket, 0)),
            }
        }
        let apply_nanos = commit_start.elapsed().as_nanos() as u64;
        if applied == 0 {
            // Barrier-only batch: the published snapshot already covers
            // everything submitted before it.
            let receipt = Ok(CommitReceipt {
                epoch: shared.epochs.global(),
                durable_epoch: shared.published_durable_epoch(),
                ops_in_commit: 0,
            });
            for (t, _) in tickets {
                t.complete(receipt.clone());
            }
            continue;
        }
        let next_epoch = shared.epochs.global() + 1;
        if let Some(hook) = hook.as_mut() {
            hook(next_epoch);
        }
        let checkpoint_start = Instant::now();
        let durable_epoch = match &disk {
            Some(disk) => match tree.checkpoint(disk) {
                Ok(()) => Some(disk.epoch()),
                Err(err) => {
                    // Cannot make this batch durable; publishing it would
                    // break the durability == visibility invariant. Fail
                    // everything and stop: the published snapshot stays at
                    // the last durable epoch.
                    let failure = CommitError::Storage(err.to_string());
                    shared.queue.close();
                    for (t, _) in tickets {
                        t.complete(Err(failure.clone()));
                    }
                    shared.queue.fail_remaining(&failure);
                    return;
                }
            },
            None => None,
        };
        let checkpoint_nanos = if disk.is_some() {
            checkpoint_start.elapsed().as_nanos() as u64
        } else {
            0
        };
        let publish_start = Instant::now();
        let fresh = Arc::new(SnapshotInner {
            epoch: next_epoch,
            durable_epoch,
            tree: tree.clone(),
        });
        let fresh_ptr = Arc::into_raw(Arc::clone(&fresh)) as *mut SnapshotInner<D, E>;
        let old = shared.published.swap(fresh_ptr, SeqCst);
        shared.epochs.advance(next_epoch);
        // Cross-shard visibility: install this shard's new snapshot into
        // the global epoch vector (one pointer swap over there) before
        // retiring the old one locally.
        if let Some(link) = &global {
            link.publisher.publish(link.shard, &fresh);
        }
        shared.retire(old);
        shared.reclaim();
        shared
            .telemetry
            .commit_latency
            .record_duration(commit_start.elapsed());
        shared.telemetry.commits.fetch_add(1, SeqCst);
        shared
            .telemetry
            .ops_applied
            .fetch_add(applied as u64, SeqCst);
        shared.emit(
            Event::new(EventKind::SnapshotPublished)
                .node(next_epoch)
                .detail(applied as u64),
        );
        let receipt = Ok(CommitReceipt {
            epoch: next_epoch,
            durable_epoch,
            ops_in_commit: applied,
        });
        let publish_nanos = publish_start.elapsed().as_nanos() as u64;
        for (t, queue_wait_nanos) in tickets {
            t.set_phases(CommitPhases {
                queue_wait_nanos,
                apply_nanos,
                checkpoint_nanos,
                publish_nanos,
            });
            t.complete(receipt.clone());
        }
    }
}
