//! The sharded multi-writer index: Z-order routing over N independent
//! [`ConcurrentIndex`] shards behind a scatter/gather read layer.
//!
//! # Architecture
//!
//! ```text
//!  submit(op) ──Z-order prefix of rect centroid──► shard i's queue
//!                                                  (own writer thread,
//!                                                   own group commit)
//!  snapshot() ──pin global epoch──► GlobalVector: one Arc per shard,
//!                                   swapped atomically on every shard
//!                                   commit (global_epoch.rs)
//!  search/stab/batch ──fan out over the vector's trees, merge per-shard
//!                      results in record order (bit-identical to the
//!                      unsharded service)
//! ```
//!
//! Each shard owns a bounded submission queue and a group-commit writer
//! thread, so write throughput scales with cores instead of funnelling
//! through one writer. Mutations route by a Z-order (Morton) prefix of the
//! rectangle centroid: spatially close records share a shard, keeping each
//! partition small and independently hot (the HINT observation), and a
//! delete routes to the same shard its insert did because both carry the
//! same rectangle.
//!
//! Reads that span shards never stitch together per-shard pins — they pin
//! one [`GlobalSnapshotGuard`] over the atomically-published epoch vector,
//! so a reader pinned at global epoch `E` can never observe any shard's
//! `E+1` commit. Because every record lives in exactly one shard (cut
//! portions of a segment record stay inside the shard that owns the
//! record), merging the shards' sorted result lists reproduces the
//! unsharded service's output bit-for-bit, record order included.

use crate::engine::SnapshotEngine;
use crate::global_epoch::{GlobalLink, GlobalPublisher, GlobalVector};
use crate::index::{ConcurrentIndex, ConcurrentTelemetry, IndexHandle, SnapshotGuard};
use crate::queue::{CommitError, CommitReceipt, CommitTicket, IndexOp, SubmitError};
use segidx_core::tree::{Neighbor, Tree};
use segidx_core::RecordId;
use segidx_geom::{Point, Rect};
use segidx_obs::trace::{self, Dim, Tracer};
use segidx_obs::{Metric, MetricsRegistry, ObsSink, RingBufferSink};
use segidx_storage::{DiskManager, StorageError};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Static span names for per-shard scatter work, so shard-side spans cost
/// no allocation. Shard ids past the table share the last name.
const SHARD_SPANS: [&str; 8] = [
    "shard.0", "shard.1", "shard.2", "shard.3", "shard.4", "shard.5", "shard.6", "shard.7",
];

fn shard_span_name(shard: usize) -> &'static str {
    SHARD_SPANS[shard.min(SHARD_SPANS.len() - 1)]
}

/// Routes rectangles to shards by a Z-order (Morton) prefix of their
/// centroid: each centroid coordinate is normalized against `domain` into
/// a 16-bit cell, the cells' bits are interleaved most-significant-first,
/// and the first `log2(shards)` interleaved bits pick the shard.
///
/// The shard count must be a power of two (a bit *prefix* selects it).
/// Rectangles whose centroid falls outside the domain clamp to the
/// nearest edge cell, so routing is total — nothing is ever dropped.
#[derive(Clone, Debug)]
pub struct ZOrderRouter<const D: usize> {
    domain: Rect<D>,
    shards: usize,
    bits: u32,
}

impl<const D: usize> ZOrderRouter<D> {
    /// A router over `domain` splitting into `shards` partitions.
    ///
    /// # Panics
    ///
    /// If `shards` is zero, not a power of two, or needs more prefix bits
    /// than the `16 * D` the centroid grid provides.
    pub fn new(domain: Rect<D>, shards: usize) -> Self {
        assert!(
            shards >= 1 && shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let bits = shards.trailing_zeros();
        assert!(
            bits as usize <= 16 * D,
            "{shards} shards need {bits} prefix bits; a {D}-dimensional \
             centroid grid provides {}",
            16 * D
        );
        Self {
            domain,
            shards,
            bits,
        }
    }

    /// Number of shards this router splits into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The domain rectangle centroids are normalized against.
    pub fn domain(&self) -> &Rect<D> {
        &self.domain
    }

    /// The shard owning `rect` (by its centroid's Z-order prefix).
    pub fn route(&self, rect: &Rect<D>) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let center = rect.center();
        let mut cells = [0u32; D];
        for (d, cell) in cells.iter_mut().enumerate() {
            let lo = self.domain.lo(d);
            let span = self.domain.hi(d) - lo;
            let t = if span > 0.0 {
                ((center.coord(d) - lo) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
            *cell = ((t * 65_536.0) as u32).min(65_535);
        }
        // MSB-first interleave: bit j of the Z-value comes from dimension
        // j % D, bit 15 - j / D of its cell. The first `bits` bits are the
        // shard id.
        let mut shard = 0usize;
        for j in 0..self.bits as usize {
            let bit = (cells[j % D] >> (15 - j / D)) & 1;
            shard = (shard << 1) | bit as usize;
        }
        shard
    }

    /// Splits `records` into per-shard lists (index = shard id). The
    /// canonical way to build per-shard trees before
    /// [`ShardedIndex::builder`].
    pub fn partition(&self, records: &[(Rect<D>, RecordId)]) -> Vec<Vec<(Rect<D>, RecordId)>> {
        let mut parts = vec![Vec::new(); self.shards];
        for (rect, id) in records {
            parts[self.route(rect)].push((*rect, *id));
        }
        parts
    }
}

/// Per-shard submission counts, for spotting routing skew.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingStats {
    /// Operations routed to each shard since start.
    pub per_shard: Vec<u64>,
    /// Total operations routed.
    pub total: u64,
}

impl RoutingStats {
    /// Hottest shard's load divided by the mean (1.0 = perfectly even,
    /// `shards as f64` = everything on one shard). 0.0 when idle.
    pub fn imbalance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.total as f64 / self.per_shard.len() as f64;
        let max = self.per_shard.iter().copied().max().unwrap_or(0);
        max as f64 / mean
    }
}

/// Configures and starts a [`ShardedIndex`].
pub struct ShardedBuilder<const D: usize, E = Tree<D>> {
    router: ZOrderRouter<D>,
    trees: Vec<E>,
    disks: Option<Vec<Arc<DiskManager>>>,
    queue_capacity: usize,
    max_batch: usize,
    sink: Option<Arc<dyn ObsSink>>,
    ring: Option<Arc<RingBufferSink>>,
    tracer: Option<Arc<Tracer>>,
}

impl<const D: usize, E: SnapshotEngine<D>> ShardedBuilder<D, E> {
    /// Per-shard submission queue capacity (see
    /// [`Builder::queue_capacity`](crate::Builder::queue_capacity)).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Per-shard group-commit batch limit (see
    /// [`Builder::max_batch`](crate::Builder::max_batch)).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Receives every shard's events plus the global publisher's
    /// `EpochReclaimed` events.
    pub fn sink(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Like [`sink`](Self::sink), but keeps the concrete ring-buffer
    /// handle so [`ShardedIndex::register_metrics`] also exports the
    /// sink's dropped/buffered series (registered once, not per shard).
    pub fn ring_sink(mut self, sink: Arc<RingBufferSink>) -> Self {
        self.ring = Some(Arc::clone(&sink));
        self.sink = Some(sink);
        self
    }

    /// Associates a [`Tracer`] whose sampling/drop/flight-recorder series
    /// [`ShardedIndex::register_metrics`] should export.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Backs each shard with its own [`DiskManager`]; shard `i` commits
    /// through `disks[i]` before publishing, exactly like the unsharded
    /// durable mode.
    ///
    /// # Panics
    ///
    /// If `disks.len()` differs from the shard count.
    pub fn durable(mut self, disks: Vec<Arc<DiskManager>>) -> Self {
        assert_eq!(
            disks.len(),
            self.router.shards(),
            "one DiskManager per shard"
        );
        self.disks = Some(disks);
        self
    }

    /// Starts every shard's writer thread and publishes the initial
    /// global epoch vector (global epoch 0, every shard at epoch 0).
    pub fn start(self) -> Result<ShardedIndex<D, E>, StorageError> {
        let ShardedBuilder {
            router,
            trees,
            disks,
            queue_capacity,
            max_batch,
            sink,
            ring,
            tracer,
        } = self;
        // Two-phase start: prepare every shard first (building its epoch-0
        // snapshot), seed the global vector with all of them, and only
        // then spawn writers — no shard can publish into a half-built
        // vector.
        let mut prepared = Vec::with_capacity(trees.len());
        for (i, tree) in trees.into_iter().enumerate() {
            let mut builder = ConcurrentIndex::builder(tree)
                .queue_capacity(queue_capacity)
                .max_batch(max_batch);
            if let Some(sink) = &sink {
                builder = builder.sink(Arc::clone(sink));
            }
            if let Some(disks) = &disks {
                builder = builder.durable(Arc::clone(&disks[i]));
            }
            prepared.push(builder.prepare()?);
        }
        let initial = prepared.iter().map(|p| Arc::clone(p.initial())).collect();
        let publisher = Arc::new(GlobalPublisher::new(initial, sink));
        let shards: Vec<ConcurrentIndex<D, E>> = prepared
            .into_iter()
            .enumerate()
            .map(|(shard, p)| {
                p.launch(Some(GlobalLink {
                    shard,
                    publisher: Arc::clone(&publisher),
                }))
            })
            .collect();
        let routed: Arc<[AtomicU64]> = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(ShardedIndex {
            shards,
            router,
            publisher,
            routed,
            ring,
            tracer,
        })
    }
}

/// An index partitioned into N [`ConcurrentIndex`] shards — one bounded
/// queue and group-commit writer thread *per shard* — behind Z-order
/// routing and cross-shard epoch snapshots.
///
/// Build per-shard trees with [`ZOrderRouter::partition`], then:
///
/// ```
/// use segidx_concurrent::{ShardedIndex, ZOrderRouter, IndexOp};
/// use segidx_core::tree::Tree;
/// use segidx_core::{IndexConfig, RecordId};
/// use segidx_geom::Rect;
///
/// let router = ZOrderRouter::new(Rect::new([0.0, 0.0], [100.0, 100.0]), 4);
/// let trees = (0..4).map(|_| Tree::<2>::new(IndexConfig::srtree())).collect();
/// let index = ShardedIndex::builder(router, trees).start().unwrap();
///
/// index
///     .submit(IndexOp::Insert {
///         rect: Rect::new([10.0, 10.0], [20.0, 12.0]),
///         record: RecordId(7),
///     })
///     .unwrap()
///     .wait()
///     .unwrap();
///
/// let snap = index.snapshot(); // one consistent cross-shard snapshot
/// assert_eq!(snap.search(&Rect::new([0.0, 0.0], [50.0, 50.0])), vec![RecordId(7)]);
/// ```
pub struct ShardedIndex<const D: usize, E = Tree<D>> {
    shards: Vec<ConcurrentIndex<D, E>>,
    router: ZOrderRouter<D>,
    publisher: Arc<GlobalPublisher<D, E>>,
    routed: Arc<[AtomicU64]>,
    ring: Option<Arc<RingBufferSink>>,
    tracer: Option<Arc<Tracer>>,
}

impl<const D: usize, E: SnapshotEngine<D>> ShardedIndex<D, E> {
    /// A builder over `router` and one pre-built tree per shard (shard `i`
    /// serves `trees[i]`; use [`ZOrderRouter::partition`] to split an
    /// initial load consistently with later routing).
    ///
    /// # Panics
    ///
    /// If `trees.len()` differs from `router.shards()`.
    pub fn builder(router: ZOrderRouter<D>, trees: Vec<E>) -> ShardedBuilder<D, E> {
        assert_eq!(trees.len(), router.shards(), "one tree per shard");
        ShardedBuilder {
            router,
            trees,
            disks: None,
            queue_capacity: 1024,
            max_batch: 128,
            sink: None,
            ring: None,
            tracer: None,
        }
    }

    /// A cloneable handle sharing this index's snapshot/submit API.
    pub fn handle(&self) -> ShardedHandle<D, E> {
        ShardedHandle {
            handles: self.shards.iter().map(ConcurrentIndex::handle).collect(),
            router: self.router.clone(),
            publisher: Arc::clone(&self.publisher),
            routed: Arc::clone(&self.routed),
        }
    }

    /// Routes `op` to its shard's queue. Backpressure is per shard: a hot
    /// shard rejects with [`SubmitError::Overloaded`] while cold shards
    /// keep accepting.
    pub fn submit(&self, op: IndexOp<D>) -> Result<CommitTicket, SubmitError> {
        submit_routed(&self.router, &self.routed, op, |shard, op| {
            self.shards[shard].submit(op)
        })
    }

    /// Routes a run of operations to their shards, submitting each
    /// shard's portion under one queue lock (see
    /// [`IndexHandle::submit_batch`]). Outcomes come back in input order;
    /// backpressure stays per shard — a hot shard's rejections leave ops
    /// routed to cold shards admitted.
    pub fn submit_batch(&self, ops: Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>> {
        submit_routed_batch(&self.router, &self.routed, ops, |shard, ops| {
            self.shards[shard].submit_batch(ops)
        })
    }

    /// The shard `op` would route to.
    pub fn route(&self, op: &IndexOp<D>) -> usize {
        self.router.route(op_rect(op))
    }

    /// Pins one consistent cross-shard snapshot: every shard is observed
    /// at the epoch recorded in the same atomically-published global
    /// vector. Never blocks.
    pub fn snapshot(&self) -> GlobalSnapshotGuard<D, E> {
        acquire_guard(&self.publisher)
    }

    /// Pins shard `shard`'s *local* snapshot — cheaper than a global pin
    /// when the caller knows its query touches one shard.
    pub fn shard_snapshot(&self, shard: usize) -> SnapshotGuard<D, E> {
        self.shards[shard].snapshot()
    }

    /// Flushes every shard: blocks until everything submitted before this
    /// call is committed and published, returning per-shard receipts.
    pub fn flush(&self) -> Result<Vec<CommitReceipt>, CommitError> {
        self.shards.iter().map(ConcurrentIndex::flush).collect()
    }

    /// The current global epoch (one tick per shard commit, any shard).
    pub fn global_epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router mutations and [`ZOrderRouter::partition`] share.
    pub fn router(&self) -> &ZOrderRouter<D> {
        &self.router
    }

    /// Shard `shard`'s writer-side telemetry.
    pub fn shard_telemetry(&self, shard: usize) -> Arc<ConcurrentTelemetry> {
        self.shards[shard].telemetry()
    }

    /// Per-shard routing counts since start.
    pub fn routing_stats(&self) -> RoutingStats {
        let per_shard: Vec<u64> = self.routed.iter().map(|c| c.load(SeqCst)).collect();
        let total = per_shard.iter().sum();
        RoutingStats { per_shard, total }
    }

    /// Retired global epoch vectors not yet reclaimed (cross-shard
    /// readers still pin them).
    pub fn retired_vectors(&self) -> usize {
        self.publisher.retired_vectors()
    }

    /// The largest retired-vector backlog ever observed.
    pub fn retired_vector_highwater(&self) -> usize {
        self.publisher.retired_highwater()
    }

    /// Registers every shard's metric families under `labels` plus a
    /// `shard="<id>"` label, and a `shard="all"` rollup (summed counters,
    /// merged histograms, global-epoch/routing gauges). See
    /// [`IndexHandle::register_metrics`] for the per-shard names; the
    /// rollup adds `segidx_sharded_shards`, `segidx_sharded_global_epoch`,
    /// `segidx_sharded_retired_vectors`, `segidx_sharded_routing_imbalance`
    /// and `segidx_sharded_routed_ops_total` (the last also per shard).
    pub fn register_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        if let Some(ring) = &self.ring {
            registry.register_ring_sink(ring, labels);
        }
        if let Some(tracer) = &self.tracer {
            registry.register_tracer(tracer, labels);
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let id = i.to_string();
            let mut l: Vec<(&str, &str)> = labels.to_vec();
            l.push(("shard", &id));
            shard.handle().register_metrics(registry, &l);
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let handles: Vec<IndexHandle<D, E>> =
            self.shards.iter().map(ConcurrentIndex::handle).collect();
        let telemetry: Vec<Arc<ConcurrentTelemetry>> =
            self.shards.iter().map(ConcurrentIndex::telemetry).collect();
        let publisher = Arc::clone(&self.publisher);
        let routed = Arc::clone(&self.routed);
        registry.register(Box::new(move |out| {
            let mut base: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            // Per-shard routing counters carry the numeric shard label...
            let ids: Vec<String> = (0..routed.len()).map(|i| i.to_string()).collect();
            for (i, id) in ids.iter().enumerate() {
                let mut l = base.clone();
                l.push(("shard", id));
                out.push(Metric::counter(
                    "segidx_sharded_routed_ops_total",
                    &l,
                    routed[i].load(SeqCst),
                ));
            }
            // ...and everything below is the shard="all" rollup.
            base.push(("shard", "all"));
            let l = &base[..];
            let total_routed: u64 = routed.iter().map(|c| c.load(SeqCst)).sum();
            let stats = RoutingStats {
                per_shard: routed.iter().map(|c| c.load(SeqCst)).collect(),
                total: total_routed,
            };
            out.push(Metric::gauge(
                "segidx_sharded_shards",
                l,
                handles.len() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_sharded_global_epoch",
                l,
                publisher.epoch() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_sharded_retired_vectors",
                l,
                publisher.retired_vectors() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_sharded_retired_vector_highwater",
                l,
                publisher.retired_highwater() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_sharded_routing_imbalance",
                l,
                stats.imbalance(),
            ));
            out.push(Metric::counter(
                "segidx_sharded_routed_ops_total",
                l,
                total_routed,
            ));
            out.push(Metric::counter(
                "segidx_sharded_global_publishes_total",
                l,
                publisher.publishes(),
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_epoch",
                l,
                publisher.epoch() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_queue_depth",
                l,
                handles.iter().map(IndexHandle::queue_depth).sum::<usize>() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_retired_snapshots",
                l,
                handles
                    .iter()
                    .map(IndexHandle::retired_snapshots)
                    .sum::<usize>() as f64
                    + publisher.retired_vectors() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_retired_highwater",
                l,
                handles
                    .iter()
                    .map(IndexHandle::retired_highwater)
                    .max()
                    .unwrap_or(0) as f64,
            ));
            out.push(Metric::gauge(
                "segidx_concurrent_active_readers",
                l,
                publisher.active_readers() as f64,
            ));
            out.push(Metric::counter(
                "segidx_concurrent_commits_total",
                l,
                telemetry.iter().map(|t| t.commits()).sum(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_ops_applied_total",
                l,
                telemetry.iter().map(|t| t.ops_applied()).sum(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_overloads_total",
                l,
                telemetry.iter().map(|t| t.overloads()).sum(),
            ));
            out.push(Metric::counter(
                "segidx_concurrent_reclaimed_total",
                l,
                telemetry.iter().map(|t| t.reclaimed()).sum::<u64>() + publisher.reclaimed(),
            ));
            let mut queue_wait = telemetry[0].queue_wait.snapshot();
            let mut commit_latency = telemetry[0].commit_latency.snapshot();
            for t in &telemetry[1..] {
                queue_wait.merge(&t.queue_wait.snapshot());
                commit_latency.merge(&t.commit_latency.snapshot());
            }
            out.push(Metric::histogram(
                "segidx_concurrent_queue_wait_nanos",
                l,
                queue_wait,
            ));
            out.push(Metric::histogram(
                "segidx_concurrent_commit_latency_nanos",
                l,
                commit_latency,
            ));
        }));
    }

    /// Shuts every shard down gracefully (already-queued operations still
    /// commit). Equivalent to `drop`, but explicit.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

impl<const D: usize, E: SnapshotEngine<D>> std::fmt::Debug for ShardedIndex<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("global_epoch", &self.global_epoch())
            .field("retired_vectors", &self.retired_vectors())
            .finish()
    }
}

/// A cloneable, `Send + Sync` handle to a [`ShardedIndex`]. Like
/// [`IndexHandle`], handles do not keep the writers alive: after the
/// owning index shuts down, submissions fail with [`SubmitError::Closed`]
/// while snapshots keep serving the last published global vector.
#[derive(Clone)]
pub struct ShardedHandle<const D: usize, E = Tree<D>> {
    handles: Vec<IndexHandle<D, E>>,
    router: ZOrderRouter<D>,
    publisher: Arc<GlobalPublisher<D, E>>,
    routed: Arc<[AtomicU64]>,
}

impl<const D: usize, E> ShardedHandle<D, E> {
    /// Pins one consistent cross-shard snapshot. Never blocks.
    pub fn snapshot(&self) -> GlobalSnapshotGuard<D, E> {
        acquire_guard(&self.publisher)
    }

    /// Routes `op` to its shard's queue (see [`ShardedIndex::submit`]).
    pub fn submit(&self, op: IndexOp<D>) -> Result<CommitTicket, SubmitError> {
        submit_routed(&self.router, &self.routed, op, |shard, op| {
            self.handles[shard].submit(op)
        })
    }

    /// Routes and submits a run of operations (see
    /// [`ShardedIndex::submit_batch`]).
    pub fn submit_batch(&self, ops: Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>> {
        submit_routed_batch(&self.router, &self.routed, ops, |shard, ops| {
            self.handles[shard].submit_batch(ops)
        })
    }

    /// Flushes every shard (see [`ShardedIndex::flush`]).
    pub fn flush(&self) -> Result<Vec<CommitReceipt>, CommitError> {
        self.handles.iter().map(IndexHandle::flush).collect()
    }

    /// The current global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }
}

impl<const D: usize, E> std::fmt::Debug for ShardedHandle<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("shards", &self.handles.len())
            .field("global_epoch", &self.global_epoch())
            .finish()
    }
}

fn op_rect<const D: usize>(op: &IndexOp<D>) -> &Rect<D> {
    match op {
        IndexOp::Insert { rect, .. } | IndexOp::Delete { rect, .. } => rect,
    }
}

fn submit_routed<const D: usize>(
    router: &ZOrderRouter<D>,
    routed: &[AtomicU64],
    op: IndexOp<D>,
    submit: impl FnOnce(usize, IndexOp<D>) -> Result<CommitTicket, SubmitError>,
) -> Result<CommitTicket, SubmitError> {
    let shard = router.route(op_rect(&op));
    let ticket = submit(shard, op)?;
    routed[shard].fetch_add(1, SeqCst);
    Ok(ticket)
}

/// Scatters `ops` to their shards, submits each shard's portion as one
/// batch, and reassembles the per-op outcomes in input order. Routed
/// counters count admitted ops only, matching [`submit_routed`].
fn submit_routed_batch<const D: usize>(
    router: &ZOrderRouter<D>,
    routed: &[AtomicU64],
    ops: Vec<IndexOp<D>>,
    submit: impl Fn(usize, Vec<IndexOp<D>>) -> Vec<Result<CommitTicket, SubmitError>>,
) -> Vec<Result<CommitTicket, SubmitError>> {
    let total = ops.len();
    let mut by_shard: Vec<(Vec<usize>, Vec<IndexOp<D>>)> =
        vec![(Vec::new(), Vec::new()); routed.len()];
    for (i, op) in ops.into_iter().enumerate() {
        let shard = router.route(op_rect(&op));
        by_shard[shard].0.push(i);
        by_shard[shard].1.push(op);
    }
    let mut out: Vec<Option<Result<CommitTicket, SubmitError>>> = Vec::new();
    out.resize_with(total, || None);
    for (shard, (indices, shard_ops)) in by_shard.into_iter().enumerate() {
        if shard_ops.is_empty() {
            continue;
        }
        let results = submit(shard, shard_ops);
        debug_assert_eq!(results.len(), indices.len());
        let mut admitted = 0u64;
        for (i, r) in indices.into_iter().zip(results) {
            if r.is_ok() {
                admitted += 1;
            }
            out[i] = Some(r);
        }
        if admitted > 0 {
            routed[shard].fetch_add(admitted, SeqCst);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every op was routed to exactly one shard"))
        .collect()
}

fn acquire_guard<const D: usize, E>(
    publisher: &Arc<GlobalPublisher<D, E>>,
) -> GlobalSnapshotGuard<D, E> {
    let (slot, ptr) = publisher.acquire();
    GlobalSnapshotGuard {
        publisher: Arc::clone(publisher),
        ptr,
        slot,
    }
}

/// A pinned, immutable view of one published global epoch vector: every
/// shard at the epoch recorded by the *same* atomic publication.
///
/// Reads fan out across the shards' trees and merge per-shard results in
/// record order, so `search`/`stab`/`search_batch`/`stab_batch` return
/// exactly what the unsharded service would for the same logical
/// contents. Holding a guard keeps its vector (and each referenced shard
/// snapshot) alive; drop it promptly so retired vectors can be reclaimed.
pub struct GlobalSnapshotGuard<const D: usize, E = Tree<D>> {
    publisher: Arc<GlobalPublisher<D, E>>,
    ptr: *const GlobalVector<D, E>,
    slot: usize,
}

// SAFETY: the guard's pointer is protected by its refined epoch pin; the
// pointee is immutable and `Send + Sync`.
unsafe impl<const D: usize, E: Send + Sync> Send for GlobalSnapshotGuard<D, E> {}
unsafe impl<const D: usize, E: Send + Sync> Sync for GlobalSnapshotGuard<D, E> {}

impl<const D: usize, E: SnapshotEngine<D>> GlobalSnapshotGuard<D, E> {
    fn vector(&self) -> &GlobalVector<D, E> {
        // SAFETY: the refined pin taken in `acquire` keeps `ptr` alive,
        // and published vectors are never mutated.
        unsafe { &*self.ptr }
    }

    /// The global epoch this vector was published at. Monotone across
    /// re-pins on the same index.
    pub fn global_epoch(&self) -> u64 {
        self.vector().epoch
    }

    /// Number of shards in the vector.
    pub fn shard_count(&self) -> usize {
        self.vector().shards.len()
    }

    /// Shard `shard`'s local epoch in this snapshot.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.vector().shards[shard].epoch
    }

    /// Shard `shard`'s storage meta-commit epoch in this snapshot
    /// (`None` for memory-only shards).
    pub fn shard_durable_epoch(&self, shard: usize) -> Option<u64> {
        self.vector().shards[shard].durable_epoch
    }

    /// Shard `shard`'s engine, for reads that target one shard directly.
    pub fn shard_tree(&self, shard: usize) -> &E {
        &self.vector().shards[shard].tree
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.vector().shards.iter().map(|s| s.tree.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records intersecting `query`, merged across shards in record
    /// order — bit-identical to [`Tree::search`] on the unsharded
    /// contents.
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let sp = trace::span("sharded.search");
        let shards = &self.vector().shards;
        trace::add(Dim::ShardFanout, shards.len() as u64);
        let parts: Vec<Vec<RecordId>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let ssp = trace::span(shard_span_name(i));
                let part = s.tree.search(query);
                ssp.items(part.len() as u64);
                part
            })
            .collect();
        let msp = trace::span("sharded.merge");
        let out = merge_sorted(parts);
        msp.items(out.len() as u64);
        drop(msp);
        sp.items(out.len() as u64);
        out
    }

    /// All records containing `p`, merged across shards in record order —
    /// bit-identical to [`Tree::stab`] on the unsharded contents.
    pub fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        let sp = trace::span("sharded.stab");
        let shards = &self.vector().shards;
        trace::add(Dim::ShardFanout, shards.len() as u64);
        let parts: Vec<Vec<RecordId>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let ssp = trace::span(shard_span_name(i));
                let part = s.tree.stab(p);
                ssp.items(part.len() as u64);
                part
            })
            .collect();
        let msp = trace::span("sharded.merge");
        let out = merge_sorted(parts);
        msp.items(out.len() as u64);
        drop(msp);
        sp.items(out.len() as u64);
        out
    }

    /// The `k` records nearest to `p` across all shards, nearest first;
    /// ties broken by record id (deterministic, unlike the single-tree
    /// [`Tree::nearest`] whose ties are arbitrary).
    pub fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        let _sp = trace::span("sharded.nearest");
        let shards = &self.vector().shards;
        trace::add(Dim::ShardFanout, shards.len() as u64);
        let mut all: Vec<Neighbor<D>> = shards
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                let ssp = trace::span(shard_span_name(i));
                let part = s.tree.nearest(p, k);
                ssp.items(part.len() as u64);
                part
            })
            .collect();
        all.sort_unstable_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.record.cmp(&b.record))
        });
        all.truncate(k);
        all
    }

    /// Batched [`search`](Self::search): scatters the whole query list to
    /// one thread per shard (each running the engine's
    /// [`search_many`](SnapshotEngine::search_many), which reuses scratch
    /// state across its queries), then gathers per-query merges in input
    /// order.
    pub fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        self.scatter_gather(queries.len(), |engine| engine.search_many(queries))
    }

    /// Batched [`stab`](Self::stab), same fan-out as
    /// [`search_batch`](Self::search_batch).
    pub fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        self.scatter_gather(points.len(), |engine| engine.stab_many(points))
    }

    fn scatter_gather(
        &self,
        queries: usize,
        run: impl Fn(&E) -> Vec<Vec<RecordId>> + Sync,
    ) -> Vec<Vec<RecordId>> {
        let sp = trace::span("sharded.scatter");
        let shards = &self.vector().shards;
        trace::add(Dim::ShardFanout, shards.len() as u64);
        if shards.len() == 1 {
            let out = run(&shards[0].tree);
            drop(sp);
            return out;
        }
        // Hand the submitting thread's trace to every worker: each shard's
        // reads land as children of the scatter span, tagged with the
        // shard id, even though they run on scoped threads.
        let ctx = trace::current();
        let run = &run;
        let mut per_shard: Vec<Vec<Vec<RecordId>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _g = ctx.and_then(|c| c.enter(shard_span_name(i), i as u64));
                        run(&s.tree)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard read worker"))
                .collect()
        });
        drop(sp);
        let msp = trace::span("sharded.gather");
        let out: Vec<Vec<RecordId>> = (0..queries)
            .map(|i| {
                merge_sorted(
                    per_shard
                        .iter_mut()
                        .map(|shard| std::mem::take(&mut shard[i]))
                        .collect(),
                )
            })
            .collect();
        msp.items(out.len() as u64);
        out
    }

    /// Structural validation of every shard tree in the pinned vector;
    /// errors are prefixed with their shard id.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (i, s) in self.vector().shards.iter().enumerate() {
            for e in s.tree.check_invariants() {
                errs.push(format!("shard {i}: {e}"));
            }
        }
        errs
    }

    /// Panics if any shard tree violates its invariants.
    pub fn assert_invariants(&self) {
        let errs = self.check_invariants();
        assert!(errs.is_empty(), "sharded snapshot invariants: {errs:?}");
    }
}

impl<const D: usize, E> Drop for GlobalSnapshotGuard<D, E> {
    fn drop(&mut self) {
        self.publisher.release(self.slot);
    }
}

impl<const D: usize, E: SnapshotEngine<D>> std::fmt::Debug for GlobalSnapshotGuard<D, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalSnapshotGuard")
            .field("global_epoch", &self.global_epoch())
            .field("shards", &self.shard_count())
            .field("len", &self.len())
            .finish()
    }
}

/// Merges per-shard ascending-by-id result lists into one ascending list.
/// Shard contents are disjoint (each record routes to exactly one shard),
/// so this reproduces the unsharded sorted output exactly.
fn merge_sorted(mut parts: Vec<Vec<RecordId>>) -> Vec<RecordId> {
    parts.retain(|p| !p.is_empty());
    match parts.len() {
        0 => return Vec::new(),
        1 => return parts.pop().unwrap(),
        _ => {}
    }
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    let mut idx = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(RecordId, usize)> = None;
        for (s, part) in parts.iter().enumerate() {
            if let Some(&candidate) = part.get(idx[s]) {
                if best.map_or(true, |(b, _)| candidate < b) {
                    best = Some((candidate, s));
                }
            }
        }
        let Some((id, s)) = best else { break };
        out.push(id);
        idx[s] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_core::IndexConfig;

    fn router(shards: usize) -> ZOrderRouter<2> {
        ZOrderRouter::new(Rect::new([0.0, 0.0], [1_000.0, 1_000.0]), shards)
    }

    #[test]
    fn routing_is_total_and_stable() {
        let r = router(8);
        let mut seen = vec![0u64; 8];
        for i in 0..4_000u64 {
            let x = ((i * 131) % 1_000) as f64;
            let y = ((i * 67) % 1_000) as f64;
            let rect = Rect::new([x, y], [x + 3.0, y + 2.0]);
            let shard = r.route(&rect);
            assert!(shard < 8);
            assert_eq!(shard, r.route(&rect), "routing is deterministic");
            seen[shard] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "uniform data reaches every shard: {seen:?}"
        );
    }

    #[test]
    fn quadrants_map_to_distinct_shards_at_four_way_split() {
        let r = router(4);
        // With 4 shards over 2-D data the prefix is (x-msb, y-msb): the
        // four quadrants of the domain land in four different shards.
        let q = |x: f64, y: f64| r.route(&Rect::new([x, y], [x + 1.0, y + 1.0]));
        let shards = [
            q(100.0, 100.0),
            q(900.0, 100.0),
            q(100.0, 900.0),
            q(900.0, 900.0),
        ];
        let mut unique = shards.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "quadrants spread: {shards:?}");
    }

    #[test]
    fn out_of_domain_centroids_clamp() {
        let r = router(4);
        let far = Rect::new([5_000.0, 5_000.0], [5_010.0, 5_010.0]);
        assert!(r.route(&far) < 4);
        let negative = Rect::new([-500.0, -500.0], [-490.0, -490.0]);
        assert!(r.route(&negative) < 4);
    }

    #[test]
    fn single_shard_router_skips_the_math() {
        let r = router(1);
        assert_eq!(r.route(&Rect::new([0.0, 0.0], [1.0, 1.0])), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shard_count_is_rejected() {
        router(3);
    }

    #[test]
    fn partition_agrees_with_route() {
        let r = router(4);
        let records: Vec<(Rect<2>, RecordId)> = (0..500u64)
            .map(|i| {
                let x = ((i * 37) % 1_000) as f64;
                let y = ((i * 113) % 1_000) as f64;
                (Rect::new([x, y], [x + 5.0, y + 5.0]), RecordId(i))
            })
            .collect();
        let parts = r.partition(&records);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), records.len());
        for (shard, part) in parts.iter().enumerate() {
            for (rect, _) in part {
                assert_eq!(r.route(rect), shard);
            }
        }
    }

    #[test]
    fn merge_sorted_reproduces_global_sort() {
        let a = vec![RecordId(1), RecordId(4), RecordId(9)];
        let b = vec![RecordId(2), RecordId(3), RecordId(11)];
        let c = vec![RecordId(0)];
        let merged = merge_sorted(vec![a, b, c, Vec::new()]);
        let expect: Vec<RecordId> = [0u64, 1, 2, 3, 4, 9, 11]
            .iter()
            .map(|&i| RecordId(i))
            .collect();
        assert_eq!(merged, expect);
    }

    #[test]
    fn boundary_centroids_route_in_range_and_deterministically() {
        // Centroids exactly on the domain corners, edges, and midlines —
        // the `t == 1.0` and `t == 0.0` cell-mapping extremes.
        let r = router(8);
        let on = |x: f64, y: f64| Rect::new([x, y], [x, y]);
        let cases = [
            on(0.0, 0.0),
            on(1_000.0, 1_000.0),
            on(0.0, 1_000.0),
            on(1_000.0, 0.0),
            on(500.0, 0.0),
            on(0.0, 500.0),
            on(500.0, 500.0),
            on(1_000.0, 500.0),
        ];
        for rect in &cases {
            let shard = r.route(rect);
            assert!(shard < 8, "boundary centroid {rect:?} out of range");
            assert_eq!(shard, r.route(rect), "boundary routing is stable");
        }
        // The hi-corner centroid clamps into the top cell, not past it:
        // it lands in the same shard as a point just inside the corner.
        assert_eq!(r.route(&on(1_000.0, 1_000.0)), r.route(&on(999.9, 999.9)));
    }

    #[test]
    fn degenerate_rectangles_route_like_their_centroid_point() {
        let r = router(4);
        for i in 0..64u64 {
            let x = ((i * 131) % 1_000) as f64;
            let y = ((i * 67) % 1_000) as f64;
            let point = Rect::new([x, y], [x, y]);
            // A zero-extent rect in one dimension (a horizontal segment
            // collapsed to its centroid) routes with the same rule.
            let flat = Rect::new([x - 10.0, y], [x + 10.0, y]);
            assert_eq!(r.route(&point), r.route(&flat), "at ({x}, {y})");
            assert!(r.route(&point) < 4);
        }
    }

    #[test]
    fn out_of_domain_clamping_is_directional() {
        // Clamped centroids keep their in-domain coordinate: far-right
        // rects land with right-edge routes, far-left with left-edge ones.
        let r = router(4);
        let right = Rect::new([5_000.0, 400.0], [5_010.0, 400.0]);
        let at_right_edge = Rect::new([999.0, 400.0], [999.0, 400.0]);
        assert_eq!(r.route(&right), r.route(&at_right_edge));
        let left = Rect::new([-5_000.0, 400.0], [-4_990.0, 400.0]);
        let at_left_edge = Rect::new([0.0, 400.0], [0.0, 400.0]);
        assert_eq!(r.route(&left), r.route(&at_left_edge));
    }

    #[test]
    fn sharded_service_runs_the_hint_engine() {
        use segidx_core::hint::HintIndex;
        let r = router(4);
        let engines = (0..4).map(|_| HintIndex::<2>::new()).collect();
        let index = ShardedIndex::builder(r, engines).start().unwrap();
        for i in 0..400u64 {
            let x = ((i * 131) % 950) as f64;
            let y = ((i * 67) % 950) as f64;
            index
                .submit(IndexOp::Insert {
                    rect: Rect::new([x, y], [x + 20.0, y + 4.0]),
                    record: RecordId(i),
                })
                .unwrap();
        }
        index.flush().unwrap();
        let snap = index.snapshot();
        assert_eq!(snap.len(), 400);
        snap.assert_invariants();
        let everything = snap.search(&Rect::new([0.0, 0.0], [1_000.0, 1_000.0]));
        assert_eq!(everything.len(), 400);
        assert!(everything.windows(2).all(|w| w[0] < w[1]), "record order");
        let q = Rect::new([100.0, 0.0], [300.0, 1_000.0]);
        assert_eq!(snap.search_batch(&[q]), vec![snap.search(&q)]);
        let p = Point::new([200.0, 268.0]);
        assert_eq!(snap.stab_batch(&[p]), vec![snap.stab(&p)]);
        index.shutdown();
    }

    #[test]
    fn traced_read_and_commit_span_the_whole_stack() {
        use segidx_obs::trace::OpClass;

        let r = router(4);
        let trees = (0..4)
            .map(|_| Tree::<2>::new(IndexConfig::srtree()))
            .collect();
        let index = ShardedIndex::builder(r, trees).start().unwrap();
        let tracer = Arc::new(Tracer::with_config(1, 4, 4096));

        // Traced write: the ticket wait attributes the writer's commit
        // phases to the submitter's trace.
        {
            let _g = tracer.force(OpClass::Insert, "sharded_insert").unwrap();
            let ticket = index
                .submit(IndexOp::Insert {
                    rect: Rect::new([10.0, 10.0], [30.0, 12.0]),
                    record: RecordId(0),
                })
                .unwrap();
            let receipt = ticket.wait().unwrap();
            assert!(receipt.epoch >= 1);
            let phases = ticket.phases().expect("writer reported phases");
            assert!(phases.total_nanos() > 0);
            assert_eq!(phases.checkpoint_nanos, 0, "memory-only index");
        }
        let t = tracer.last_completed().unwrap();
        assert_eq!(t.check_well_formed(), Vec::<String>::new());
        assert!(t.spans.iter().any(|s| s.name == "commit.wait"));
        assert!(t.spans.iter().any(|s| s.name == "commit.apply"));
        assert!(t.profile.dim(Dim::ApplyNanos) > 0);

        for i in 1..200u64 {
            let x = ((i * 131) % 950) as f64;
            let y = ((i * 67) % 950) as f64;
            index
                .submit(IndexOp::Insert {
                    rect: Rect::new([x, y], [x + 20.0, y + 4.0]),
                    record: RecordId(i),
                })
                .unwrap();
        }
        index.flush().unwrap();

        // Traced batched read: scatter workers adopt the submitting
        // thread's trace, so one trace spans all four shard threads.
        {
            let _g = tracer.force(OpClass::Search, "sharded_search").unwrap();
            let snap = index.snapshot();
            let q = Rect::new([0.0, 0.0], [1_000.0, 1_000.0]);
            let got = snap.search_batch(&[q]);
            assert_eq!(got[0].len(), 200);
        }
        let t = tracer.last_completed().unwrap();
        assert_eq!(t.check_well_formed(), Vec::<String>::new());
        assert!(t.spans.iter().any(|s| s.name == "sharded.scatter"));
        assert!(t.spans.iter().any(|s| s.name.starts_with("shard.")));
        assert!(
            t.spans.iter().any(|s| s.name == "tree.search"),
            "per-shard engine work is part of the same trace"
        );
        assert_eq!(t.profile.dim(Dim::ShardFanout), 4);
        index.shutdown();
    }

    #[test]
    fn sharded_end_to_end_matches_routing() {
        let r = router(4);
        let trees = (0..4)
            .map(|_| Tree::<2>::new(IndexConfig::srtree()))
            .collect();
        let index = ShardedIndex::builder(r, trees).start().unwrap();
        for i in 0..200u64 {
            let x = ((i * 131) % 950) as f64;
            let y = ((i * 67) % 950) as f64;
            index
                .submit(IndexOp::Insert {
                    rect: Rect::new([x, y], [x + 20.0, y + 4.0]),
                    record: RecordId(i),
                })
                .unwrap();
        }
        index.flush().unwrap();
        let snap = index.snapshot();
        assert_eq!(snap.len(), 200);
        snap.assert_invariants();
        let everything = snap.search(&Rect::new([0.0, 0.0], [1_000.0, 1_000.0]));
        assert_eq!(everything.len(), 200);
        assert!(everything.windows(2).all(|w| w[0] < w[1]), "record order");
        let stats = index.routing_stats();
        assert_eq!(stats.total, 200);
        assert!(stats.per_shard.iter().all(|&n| n > 0));
        assert!(stats.imbalance() >= 1.0);
        index.shutdown();
    }
}
