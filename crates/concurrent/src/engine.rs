//! The engine abstraction behind the concurrent index service.
//!
//! [`ConcurrentIndex`](crate::ConcurrentIndex) and
//! [`ShardedIndex`](crate::ShardedIndex) publish immutable snapshots of a
//! copy-on-write structure and apply mutations on a single writer thread.
//! Nothing in that machinery is specific to the paper's [`Tree`]: any
//! engine that clones cheaply (structural sharing) and answers the read
//! surface can serve. [`SnapshotEngine`] captures that contract, and both
//! [`Tree`] and the HINT engine ([`HintIndex`]) implement it — so the
//! modern main-memory baseline runs under exactly the same epoch snapshot /
//! group-commit service as the four paper variants.
//!
//! The one asymmetry is durability: [`checkpoint`](SnapshotEngine::checkpoint)
//! writes the engine to a [`DiskManager`] before a snapshot is published.
//! `Tree` checkpoints via [`persist::commit`]; `HintIndex` is main-memory
//! only and returns [`StorageError::Unsupported`], which a durable builder
//! surfaces at `start()` time (typed, not a panic).

use segidx_core::hint::{HintIndex, HybridIndex};
use segidx_core::persist;
use segidx_core::tree::{Neighbor, SearchCursor, Tree};
use segidx_core::IntervalIndex;
use segidx_core::RecordId;
use segidx_geom::{Point, Rect};
use segidx_storage::{DiskManager, StorageError};

/// A copy-on-write index engine servable by the concurrent snapshot
/// machinery.
///
/// `Clone` must be cheap and structurally sharing: the writer clones its
/// private engine once per group commit to publish a frozen snapshot, and
/// readers run every query against such clones. `Send + Sync` let the
/// snapshot cross threads and serve concurrent readers.
pub trait SnapshotEngine<const D: usize>: Clone + Send + Sync + 'static {
    /// Applies one insert on the writer's private engine.
    fn apply_insert(&mut self, rect: Rect<D>, record: RecordId);

    /// Applies one delete on the writer's private engine.
    fn apply_delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool;

    /// Number of logical records.
    fn len(&self) -> usize;

    /// Whether the engine is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records intersecting `query`, deduplicated and sorted by id.
    fn search(&self, query: &Rect<D>) -> Vec<RecordId>;

    /// All records containing `p`, deduplicated and sorted by id.
    fn stab(&self, p: &Point<D>) -> Vec<RecordId>;

    /// The `k` records nearest to `p`, ascending by distance.
    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>>;

    /// Runs many searches on this snapshot, serially, in input order —
    /// the scatter half of a sharded scatter/gather, where the fan-out
    /// across shards already provides the parallelism. Engines override to
    /// reuse per-call scratch state.
    fn search_many(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        queries.iter().map(|q| self.search(q)).collect()
    }

    /// Runs many stabs on this snapshot, serially, in input order.
    fn stab_many(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        points.iter().map(|p| self.stab(p)).collect()
    }

    /// Writes the engine durably to `disk` (called before the snapshot of
    /// this state is published). Main-memory-only engines return
    /// [`StorageError::Unsupported`].
    fn checkpoint(&self, disk: &DiskManager) -> Result<(), StorageError>;

    /// Structural invariant check (empty = consistent).
    fn check_invariants(&self) -> Vec<String>;

    /// Short engine name for diagnostics and metrics labels.
    fn engine_name(&self) -> &'static str;
}

impl<const D: usize> SnapshotEngine<D> for Tree<D> {
    fn apply_insert(&mut self, rect: Rect<D>, record: RecordId) {
        self.insert(rect, record);
    }

    fn apply_delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        self.delete(rect, record)
    }

    fn len(&self) -> usize {
        Tree::len(self)
    }

    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        Tree::search(self, query)
    }

    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        Tree::stab(self, p)
    }

    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        Tree::nearest(self, p, k)
    }

    fn search_many(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        let mut cursor = SearchCursor::new();
        queries
            .iter()
            .map(|q| self.search_with(&mut cursor, q).to_vec())
            .collect()
    }

    fn stab_many(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        let mut cursor = SearchCursor::new();
        points
            .iter()
            .map(|p| self.stab_with(&mut cursor, p).to_vec())
            .collect()
    }

    fn checkpoint(&self, disk: &DiskManager) -> Result<(), StorageError> {
        persist::commit(self, disk).map(|_| ())
    }

    fn check_invariants(&self) -> Vec<String> {
        Tree::check_invariants(self)
    }

    fn engine_name(&self) -> &'static str {
        "tree"
    }
}

impl<const D: usize> SnapshotEngine<D> for HintIndex<D> {
    fn apply_insert(&mut self, rect: Rect<D>, record: RecordId) {
        self.insert(rect, record);
    }

    fn apply_delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        self.delete(rect, record)
    }

    fn len(&self) -> usize {
        HintIndex::len(self)
    }

    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        HintIndex::search(self, query)
    }

    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        HintIndex::stab(self, p)
    }

    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        HintIndex::nearest(self, p, k)
    }

    fn checkpoint(&self, _disk: &DiskManager) -> Result<(), StorageError> {
        Err(StorageError::Unsupported(
            "HINT is a main-memory engine with no on-disk checkpoint format; \
             build the concurrent index without durable()"
                .into(),
        ))
    }

    fn check_invariants(&self) -> Vec<String> {
        HintIndex::check_invariants(self)
    }

    fn engine_name(&self) -> &'static str {
        "hint"
    }
}

impl<const D: usize> SnapshotEngine<D> for HybridIndex<D> {
    fn apply_insert(&mut self, rect: Rect<D>, record: RecordId) {
        self.insert(rect, record);
    }

    fn apply_delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        self.delete(rect, record)
    }

    fn len(&self) -> usize {
        IntervalIndex::len(self)
    }

    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        IntervalIndex::search(self, query)
    }

    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        IntervalIndex::stab(self, p)
    }

    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        IntervalIndex::nearest(self, p, k)
    }

    fn search_many(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        self.search_batch(queries)
    }

    fn stab_many(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        self.stab_batch(points)
    }

    fn checkpoint(&self, _disk: &DiskManager) -> Result<(), StorageError> {
        Err(StorageError::Unsupported(
            "the hybrid router pairs the tree with main-memory HINT and has \
             no combined checkpoint format; build without durable()"
                .into(),
        ))
    }

    fn check_invariants(&self) -> Vec<String> {
        IntervalIndex::check_invariants(self)
    }

    fn engine_name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_core::IndexConfig;

    fn drive<E: SnapshotEngine<2>>(mut engine: E) {
        for i in 0..300u64 {
            let x = (i * 37 % 900) as f64;
            engine.apply_insert(Rect::new([x, x], [x + 20.0, x]), RecordId(i));
        }
        let snap = engine.clone();
        assert_eq!(snap.len(), 300);
        let q = Rect::new([100.0, 0.0], [200.0, 900.0]);
        assert_eq!(snap.search_many(&[q]), vec![snap.search(&q)]);
        let p = Point::new([150.0, 150.0]);
        assert_eq!(snap.stab_many(&[p]), vec![snap.stab(&p)]);
        assert!(!snap.nearest(&p, 3).is_empty());
        assert!(snap.check_invariants().is_empty());
        // Mutations after the clone do not leak into the snapshot.
        engine.apply_delete(&Rect::new([0.0, 0.0], [20.0, 0.0]), RecordId(0));
        assert_eq!(snap.len(), 300);
        assert_eq!(engine.len(), 299);
    }

    #[test]
    fn tree_and_hint_satisfy_the_engine_contract() {
        drive(Tree::<2>::new(IndexConfig::srtree()));
        drive(HintIndex::<2>::new());
        drive(HybridIndex::<2>::new());
    }

    #[test]
    fn hint_checkpoint_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("segidx-hint-ckpt-{}", std::process::id()));
        let disk = DiskManager::create(&dir).unwrap();
        let hint = HintIndex::<2>::new();
        let err = hint.checkpoint(&disk).unwrap_err();
        assert!(matches!(err, StorageError::Unsupported(_)), "{err}");
        drop(disk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
