//! Concurrent index service for segment indexes.
//!
//! The paper's index variants (`segidx-core`) are single-threaded data
//! structures: mutation requires `&mut Tree`. This crate turns any of them
//! into a shared service with two properties the single-threaded API cannot
//! offer:
//!
//! * **Readers never block and never see partial mutations.** Reads run
//!   against an immutable published *snapshot*, pinned through hand-rolled
//!   epoch-based reclamation ([`MAX_READERS`] concurrent pins, zero
//!   dependencies). Pinning is a couple of `SeqCst` atomics; the snapshot
//!   itself is a copy-on-write [`Tree`](segidx_core::tree::Tree) clone that
//!   shares all untouched nodes with its predecessor.
//! * **Writes are batched into group commits with admission control.**
//!   A single writer thread drains a bounded submission queue; a full
//!   queue rejects new work immediately with the typed
//!   [`SubmitError::Overloaded`] instead of blocking the submitter. When
//!   the index is backed by a `DiskManager`, every group commit is
//!   checkpointed through `persist::commit` *before* its snapshot is
//!   published, so the published epoch chain maps 1:1 onto the durable
//!   checkpoint chain — a crash recovers exactly the last epoch any reader
//!   could have observed.
//! * **Write throughput scales across shards.** [`ShardedIndex`] partitions
//!   the key space by a Z-order prefix of each rectangle's centroid into N
//!   independent [`ConcurrentIndex`] shards — one bounded queue and writer
//!   thread each — while cross-shard reads pin one consistent
//!   [`GlobalSnapshotGuard`] through an atomically published per-shard
//!   epoch vector, and merged results stay bit-identical to the unsharded
//!   service.
//!
//! Start from any built tree (use `into_tree()` on the `segidx-core` API
//! wrappers), then talk to the service through [`ConcurrentIndex`] or its
//! cloneable [`IndexHandle`]s:
//!
//! ```
//! use segidx_concurrent::{ConcurrentIndex, IndexOp};
//! use segidx_core::tree::Tree;
//! use segidx_core::{IndexConfig, RecordId};
//! use segidx_geom::Rect;
//!
//! let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::srtree()))
//!     .queue_capacity(256)
//!     .max_batch(32)
//!     .start()
//!     .unwrap();
//!
//! let handle = index.handle();
//! let reader = std::thread::spawn(move || {
//!     let snap = handle.snapshot(); // never blocks
//!     snap.search(&Rect::new([0.0, 0.0], [100.0, 100.0])).len()
//! });
//!
//! index
//!     .submit(IndexOp::Insert {
//!         rect: Rect::new([1.0, 1.0], [50.0, 2.0]),
//!         record: RecordId(42),
//!     })
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! reader.join().unwrap();
//! assert_eq!(index.snapshot().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod engine;
mod epoch;
mod global_epoch;
mod index;
mod queue;
mod shard;

pub use engine::SnapshotEngine;
pub use epoch::MAX_READERS;
pub use index::{
    Builder, CommitHook, ConcurrentIndex, ConcurrentTelemetry, IndexHandle, SnapshotGuard,
};
pub use queue::{CommitError, CommitPhases, CommitReceipt, CommitTicket, IndexOp, SubmitError};
pub use shard::{
    GlobalSnapshotGuard, RoutingStats, ShardedBuilder, ShardedHandle, ShardedIndex, ZOrderRouter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_core::tree::Tree;
    use segidx_core::{IndexConfig, RecordId};
    use segidx_geom::Rect;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn rect(i: u64) -> Rect<2> {
        let x = ((i * 37) % 2_000) as f64;
        let y = ((i * 113) % 2_000) as f64;
        let len = if i % 7 == 0 { 600.0 } else { 20.0 };
        Rect::new([x, y], [x + len, y + 1.0])
    }

    fn start_empty() -> ConcurrentIndex<2> {
        ConcurrentIndex::builder(Tree::new(IndexConfig::srtree()))
            .start()
            .unwrap()
    }

    #[test]
    fn inserts_become_visible_at_ticket_epoch() {
        let index = start_empty();
        for i in 0..500u64 {
            index
                .submit(IndexOp::Insert {
                    rect: rect(i),
                    record: RecordId(i),
                })
                .unwrap();
        }
        let receipt = index.flush().unwrap();
        assert!(receipt.epoch >= 1);
        let snap = index.snapshot();
        assert!(snap.epoch() >= receipt.epoch);
        assert_eq!(snap.len(), 500);
        snap.assert_invariants();
    }

    #[test]
    fn ticket_wait_returns_commit_epoch() {
        let index = start_empty();
        let t = index
            .submit(IndexOp::Insert {
                rect: rect(1),
                record: RecordId(1),
            })
            .unwrap();
        let receipt = t.wait().unwrap();
        assert!(receipt.epoch >= 1);
        assert!(receipt.ops_in_commit >= 1);
        assert_eq!(receipt.durable_epoch, None, "memory-only index");
        // The snapshot at (or after) the receipt's epoch sees the insert.
        let snap = index.snapshot();
        assert!(snap.epoch() >= receipt.epoch);
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn deletes_apply_in_submission_order() {
        let index = start_empty();
        for i in 0..100u64 {
            index
                .submit(IndexOp::Insert {
                    rect: rect(i),
                    record: RecordId(i),
                })
                .unwrap();
        }
        for i in 0..50u64 {
            index
                .submit(IndexOp::Delete {
                    rect: rect(i),
                    record: RecordId(i),
                })
                .unwrap();
        }
        index.flush().unwrap();
        let snap = index.snapshot();
        assert_eq!(snap.len(), 50);
        snap.assert_invariants();
    }

    #[test]
    fn overload_rejection_is_typed_and_counted() {
        // A hook that blocks the writer keeps the queue full deterministically.
        let release = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&release);
        let index = ConcurrentIndex::builder(Tree::<2>::new(IndexConfig::rtree()))
            .queue_capacity(4)
            .max_batch(1)
            .commit_hook(Box::new(move |_| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            }))
            .start()
            .unwrap();
        // One op occupies the writer (blocked in the hook); fill the queue.
        let mut overloaded = false;
        for i in 0..64u64 {
            match index.submit(IndexOp::Insert {
                rect: rect(i),
                record: RecordId(i),
            }) {
                Ok(_) => {}
                Err(SubmitError::Overloaded { depth }) => {
                    assert!(depth >= 4);
                    overloaded = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            overloaded,
            "bounded queue must reject under a stalled writer"
        );
        assert!(index.telemetry().overloads() >= 1);
        release.store(true, Ordering::SeqCst);
        index.flush().unwrap();
    }

    #[test]
    fn long_pinned_reader_bounds_retired_snapshots() {
        let index = start_empty();
        let pinned = index.snapshot(); // refined pin on exactly epoch 0
        for round in 0..10u64 {
            index
                .submit(IndexOp::Insert {
                    rect: rect(round),
                    record: RecordId(round),
                })
                .unwrap();
            index.flush().unwrap();
        }
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.len(), 0, "pinned snapshot is frozen");
        // The refined slot protects only epoch 0: snapshots 1..=9 were
        // retired *and freed* while the reader stayed pinned. The backlog
        // is bounded by what the reader actually holds, it does not grow
        // with writer progress.
        assert_eq!(
            index.retired_snapshots(),
            1,
            "only the pinned epoch-0 snapshot stays retired"
        );
        assert!(index.retired_highwater() <= 2, "backlog never ballooned");
        assert!(index.telemetry().reclaimed() >= 9);
        // Dropping the guard reclaims on the unpin path — no further
        // commit is needed for the backlog to drain.
        drop(pinned);
        assert_eq!(index.retired_snapshots(), 0);
        assert!(index.telemetry().reclaimed() >= 10);
    }

    #[test]
    fn batch_submission_commits_in_order_with_callbacks() {
        let index = start_empty();
        let ops: Vec<IndexOp<2>> = (0..64u64)
            .map(|i| IndexOp::Insert {
                rect: rect(i),
                record: RecordId(i),
            })
            .collect();
        let results = index.submit_batch(ops);
        assert_eq!(results.len(), 64);
        let completions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for r in &results {
            let done = Arc::clone(&completions);
            r.as_ref()
                .expect("queue capacity 1024 admits the whole batch")
                .on_complete(move |outcome| {
                    assert!(outcome.is_ok());
                    done.fetch_add(1, Ordering::SeqCst);
                });
        }
        index.flush().unwrap();
        assert_eq!(
            completions.load(Ordering::SeqCst),
            64,
            "every ticket's callback fired without any thread parking on it"
        );
        let snap = index.snapshot();
        assert_eq!(snap.len(), 64);
        // Epochs across the batch's tickets are monotone in input order.
        let mut last = 0;
        for r in results {
            let epoch = r.unwrap().try_receipt().unwrap().unwrap().epoch;
            assert!(epoch >= last);
            last = epoch;
        }
    }

    #[test]
    fn sharded_batch_submission_routes_and_commits() {
        use segidx_geom::Rect as GRect;
        let domain = GRect::new([0.0, 0.0], [2_000.0, 2_000.0]);
        let router = ZOrderRouter::new(domain, 4);
        let trees: Vec<Tree<2>> = (0..4).map(|_| Tree::new(IndexConfig::srtree())).collect();
        let index = ShardedIndex::builder(router, trees).start().unwrap();
        let ops: Vec<IndexOp<2>> = (0..256u64)
            .map(|i| IndexOp::Insert {
                rect: rect(i),
                record: RecordId(i),
            })
            .collect();
        let results = index.submit_batch(ops);
        assert!(results.iter().all(Result::is_ok));
        index.flush().unwrap();
        assert_eq!(index.snapshot().len(), 256);
        let stats = index.routing_stats();
        assert_eq!(stats.total, 256, "routed counters cover the whole batch");
        index.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_closed() {
        let index = start_empty();
        let handle = index.handle();
        index
            .submit(IndexOp::Insert {
                rect: rect(1),
                record: RecordId(1),
            })
            .unwrap();
        index.shutdown();
        assert!(matches!(
            handle.submit(IndexOp::Insert {
                rect: rect(2),
                record: RecordId(2),
            }),
            Err(SubmitError::Closed)
        ));
        // Graceful shutdown flushed the queued insert; reads still serve.
        assert_eq!(handle.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_readers_and_writer_smoke() {
        let index = Arc::new(start_empty());
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let handle = index.handle();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last_epoch = 0;
                let mut max_len = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epochs are monotone per reader");
                    last_epoch = snap.epoch();
                    let n = snap.len();
                    assert!(n >= max_len, "insert-only stream: len never shrinks");
                    max_len = n;
                    let _ = snap.search(&Rect::new([0.0, 0.0], [500.0, 500.0]));
                }
            }));
        }
        for i in 0..2_000u64 {
            loop {
                match index.submit(IndexOp::Insert {
                    rect: rect(i),
                    record: RecordId(i),
                }) {
                    Ok(_) => break,
                    Err(SubmitError::Overloaded { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        index.flush().unwrap();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let snap = index.snapshot();
        assert_eq!(snap.len(), 2_000);
        snap.assert_invariants();
    }
}
