//! Property and concurrency tests for the telemetry crate: histogram
//! totals under multi-threaded recording, percentile correctness against
//! exact quantiles, and exporter round-trips.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use segidx_obs::{
    bucket_index, json, HistogramSnapshot, LatencyHistogram, Metric, MetricsSnapshot,
};

#[test]
fn concurrent_recording_totals_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = LatencyHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // A spread of magnitudes, deterministic per thread.
                    h.record((i * 37 + t) % 1_000_000);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD, "no lost updates");
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (i * 37 + t) % 1_000_000))
        .sum();
    assert_eq!(snap.sum, expected_sum, "sum is exact");
    assert_eq!(
        snap.counts.iter().sum::<u64>(),
        THREADS * PER_THREAD,
        "bucket counts account for every observation"
    );
}

/// The exact quantile of a sorted sample at `q`, matching the histogram's
/// rank convention: the 1-based rank `max(1, ceil(q·n))`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn percentiles_land_in_the_exact_bucket(
        values in pvec(0u64..1u64 << 40, 1..500),
        q in 0.0f64..1.0,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        let exact = exact_quantile(&sorted, q);
        let reported = snap.percentile(q).expect("non-empty");
        // Within one bucket of the exact quantile: the reported value is the
        // (max-clamped) upper bound of the bucket holding the exact rank.
        prop_assert_eq!(
            bucket_index(reported.max(exact)),
            bucket_index(exact),
            "reported {} vs exact {}", reported, exact
        );
        prop_assert!(reported >= exact);
        prop_assert!(reported <= snap.max);
    }

    #[test]
    fn percentile_extraction_is_monotone(
        values in pvec(0u64..1u64 << 40, 1..300),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let ps: Vec<u64> = qs.iter().map(|&q| snap.percentile(q).unwrap()).collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles must be non-decreasing: {:?}", ps);
        }
        prop_assert!(*ps.last().unwrap() <= snap.max);
    }

    #[test]
    fn merge_then_diff_restores_the_window(
        a in pvec(0u64..1u64 << 30, 0..100),
        b in pvec(0u64..1u64 << 30, 0..100),
    ) {
        let ha = LatencyHistogram::new();
        for &v in &a { ha.record(v); }
        let earlier = ha.snapshot();
        for &v in &b { ha.record(v); }
        let d = ha.snapshot().diff(&earlier);
        prop_assert_eq!(d.count, b.len() as u64);
        prop_assert_eq!(d.sum, b.iter().sum::<u64>());
    }
}

#[test]
fn empty_histogram_percentiles_return_none() {
    let snap: HistogramSnapshot = LatencyHistogram::new().snapshot();
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(snap.percentile(q), None);
    }
}

fn sample_snapshot() -> MetricsSnapshot {
    let h = LatencyHistogram::new();
    for v in [50u64, 900, 900, 40_000, 7_000_000] {
        h.record(v);
    }
    MetricsSnapshot {
        metrics: vec![
            Metric::counter(
                "segidx_search_node_accesses_total",
                &[("variant", "Skeleton SR-Tree"), ("graph", "3")],
                12_345,
            ),
            Metric::gauge(
                "segidx_buffer_pool_hit_rate",
                &[("variant", "Skeleton SR-Tree"), ("graph", "3")],
                0.875,
            ),
            Metric::histogram(
                "segidx_search_latency_nanos",
                &[("variant", "Skeleton SR-Tree"), ("graph", "3")],
                h.snapshot(),
            ),
        ],
    }
}

/// One parsed Prometheus sample: (name, labels, value).
type PromSample = (String, Vec<(String, String)>, f64);

/// Parses one Prometheus exposition line into (name, labels, value).
fn parse_prom_line(line: &str) -> Option<PromSample> {
    let (id, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match id.split_once('{') {
        None => (id.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let labels = body
                .split(',')
                .map(|pair| {
                    let (k, v) = pair.split_once('=')?;
                    Some((k.to_string(), v.trim_matches('"').to_string()))
                })
                .collect::<Option<Vec<_>>>()?;
            (name.to_string(), labels)
        }
    };
    Some((name, labels, value))
}

#[test]
fn prometheus_output_parses_line_by_line() {
    let prom = sample_snapshot().to_prometheus();
    let mut type_headers = 0;
    let mut samples = Vec::new();
    for line in prom.lines() {
        assert!(!line.trim().is_empty(), "no blank lines emitted");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type header has a name");
            let kind = parts.next().expect("type header has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unexpected kind {kind}"
            );
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            type_headers += 1;
        } else {
            let (name, labels, value) =
                parse_prom_line(line).unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert!(!name.is_empty());
            assert!(value.is_finite());
            samples.push((name, labels, value));
        }
    }
    assert_eq!(type_headers, 3, "one # TYPE per metric family");

    // Counter sample carries its labels and value.
    let counter = samples
        .iter()
        .find(|(n, ..)| n == "segidx_search_node_accesses_total")
        .expect("counter present");
    assert_eq!(counter.2, 12_345.0);
    assert!(counter
        .1
        .contains(&("variant".to_string(), "Skeleton SR-Tree".to_string())));

    // Histogram: cumulative buckets end at +Inf == count, and _count/_sum
    // agree with the recorded data.
    let buckets: Vec<&PromSample> = samples
        .iter()
        .filter(|(n, ..)| n == "segidx_search_latency_nanos_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    let mut last = -1.0;
    for b in &buckets {
        assert!(b.2 >= last, "bucket counts are cumulative");
        last = b.2;
    }
    let inf = buckets
        .iter()
        .find(|(_, labels, _)| labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
        .expect("+Inf bucket");
    assert_eq!(inf.2, 5.0);
    let count = samples
        .iter()
        .find(|(n, ..)| n == "segidx_search_latency_nanos_count")
        .unwrap();
    assert_eq!(count.2, 5.0);
    let sum = samples
        .iter()
        .find(|(n, ..)| n == "segidx_search_latency_nanos_sum")
        .unwrap();
    assert_eq!(sum.2 as u64, 50 + 900 + 900 + 40_000 + 7_000_000);
}

#[test]
fn json_round_trips_through_the_parser() {
    let snap = sample_snapshot();
    let text = snap.to_json();
    let parsed = json::parse(&text).expect("exporter emits valid JSON");
    // Render → parse → render is a fixed point.
    assert_eq!(parsed.render(), text);

    let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
    assert_eq!(metrics.len(), snap.metrics.len());
    for (m, v) in snap.metrics.iter().zip(metrics) {
        assert_eq!(v.get("name").unwrap().as_str(), Some(m.name.as_str()));
        for (k, val) in &m.labels {
            assert_eq!(
                v.get("labels").unwrap().get(k).unwrap().as_str(),
                Some(val.as_str())
            );
        }
    }
    let hist = metrics
        .iter()
        .find(|m| m.get("type").unwrap().as_str() == Some("histogram"))
        .unwrap();
    assert_eq!(hist.get("count").unwrap().as_i64(), Some(5));
    assert_eq!(
        hist.get("sum").unwrap().as_i64(),
        Some(50 + 900 + 900 + 40_000 + 7_000_000)
    );
    assert!(hist.get("p50").unwrap().as_i64().unwrap() >= 900);
}

#[test]
fn diff_of_snapshots_exports_cleanly() {
    let earlier = sample_snapshot();
    let mut later = sample_snapshot();
    if let segidx_obs::MetricValue::Counter(v) = &mut later.metrics[0].value {
        *v += 55;
    }
    let d = later.diff(&earlier);
    let parsed = json::parse(&d.to_json()).unwrap();
    let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
    assert_eq!(metrics[0].get("value").unwrap().as_i64(), Some(55));
    // The histogram window is empty → percentiles are null.
    let hist = &metrics[2];
    assert_eq!(hist.get("count").unwrap().as_i64(), Some(0));
    assert_eq!(hist.get("p99").unwrap(), &json::Value::Null);
}
