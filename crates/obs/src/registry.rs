//! The metrics registry: named counters, gauges, and histograms behind one
//! `snapshot()`/`diff()` API, with pretty-text, JSON, and Prometheus text
//! exposition exports.
//!
//! The registry itself stores no metric state — it stores *collectors*,
//! closures that read live counters (a `TreeStats`, an `IoStats`, a
//! [`LatencyHistogram`]) and append [`Metric`]s. `snapshot()` runs every
//! collector, producing a [`MetricsSnapshot`] that can be diffed against an
//! earlier one or exported. This keeps `segidx-obs` free of dependencies on
//! the crates whose state it aggregates.

use crate::hist::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::json::Value;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The value of one metric.
///
/// The histogram variant is ~0.5 KB (64 inline bucket counts); metric sets
/// are small and short-lived, so inline storage beats a boxed indirection.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A latency (or size) distribution.
    Histogram(HistogramSnapshot),
}

/// One named, labeled metric.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Metric name, e.g. `segidx_search_latency_nanos`.
    pub name: String,
    /// Label pairs, e.g. `[("variant", "SR-Tree"), ("graph", "3")]`.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    /// A counter metric.
    pub fn counter(name: impl Into<String>, labels: &[(&str, &str)], value: u64) -> Self {
        Self {
            name: name.into(),
            labels: own_labels(labels),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge metric.
    pub fn gauge(name: impl Into<String>, labels: &[(&str, &str)], value: f64) -> Self {
        Self {
            name: name.into(),
            labels: own_labels(labels),
            value: MetricValue::Gauge(value),
        }
    }

    /// A histogram metric.
    pub fn histogram(
        name: impl Into<String>,
        labels: &[(&str, &str)],
        value: HistogramSnapshot,
    ) -> Self {
        Self {
            name: name.into(),
            labels: own_labels(labels),
            value: MetricValue::Histogram(value),
        }
    }

    /// The identity used for matching in [`MetricsSnapshot::diff`].
    fn key(&self) -> (&str, &[(String, String)]) {
        (&self.name, &self.labels)
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A collector reads live state and appends metrics to the snapshot.
pub type Collector = Box<dyn Fn(&mut Vec<Metric>) + Send + Sync>;

/// Aggregates metrics from registered collectors.
///
/// ```
/// use segidx_obs::{Metric, MetricsRegistry};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let hits = Arc::new(AtomicU64::new(0));
/// let registry = MetricsRegistry::new();
/// let h = Arc::clone(&hits);
/// registry.register(Box::new(move |out| {
///     out.push(Metric::counter("hits_total", &[], h.load(Ordering::Relaxed)));
/// }));
///
/// hits.fetch_add(3, Ordering::Relaxed);
/// let earlier = registry.snapshot();
/// hits.fetch_add(2, Ordering::Relaxed);
/// let delta = registry.snapshot().diff(&earlier);
/// assert!(delta.to_text().contains("hits_total"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("collectors", &self.collectors.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collector; it runs on every [`snapshot`](Self::snapshot).
    pub fn register(&self, collector: Collector) {
        self.collectors.lock().unwrap().push(collector);
    }

    /// Number of registered collectors.
    pub fn collector_count(&self) -> usize {
        self.collectors.lock().unwrap().len()
    }

    /// Registers a collector exposing a [`RingBufferSink`](crate::RingBufferSink)'s health: how
    /// many events it currently retains (`segidx_events_buffered` gauge)
    /// and how many it has had to drop because the ring was full
    /// (`segidx_events_dropped_total` counter). Lets overload show up in
    /// the JSON/Prometheus exports instead of vanishing silently.
    pub fn register_ring_sink(
        &self,
        sink: &std::sync::Arc<crate::RingBufferSink>,
        labels: &[(&str, &str)],
    ) {
        let sink = std::sync::Arc::clone(sink);
        let labels = own_labels(labels);
        self.register(Box::new(move |out| {
            let borrowed: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            out.push(Metric::counter(
                "segidx_events_dropped_total",
                &borrowed,
                sink.dropped(),
            ));
            out.push(Metric::gauge(
                "segidx_events_buffered",
                &borrowed,
                sink.len() as f64,
            ));
        }));
    }

    /// Registers a collector exposing a [`Tracer`](crate::Tracer)'s health:
    /// operations offered / traces recorded and completed (counters), spans
    /// dropped to the per-trace buffer cap (counter **and** gauge, so the
    /// current loss level is visible without diffing), and how many slow
    /// traces the flight recorder currently retains (gauge).
    pub fn register_tracer(&self, tracer: &std::sync::Arc<crate::Tracer>, labels: &[(&str, &str)]) {
        let tracer = std::sync::Arc::clone(tracer);
        let labels = own_labels(labels);
        self.register(Box::new(move |out| {
            let borrowed: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            out.push(Metric::counter(
                "segidx_trace_started_total",
                &borrowed,
                tracer.started(),
            ));
            out.push(Metric::counter(
                "segidx_trace_sampled_total",
                &borrowed,
                tracer.sampled(),
            ));
            out.push(Metric::counter(
                "segidx_trace_spans_dropped_total",
                &borrowed,
                tracer.spans_dropped(),
            ));
            out.push(Metric::gauge(
                "segidx_trace_spans_dropped",
                &borrowed,
                tracer.spans_dropped() as f64,
            ));
            out.push(Metric::gauge(
                "segidx_trace_flight_retained",
                &borrowed,
                tracer.flight().retained() as f64,
            ));
        }));
    }

    /// Runs every collector and returns the combined metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = Vec::new();
        for c in self.collectors.lock().unwrap().iter() {
            c(&mut metrics);
        }
        MetricsSnapshot { metrics }
    }
}

/// A point-in-time set of metrics, exportable as text, JSON, or Prometheus.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The metrics, in collection order.
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// The change since `earlier`: counters and histograms are subtracted
    /// (saturating), gauges keep their current value. Metrics absent from
    /// `earlier` pass through unchanged; metrics only in `earlier` are
    /// dropped.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let prev = earlier.metrics.iter().find(|p| p.key() == m.key());
                let value = match (&m.value, prev.map(|p| &p.value)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(now.diff(then))
                    }
                    (v, _) => v.clone(),
                };
                Metric {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Finds a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        let labels = own_labels(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    /// Pretty, aligned, human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .metrics
            .iter()
            .map(|m| m.name.len() + render_labels(&m.labels).len())
            .max()
            .unwrap_or(0);
        for m in &self.metrics {
            let id = format!("{}{}", m.name, render_labels(&m.labels));
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{id:<width$}  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{id:<width$}  {v:.4}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{id:<width$}  count={} mean={:.0} p50={} p95={} p99={} max={}",
                        h.count,
                        h.mean().unwrap_or(0.0),
                        h.p50().unwrap_or(0),
                        h.p95().unwrap_or(0),
                        h.p99().unwrap_or(0),
                        h.max,
                    );
                }
            }
        }
        out
    }

    /// The snapshot as a [`Value`] tree (see [`to_json`](Self::to_json)).
    pub fn to_json_value(&self) -> Value {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("name".to_string(), Value::Str(m.name.clone())),
                    (
                        "labels".to_string(),
                        Value::Object(
                            m.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        fields.push(("type".into(), Value::Str("counter".into())));
                        fields.push(("value".into(), Value::Int(*v as i64)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("type".into(), Value::Str("gauge".into())));
                        fields.push(("value".into(), Value::Float(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("type".into(), Value::Str("histogram".into())));
                        fields.push(("count".into(), Value::Int(h.count as i64)));
                        fields.push(("sum".into(), Value::Int(h.sum as i64)));
                        fields.push(("max".into(), Value::Int(h.max as i64)));
                        let opt = |v: Option<u64>| match v {
                            Some(v) => Value::Int(v as i64),
                            None => Value::Null,
                        };
                        fields.push(("p50".into(), opt(h.p50())));
                        fields.push(("p95".into(), opt(h.p95())));
                        fields.push(("p99".into(), opt(h.p99())));
                        let buckets = (0..BUCKETS)
                            .filter(|&i| h.counts[i] > 0)
                            .map(|i| {
                                Value::Array(vec![
                                    Value::Int(bucket_upper_bound(i).min(i64::MAX as u64) as i64),
                                    Value::Int(h.counts[i] as i64),
                                ])
                            })
                            .collect();
                        fields.push(("buckets".into(), Value::Array(buckets)));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![("metrics".to_string(), Value::Array(metrics))])
    }

    /// Compact JSON: `{"metrics":[{name, labels, type, ...}, ...]}`.
    /// Histograms carry `count`, `sum`, `max`, `p50`/`p95`/`p99`, and the
    /// non-empty `[upper_bound, count]` buckets.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Histograms are emitted in the native Prometheus histogram shape:
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for m in &self.metrics {
            let name = sanitize_name(&m.name);
            let (kind, base) = match &m.value {
                MetricValue::Counter(_) => ("counter", name.clone()),
                MetricValue::Gauge(_) => ("gauge", name.clone()),
                MetricValue::Histogram(_) => ("histogram", name.clone()),
            };
            if !typed.contains(&&*m.name) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                typed.push(&m.name);
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", prom_labels(&m.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", prom_labels(&m.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for i in 0..BUCKETS {
                        if h.counts[i] == 0 {
                            continue;
                        }
                        cumulative += h.counts[i];
                        let le = bucket_upper_bound(i).to_string();
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            prom_labels(&m.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        prom_labels(&m.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", prom_labels(&m.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        prom_labels(&m.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// Replaces characters Prometheus forbids in metric names.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), v.replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample() -> MetricsSnapshot {
        let h = LatencyHistogram::new();
        for v in [100, 200, 300, 400_000] {
            h.record(v);
        }
        MetricsSnapshot {
            metrics: vec![
                Metric::counter("segidx_searches_total", &[("variant", "R-Tree")], 40),
                Metric::gauge("segidx_hit_rate", &[("variant", "R-Tree")], 0.75),
                Metric::histogram(
                    "segidx_search_latency_nanos",
                    &[("variant", "R-Tree")],
                    h.snapshot(),
                ),
            ],
        }
    }

    #[test]
    fn text_export_mentions_everything() {
        let text = sample().to_text();
        assert!(text.contains("segidx_searches_total{variant=R-Tree}"));
        assert!(text
            .lines()
            .any(|l| l.starts_with("segidx_searches_total") && l.ends_with("40")));
        assert!(text.contains("segidx_hit_rate"));
        assert!(text.contains("p99="));
    }

    #[test]
    fn diff_subtracts_counters_keeps_gauges() {
        let earlier = MetricsSnapshot {
            metrics: vec![Metric::counter("c", &[], 10), Metric::gauge("g", &[], 1.0)],
        };
        let later = MetricsSnapshot {
            metrics: vec![
                Metric::counter("c", &[], 25),
                Metric::gauge("g", &[], 2.0),
                Metric::counter("new", &[], 7),
            ],
        };
        let d = later.diff(&earlier);
        assert_eq!(d.get("c", &[]).unwrap().value, MetricValue::Counter(15));
        assert_eq!(d.get("g", &[]).unwrap().value, MetricValue::Gauge(2.0));
        assert_eq!(d.get("new", &[]).unwrap().value, MetricValue::Counter(7));
    }

    #[test]
    fn registry_runs_collectors_on_each_snapshot() {
        let registry = MetricsRegistry::new();
        registry.register(Box::new(|out| {
            out.push(Metric::counter("a", &[], 1));
        }));
        registry.register(Box::new(|out| {
            out.push(Metric::gauge("b", &[("x", "y")], 2.0));
        }));
        assert_eq!(registry.collector_count(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert!(snap.get("b", &[("x", "y")]).is_some());
    }

    #[test]
    fn ring_sink_registration_exposes_drops() {
        use crate::{Event, EventKind, ObsSink, RingBufferSink};
        use std::sync::Arc;
        let sink = Arc::new(RingBufferSink::new(2));
        let registry = MetricsRegistry::new();
        registry.register_ring_sink(&sink, &[("component", "writer")]);
        for i in 0..5u64 {
            sink.event(Event::new(EventKind::SnapshotPublished).node(i));
        }
        let snap = registry.snapshot();
        let labels: &[(&str, &str)] = &[("component", "writer")];
        assert_eq!(
            snap.get("segidx_events_dropped_total", labels)
                .unwrap()
                .value,
            MetricValue::Counter(3)
        );
        assert_eq!(
            snap.get("segidx_events_buffered", labels).unwrap().value,
            MetricValue::Gauge(2.0)
        );
        assert!(snap.to_prometheus().contains("segidx_events_dropped_total"));
    }

    #[test]
    fn prometheus_shape() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE segidx_searches_total counter"));
        assert!(prom.contains("segidx_searches_total{variant=\"R-Tree\"} 40"));
        assert!(prom.contains("# TYPE segidx_search_latency_nanos histogram"));
        assert!(prom.contains("le=\"+Inf\"} 4"));
        assert!(prom.contains("segidx_search_latency_nanos_count{variant=\"R-Tree\"} 4"));
    }

    #[test]
    fn json_parses_back() {
        let snap = sample();
        let parsed = crate::json::parse(&snap.to_json()).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 3);
        let hist = &metrics[2];
        assert_eq!(hist.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_i64(), Some(4));
        assert!(hist.get("p99").unwrap().as_i64().unwrap() >= 400_000);
    }
}
