//! Lock-free log₂-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] is an array of 64 atomic counters, one per
//! power-of-two value range: bucket 0 holds the value 0 and bucket `i ≥ 1`
//! holds values in `[2^(i-1), 2^i - 1]`. Recording is four relaxed atomic
//! operations (bucket, count, sum, max) with no locking, so any number of
//! threads may record into one histogram concurrently — the same discipline
//! as the search counters in `segidx-core`.
//!
//! Log₂ bucketing trades resolution for constant memory and wait-free
//! recording: an extracted percentile is the *upper bound* of the bucket
//! containing the exact rank, i.e. within a factor of two of the true
//! quantile. For latency distributions spanning nanoseconds to seconds that
//! is exactly the precision tail-latency monitoring needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one per bit of a `u64`, plus the zero bucket.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, else `⌊log₂ v⌋ + 1`, capped at 63.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// The largest value stored in bucket `i` (inclusive).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A wait-free, fixed-memory latency histogram.
///
/// ```
/// use segidx_obs::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for v in [100u64, 200, 400, 800, 100_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.p50().unwrap() >= 200);
/// assert_eq!(snap.max, 100_000);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (typically nanoseconds of wall time).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Times `f` and records its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.record_duration(t0.elapsed());
        r
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0
    }

    /// A point-in-time copy of the histogram.
    ///
    /// Under concurrent recording the copy is not a single atomic cut, but
    /// every recorded value is eventually visible and counters never go
    /// backwards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub counts: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl HistogramSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q ∈ [0, 1]`, as the upper bound of the bucket
    /// containing the exact rank — at most one power-of-two bucket above the
    /// true quantile. `None` for an empty histogram; `q` outside `[0, 1]` is
    /// clamped.
    ///
    /// The reported value never exceeds [`max`](Self::max) (the top bucket
    /// is clamped to the exact observed maximum).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count), min 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`percentile`](Self::percentile)).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Arithmetic mean of recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `earlier` was taken (saturating
    /// bucket-wise subtraction). `max` cannot be un-merged, so the later
    /// maximum is kept.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].saturating_sub(earlier.counts[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_their_index() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn empty_percentiles_are_none() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.p95(), None);
        assert_eq!(snap.p99(), None);
        assert_eq!(snap.mean(), None);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(777);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), Some(777), "clamped to max");
        assert_eq!(snap.p99(), Some(777));
        assert_eq!(snap.max, 777);
        assert_eq!(snap.mean(), Some(777.0));
    }

    #[test]
    fn reset_clears() {
        let h = LatencyHistogram::new();
        h.record(5);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.snapshot().sum, 0);
    }

    #[test]
    fn diff_isolates_a_window() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        let earlier = h.snapshot();
        h.record(1_000);
        let d = h.snapshot().diff(&earlier);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1_000);
        assert_eq!(d.p50(), Some(1_000), "only the new observation remains");
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(8);
        b.record(64);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 72);
        assert_eq!(s.max, 64);
    }

    #[test]
    fn time_records_something() {
        let h = LatencyHistogram::new();
        let out = h.time(|| 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(h.snapshot().count, 1);
    }
}
