//! Structural event tracing: the [`ObsSink`] trait and its built-in
//! implementations.
//!
//! The index and storage layers fire an [`Event`] whenever the structure
//! they maintain changes shape — a node splits, a spanning record is
//! promoted or demoted, a record is cut, sibling leaves coalesce, a
//! buffer-pool frame is evicted. A sink receives those events synchronously
//! on the thread that caused them; implementations must therefore be cheap
//! and non-blocking. Layers hold an `Option<Arc<dyn ObsSink>>` that defaults
//! to `None`, so with tracing disabled the hot paths pay a single pointer
//! null check and no dynamic dispatch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of structural change an [`Event`] describes.
///
/// The index-side kinds mirror the counters of `TreeStats` in `segidx-core`
/// (paper §3–§4); the buffer-pool kind comes from `segidx-storage`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// A leaf node split in two.
    LeafSplit,
    /// An internal node split in two.
    InternalSplit,
    /// A spanning record moved up to the parent after a split (paper §3.1.2).
    Promotion,
    /// A spanning record moved down after a region expansion (paper §3.1.1).
    Demotion,
    /// A spanning record relinked to a different branch without demotion.
    Relink,
    /// A record cut into spanning + remnant portions (paper §3.1.1).
    Cut,
    /// An unresolvable node overflow absorbed elastically.
    ElasticOverflow,
    /// Two sibling leaves merged by Skeleton coalescing (paper §4).
    Coalesce,
    /// A spanning record demoted to the leaf level under spanning pressure.
    SpanningEviction,
    /// A leaf entry moved to an adjacent sibling instead of splitting.
    Redistribution,
    /// An entry removed by R*-style forced reinsertion.
    ForcedReinsert,
    /// A buffer-pool frame evicted to stay within the byte budget.
    BufferEviction,
    /// A page that failed validation was quarantined during repair-mode
    /// open (dropped from the page directory so it can never be read).
    PageQuarantined,
    /// A subtree was unreachable during recovery (its page corrupt or
    /// missing); its entries are lost.
    SubtreeLost,
    /// An index was rebuilt from surviving pages after corruption; `detail`
    /// carries the number of entries recovered.
    RecoveryRebuild,
    /// A dirty page write-back failed in a context that could not return
    /// the error (e.g. buffer-pool flush-on-drop).
    WriteBackError,
    /// A concurrent index published a new immutable snapshot; `node` is the
    /// published epoch, `detail` the number of operations in the group
    /// commit that produced it.
    SnapshotPublished,
    /// A retired snapshot's memory was reclaimed — every reader had moved
    /// past its epoch (`node` = the reclaimed snapshot's epoch).
    EpochReclaimed,
    /// The single writer fell behind its submission queue: an operation was
    /// rejected with a typed overload error (`detail` = queue depth at
    /// rejection).
    WriterStalled,
    /// A temporal memtable sealed into an immutable packed tier (`node` =
    /// tier sequence number, `level` = tier level, `detail` = entries
    /// sealed).
    TierSealed,
    /// A run of sealed tiers was merged into one tier a level up (`node` =
    /// the merged tier's sequence number, `level` = its level, `detail` =
    /// surviving entries).
    TierMerged,
    /// A pinned tier-set snapshot was exported to a separate disk manager
    /// (`node` = manifest commit epoch on the export target, `detail` =
    /// entries exported).
    TierExported,
}

impl EventKind {
    /// A stable snake_case name, usable as a metric or log label.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LeafSplit => "leaf_split",
            EventKind::InternalSplit => "internal_split",
            EventKind::Promotion => "promotion",
            EventKind::Demotion => "demotion",
            EventKind::Relink => "relink",
            EventKind::Cut => "cut",
            EventKind::ElasticOverflow => "elastic_overflow",
            EventKind::Coalesce => "coalesce",
            EventKind::SpanningEviction => "spanning_eviction",
            EventKind::Redistribution => "redistribution",
            EventKind::ForcedReinsert => "forced_reinsert",
            EventKind::BufferEviction => "buffer_eviction",
            EventKind::PageQuarantined => "page_quarantined",
            EventKind::SubtreeLost => "subtree_lost",
            EventKind::RecoveryRebuild => "recovery_rebuild",
            EventKind::WriteBackError => "write_back_error",
            EventKind::SnapshotPublished => "snapshot_published",
            EventKind::EpochReclaimed => "epoch_reclaimed",
            EventKind::WriterStalled => "writer_stalled",
            EventKind::TierSealed => "tier_sealed",
            EventKind::TierMerged => "tier_merged",
            EventKind::TierExported => "tier_exported",
        }
    }
}

/// One structural change, as reported to an [`ObsSink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The node (or page) the change is anchored to, as a raw id.
    pub node: u64,
    /// Tree level of the node (0 = leaf) or storage size class.
    pub level: u32,
    /// Kind-specific magnitude: entries moved, bytes evicted, … 0 when the
    /// kind has no natural magnitude.
    pub detail: u64,
}

impl Event {
    /// An event of `kind` with all context fields zeroed.
    pub fn new(kind: EventKind) -> Self {
        Self {
            kind,
            node: 0,
            level: 0,
            detail: 0,
        }
    }

    /// Sets the anchor node/page id.
    pub fn node(mut self, node: u64) -> Self {
        self.node = node;
        self
    }

    /// Sets the tree level / size class.
    pub fn level(mut self, level: u32) -> Self {
        self.level = level;
        self
    }

    /// Sets the kind-specific magnitude.
    pub fn detail(mut self, detail: u64) -> Self {
        self.detail = detail;
        self
    }
}

/// A completed, named span of work (a batch, a bulk load, a coalesce pass).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Operation name, e.g. `"search_batch"`.
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Items processed within the span (queries, records, …).
    pub items: u64,
}

/// Receiver of structural events and completed spans.
///
/// Implementations are called synchronously from index/storage hot paths
/// and must be cheap, non-blocking, and panic-free.
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    /// Called when the observed structure changes shape.
    fn event(&self, event: Event);

    /// Called when a named multi-item operation completes. The default
    /// discards the span.
    fn span(&self, span: Span) {
        let _ = span;
    }
}

/// A sink that discards everything.
///
/// The layers treat "no sink" (`None`) as the true fast path — `NullSink`
/// exists for APIs that require *some* sink value and for benchmarking the
/// dispatch overhead itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    #[inline]
    fn event(&self, _event: Event) {}
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<Event>,
    spans: VecDeque<Span>,
}

/// A bounded ring-buffer sink for tests and debugging.
///
/// Keeps the most recent `capacity` events (and spans) and counts what it
/// had to drop; recording is a short critical section on a `Mutex`.
///
/// ```
/// use segidx_obs::{Event, EventKind, ObsSink, RingBufferSink};
///
/// let sink = RingBufferSink::new(2);
/// for i in 0..3 {
///     sink.event(Event::new(EventKind::LeafSplit).node(i));
/// }
/// let kept = sink.events();
/// assert_eq!(kept.len(), 2, "bounded");
/// assert_eq!(kept[0].node, 1, "oldest dropped first");
/// assert_eq!(sink.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    inner: Mutex<RingInner>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// A ring keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner::default()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.iter().copied().collect()
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of(&self, kind: EventKind) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Clears all retained events and spans (the drop counter survives).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.clear();
        inner.spans.clear();
    }
}

impl ObsSink for RingBufferSink {
    fn event(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.events.push_back(event);
    }

    fn span(&self, span: Span) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
        }
        inner.spans.push_back(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let sink = RingBufferSink::new(3);
        for i in 0..10u64 {
            sink.event(Event::new(EventKind::Cut).node(i).detail(i * 2));
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.node).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(sink.dropped(), 7);
    }

    #[test]
    fn spans_are_recorded() {
        let sink = RingBufferSink::new(4);
        sink.span(Span {
            name: "bulk_load",
            nanos: 1_000,
            items: 50,
        });
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.spans()[0].name, "bulk_load");
    }

    #[test]
    fn filter_by_kind_and_clear() {
        let sink = RingBufferSink::new(8);
        sink.event(Event::new(EventKind::LeafSplit));
        sink.event(Event::new(EventKind::Demotion));
        sink.event(Event::new(EventKind::LeafSplit));
        assert_eq!(sink.events_of(EventKind::LeafSplit).len(), 2);
        assert_eq!(sink.events_of(EventKind::Coalesce).len(), 0);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.event(Event::new(EventKind::BufferEviction));
        sink.span(Span {
            name: "noop",
            nanos: 1,
            items: 0,
        });
    }

    #[test]
    fn kind_names_are_snake_case() {
        for kind in [
            EventKind::LeafSplit,
            EventKind::InternalSplit,
            EventKind::Promotion,
            EventKind::Demotion,
            EventKind::Relink,
            EventKind::Cut,
            EventKind::ElasticOverflow,
            EventKind::Coalesce,
            EventKind::SpanningEviction,
            EventKind::Redistribution,
            EventKind::ForcedReinsert,
            EventKind::BufferEviction,
            EventKind::PageQuarantined,
            EventKind::SubtreeLost,
            EventKind::RecoveryRebuild,
            EventKind::WriteBackError,
            EventKind::SnapshotPublished,
            EventKind::EpochReclaimed,
            EventKind::WriterStalled,
        ] {
            let name = kind.name();
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
