//! A minimal JSON value, renderer, and parser.
//!
//! The workspace builds offline against compile-only serde shims (see
//! `shims/README.md`), so no real serde data format exists. This module is
//! the telemetry layer's self-contained substitute: enough JSON to render a
//! [`MetricsSnapshot`](crate::MetricsSnapshot), parse it back, and let CI
//! validate emitted artifacts — not a general-purpose JSON library (no
//! `\uXXXX` escapes beyond what the renderer emits, no duplicate-key
//! detection).

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer (floats with no fraction qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value parses back as Float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_document() {
        let doc = Value::Object(vec![
            ("name".into(), Value::Str("p99 \"tail\"".into())),
            ("count".into(), Value::Int(42)),
            ("rate".into(), Value::Float(0.5)),
            ("on".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "buckets".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_stay_integers() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v, Value::Int(9007199254740993), "beyond f64 precision");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        assert_eq!(Value::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}
