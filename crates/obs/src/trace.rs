//! Hierarchical query tracing: sampled per-operation traces made of nested
//! RAII spans, a per-trace [`QueryProfile`], and a bounded [`FlightRecorder`]
//! retaining the slowest completed traces per operation class.
//!
//! The paper argues from *where* a query spends its accesses (spanning lists
//! vs subtree descent); flat histograms cannot attribute a p99 spike to
//! queue wait vs commit vs page I/O. This module adds the structure:
//!
//! * A [`Tracer`] decides per-operation whether to record a trace
//!   (`sample_every`, default off). When it declines — the common case —
//!   the instrumented hot paths cost **one thread-local boolean check**
//!   ([`active`]), preserving the PR 3 "None = one null check" contract.
//! * While a trace is active on a thread, [`span`] opens a child span that
//!   closes on drop, and [`add`] / [`level_visit`] bump profile counters.
//!   Recording is buffered: spans append to a thread-local scratch vector
//!   (no locks, no allocation after warm-up) and are flushed into the
//!   trace's shared buffer once per thread per trace.
//! * Scatter/gather workers adopt the parent trace with
//!   [`TraceContext::enter`], so a sharded query yields **one** tree that
//!   spans router → per-shard scatter → node visits → page I/O.
//! * Completed traces ([`CompletedTrace`]) carry the span tree plus a
//!   [`QueryProfile`] and are offered to the tracer's [`FlightRecorder`],
//!   which keeps the N slowest per [`OpClass`] (a slow-op log).
//! * Exporters: [`CompletedTrace::render_text_tree`] for humans and
//!   [`chrome_trace_json`] producing Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! Only one trace can be active per thread at a time; a nested
//! [`Tracer::start`] while one is active returns `None` (the outer trace
//! absorbs the inner operation as spans, which is exactly what a
//! hierarchical profile wants).

use crate::json::Value;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of tree levels tracked individually in [`QueryProfile`]; deeper
/// levels accumulate into the last slot. Paper-scale trees are ≤ 10 levels.
pub const MAX_LEVELS: usize = 32;

/// Hard cap on spans retained per trace; further spans are counted in
/// [`CompletedTrace::dropped_spans`] instead of growing without bound.
pub const DEFAULT_MAX_SPANS: usize = 4096;

/// The operation class a trace belongs to; the flight recorder keeps the
/// slowest traces per class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Window / range search.
    Search,
    /// Point stabbing query.
    Stab,
    /// Nearest-neighbor query.
    Nearest,
    /// Insert (including its queue wait + commit when traced through the
    /// concurrent service).
    Insert,
    /// Delete.
    Delete,
    /// Bulk load.
    BulkLoad,
    /// A writer-side commit batch.
    Commit,
    /// Anything else.
    Other,
}

impl OpClass {
    /// Stable lowercase name used in exports and flight-recorder summaries.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Search => "search",
            OpClass::Stab => "stab",
            OpClass::Nearest => "nearest",
            OpClass::Insert => "insert",
            OpClass::Delete => "delete",
            OpClass::BulkLoad => "bulk_load",
            OpClass::Commit => "commit",
            OpClass::Other => "other",
        }
    }

    /// Every class, in display order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Search,
        OpClass::Stab,
        OpClass::Nearest,
        OpClass::Insert,
        OpClass::Delete,
        OpClass::BulkLoad,
        OpClass::Commit,
        OpClass::Other,
    ];
}

/// A profile counter dimension; bumped via [`add`] while a trace is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Dim {
    /// SoA scan-kernel invocations (one per node whose planes were scanned).
    KernelInvocations = 0,
    /// Entries scanned by those kernels.
    KernelEntriesScanned = 1,
    /// HINT levels walked.
    HintLevelWalks = 2,
    /// HINT results emitted comparison-free (middle partitions / covered
    /// delta partitions).
    HintElidedCmp = 3,
    /// Hybrid router decisions that chose HINT.
    RoutedHint = 4,
    /// Hybrid router decisions that chose the tree.
    RoutedTree = 5,
    /// Shards fanned out to by a scatter/gather read.
    ShardFanout = 6,
    /// Buffer-pool hits.
    BufferPoolHits = 7,
    /// Buffer-pool misses (each implies a page read).
    BufferPoolMisses = 8,
    /// Pages read from disk.
    PageReads = 9,
    /// Pages written to disk.
    PageWrites = 10,
    /// Nanoseconds this op waited in the submission queue.
    QueueWaitNanos = 11,
    /// Nanoseconds the writer spent applying the op's commit batch.
    ApplyNanos = 12,
    /// Nanoseconds the writer spent checkpointing the batch (durable mode).
    CheckpointNanos = 13,
    /// Nanoseconds the writer spent publishing the new snapshot.
    PublishNanos = 14,
    /// Result records produced.
    ResultRecords = 15,
}

/// Number of [`Dim`] counters.
pub const DIMS: usize = 16;

/// Stable export names, indexed by `Dim as usize`.
pub const DIM_NAMES: [&str; DIMS] = [
    "kernel_invocations",
    "kernel_entries_scanned",
    "hint_level_walks",
    "hint_elided_cmp",
    "routed_hint",
    "routed_tree",
    "shard_fanout",
    "buffer_pool_hits",
    "buffer_pool_misses",
    "page_reads",
    "page_writes",
    "queue_wait_nanos",
    "apply_nanos",
    "checkpoint_nanos",
    "publish_nanos",
    "result_records",
];

/// One completed span, start/end in nanoseconds relative to the trace root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is id 0.
    pub id: u64,
    /// Parent span id; the root's parent is itself (0).
    pub parent: u64,
    /// Static span name, e.g. `"tree.search"`.
    pub name: &'static str,
    /// Start offset from the trace root, nanoseconds.
    pub start_nanos: u64,
    /// End offset from the trace root, nanoseconds.
    pub end_nanos: u64,
    /// Optional item count (results merged, pages read, …).
    pub items: u64,
    /// Arbitrary thread tag (shard id for workers, 0 for the root thread).
    pub thread: u64,
}

/// Aggregated per-trace counters: the paper-style access breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryProfile {
    /// Tree node visits by level (root = its level in the tree; slot
    /// `MAX_LEVELS - 1` accumulates anything deeper).
    pub level_visits: Vec<u64>,
    /// Counter values, indexed by `Dim as usize` / [`DIM_NAMES`].
    pub dims: Vec<u64>,
}

impl QueryProfile {
    /// The value of one counter dimension.
    pub fn dim(&self, d: Dim) -> u64 {
        self.dims.get(d as usize).copied().unwrap_or(0)
    }

    /// Total tree node visits across all levels.
    pub fn total_node_visits(&self) -> u64 {
        self.level_visits.iter().sum()
    }

    /// The profile as a JSON object (zero counters omitted).
    pub fn to_json_value(&self) -> Value {
        let mut fields = Vec::new();
        let visits: Vec<Value> = self
            .level_visits
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(l, &v)| Value::Array(vec![Value::Int(l as i64), Value::Int(v as i64)]))
            .collect();
        fields.push(("level_visits".to_string(), Value::Array(visits)));
        for (i, name) in DIM_NAMES.iter().enumerate() {
            let v = self.dims.get(i).copied().unwrap_or(0);
            if v > 0 {
                fields.push((name.to_string(), Value::Int(v as i64)));
            }
        }
        Value::Object(fields)
    }
}

/// A finished trace: the span tree, its profile, and identifying metadata.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// Trace id, unique per process.
    pub id: u64,
    /// Operation class (flight-recorder bucketing key).
    pub class: OpClass,
    /// Root span name, e.g. `"sharded.search"`.
    pub name: &'static str,
    /// Total wall-clock duration, nanoseconds.
    pub duration_nanos: u64,
    /// All spans, sorted by `start_nanos` (root first).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the per-trace buffer was full.
    pub dropped_spans: u64,
    /// Aggregated counters.
    pub profile: QueryProfile,
}

impl CompletedTrace {
    /// The root span (id 0). Present in every well-formed trace.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == 0)
    }

    /// Checks the structural invariants every recorded trace must satisfy;
    /// returns human-readable violations (empty = well-formed):
    ///
    /// * exactly one root (id 0, parent 0), starting at offset 0;
    /// * every span's parent exists and `parent.id < child.id` (parents
    ///   open before their children);
    /// * every child's `[start, end]` nests within its parent's;
    /// * ids are unique and every span has `start <= end`.
    pub fn check_well_formed(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut by_id: HashMap<u64, &SpanRecord> = HashMap::new();
        for s in &self.spans {
            if by_id.insert(s.id, s).is_some() {
                problems.push(format!("duplicate span id {}", s.id));
            }
            if s.start_nanos > s.end_nanos {
                problems.push(format!(
                    "span {} ({}) ends before it starts: [{}, {}]",
                    s.id, s.name, s.start_nanos, s.end_nanos
                ));
            }
        }
        let roots: Vec<&&SpanRecord> = by_id.values().filter(|s| s.id == 0).collect();
        match roots.as_slice() {
            [] => problems.push("no root span (id 0)".to_string()),
            [root] => {
                if root.parent != 0 {
                    problems.push("root span's parent is not itself".to_string());
                }
                if root.start_nanos != 0 {
                    problems.push(format!(
                        "root span starts at {} instead of 0",
                        root.start_nanos
                    ));
                }
                if root.end_nanos > self.duration_nanos {
                    problems.push(format!(
                        "root span ends at {} after the trace duration {}",
                        root.end_nanos, self.duration_nanos
                    ));
                }
            }
            _ => {}
        }
        for s in &self.spans {
            if s.id == 0 {
                continue;
            }
            match by_id.get(&s.parent) {
                None => problems.push(format!(
                    "span {} ({}) has missing parent {}",
                    s.id, s.name, s.parent
                )),
                Some(p) => {
                    if p.id >= s.id {
                        problems.push(format!(
                            "span {} ({}) opened before its parent {} ({})",
                            s.id, s.name, p.id, p.name
                        ));
                    }
                    if s.start_nanos < p.start_nanos || s.end_nanos > p.end_nanos {
                        problems.push(format!(
                            "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                            s.id,
                            s.name,
                            s.start_nanos,
                            s.end_nanos,
                            p.id,
                            p.name,
                            p.start_nanos,
                            p.end_nanos
                        ));
                    }
                }
            }
        }
        problems
    }

    /// Renders the span tree as indented text with durations, item counts,
    /// and the profile summary — the human-facing slow-op view.
    ///
    /// ```text
    /// trace #12 search "sharded.search" 184.3µs (14 spans)
    /// └─ sharded.search 184.3µs
    ///    ├─ router 0.2µs
    ///    ├─ shard0.scatter 80.1µs [items=31]
    ///    ...
    /// ```
    pub fn render_text_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace #{} {} \"{}\" {} ({} spans{})",
            self.id,
            self.class.name(),
            self.name,
            fmt_nanos(self.duration_nanos),
            self.spans.len(),
            if self.dropped_spans > 0 {
                format!(", {} dropped", self.dropped_spans)
            } else {
                String::new()
            }
        );
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for s in &self.spans {
            if s.id != 0 {
                children.entry(s.parent).or_default().push(s);
            }
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|s| (s.start_nanos, s.id));
        }
        if let Some(root) = self.root() {
            render_node(&mut out, root, &children, "", true);
        }
        let p = &self.profile;
        if p.total_node_visits() > 0 {
            let levels: Vec<String> = p
                .level_visits
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0)
                .map(|(l, &v)| format!("L{l}:{v}"))
                .collect();
            let _ = writeln!(out, "levels   {}", levels.join(" "));
        }
        let mut dims = String::new();
        for (i, name) in DIM_NAMES.iter().enumerate() {
            let v = p.dims.get(i).copied().unwrap_or(0);
            if v > 0 {
                if !dims.is_empty() {
                    dims.push(' ');
                }
                let _ = write!(dims, "{name}={v}");
            }
        }
        if !dims.is_empty() {
            let _ = writeln!(out, "profile  {dims}");
        }
        out
    }

    /// The trace as a JSON object (used by flight-recorder summaries).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("trace_id".to_string(), Value::Int(self.id as i64)),
            (
                "class".to_string(),
                Value::Str(self.class.name().to_string()),
            ),
            ("name".to_string(), Value::Str(self.name.to_string())),
            (
                "duration_nanos".to_string(),
                Value::Int(self.duration_nanos as i64),
            ),
            ("spans".to_string(), Value::Int(self.spans.len() as i64)),
            (
                "dropped_spans".to_string(),
                Value::Int(self.dropped_spans as i64),
            ),
            ("profile".to_string(), self.profile.to_json_value()),
        ])
    }
}

fn render_node(
    out: &mut String,
    s: &SpanRecord,
    children: &HashMap<u64, Vec<&SpanRecord>>,
    prefix: &str,
    last: bool,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let items = if s.items > 0 {
        format!(" [items={}]", s.items)
    } else {
        String::new()
    };
    let thread = if s.thread > 0 {
        format!(" (t{})", s.thread)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{prefix}{branch}{} {}{items}{thread}",
        s.name,
        fmt_nanos(s.end_nanos.saturating_sub(s.start_nanos))
    );
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if let Some(kids) = children.get(&s.id) {
        for (i, kid) in kids.iter().enumerate() {
            render_node(out, kid, children, &child_prefix, i + 1 == kids.len());
        }
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Renders completed traces as Chrome `trace_event` JSON (the
/// "JSON Array Format" with a `traceEvents` wrapper), loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Each span becomes a complete (`"ph":"X"`) event; `pid` is the trace id
/// (so multiple traces load side by side) and `tid` the recording thread.
/// Timestamps are microseconds as Chrome requires; sub-microsecond spans
/// keep a fractional part.
pub fn chrome_trace_json(traces: &[CompletedTrace]) -> String {
    let mut events = Vec::new();
    for t in traces {
        for s in &t.spans {
            let mut args = vec![
                ("span_id".to_string(), Value::Int(s.id as i64)),
                ("parent".to_string(), Value::Int(s.parent as i64)),
            ];
            if s.items > 0 {
                args.push(("items".to_string(), Value::Int(s.items as i64)));
            }
            if s.id == 0 {
                args.push(("profile".to_string(), t.profile.to_json_value()));
            }
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(s.name.to_string())),
                ("cat".to_string(), Value::Str(t.class.name().to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(s.start_nanos as f64 / 1e3)),
                (
                    "dur".to_string(),
                    Value::Float(s.end_nanos.saturating_sub(s.start_nanos) as f64 / 1e3),
                ),
                ("pid".to_string(), Value::Int(t.id as i64)),
                ("tid".to_string(), Value::Int(s.thread as i64)),
                ("args".to_string(), Value::Object(args)),
            ]));
        }
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ])
    .render()
}

// ---------------------------------------------------------------------------
// Recording machinery
// ---------------------------------------------------------------------------

/// State shared by every thread participating in one live trace.
struct TraceShared {
    id: u64,
    class: OpClass,
    name: &'static str,
    start: Instant,
    next_span: AtomicU64,
    max_spans: usize,
    finished: AtomicBool,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    dims: [AtomicU64; DIMS],
    level_visits: [AtomicU64; MAX_LEVELS],
}

impl TraceShared {
    fn new(id: u64, class: OpClass, name: &'static str, max_spans: usize) -> Self {
        Self {
            id,
            class,
            name,
            start: Instant::now(),
            next_span: AtomicU64::new(1),
            max_spans,
            finished: AtomicBool::new(false),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            dims: std::array::from_fn(|_| AtomicU64::new(0)),
            level_visits: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Flushes a thread's scratch spans into the shared buffer, bounded by
    /// `max_spans`; overflow and post-finish stragglers count as dropped.
    fn flush(&self, scratch: &mut Vec<SpanRecord>) {
        if scratch.is_empty() {
            return;
        }
        if self.finished.load(Ordering::Acquire) {
            self.dropped
                .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            scratch.clear();
            return;
        }
        let mut spans = self.spans.lock().unwrap();
        let room = self.max_spans.saturating_sub(spans.len());
        // The root span (id 0) must always land for well-formedness, even
        // when the buffer filled with its descendants first.
        let keep = scratch.len().min(room);
        if keep < scratch.len() {
            self.dropped
                .fetch_add((scratch.len() - keep) as u64, Ordering::Relaxed);
            if let Some(root_at) = scratch.iter().position(|s| s.id == 0) {
                if root_at >= keep {
                    let root = scratch[root_at].clone();
                    spans.push(root);
                }
            }
        }
        spans.extend(scratch.drain(..keep));
        scratch.clear();
    }
}

/// An open span on a thread's stack.
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_nanos: u64,
    items: u64,
}

/// Per-thread recording state for the currently adopted trace.
struct ThreadTrace {
    shared: Arc<TraceShared>,
    thread_tag: u64,
    stack: Vec<OpenSpan>,
    scratch: Vec<SpanRecord>,
}

thread_local! {
    /// THE one branch every instrumented null path pays.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

/// True when a trace is being recorded on this thread. This is the entire
/// cost instrumented hot paths pay when tracing is off.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Bumps a profile counter on the active trace; no-op when untraced.
#[inline]
pub fn add(dim: Dim, n: u64) {
    if !active() || n == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            t.shared.dims[dim as usize].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Records `visits[level]` node visits per tree level on the active trace.
/// Callers accumulate locally during a kernel loop and flush once here.
pub fn level_visits(visits: &[u64]) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            for (l, &v) in visits.iter().enumerate() {
                if v > 0 {
                    let slot = l.min(MAX_LEVELS - 1);
                    t.shared.level_visits[slot].fetch_add(v, Ordering::Relaxed);
                }
            }
        }
    });
}

/// Records `n` visits at one tree level on the active trace.
#[inline]
pub fn level_visit(level: u32, n: u64) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            let slot = (level as usize).min(MAX_LEVELS - 1);
            t.shared.level_visits[slot].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Opens a child span under the thread's current span; closes on drop.
/// When no trace is active this is a no-op costing the [`active`] check.
#[inline]
pub fn span(name: &'static str) -> SpanScope {
    if !active() {
        return SpanScope { open: false };
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if let Some(t) = cur.as_mut() {
            let id = t.shared.next_span.fetch_add(1, Ordering::Relaxed);
            let parent = t.stack.last().map(|s| s.id).unwrap_or(0);
            let start_nanos = t.shared.now_nanos();
            t.stack.push(OpenSpan {
                id,
                parent,
                name,
                start_nanos,
                items: 0,
            });
            SpanScope { open: true }
        } else {
            SpanScope { open: false }
        }
    })
}

/// RAII guard returned by [`span`]; closing order must mirror opening order
/// (guaranteed by Rust scoping when guards are bound to locals).
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanScope {
    open: bool,
}

impl SpanScope {
    /// Attaches an item count (results merged, pages read, …) to the span.
    pub fn items(&self, n: u64) {
        if !self.open {
            return;
        }
        CURRENT.with(|c| {
            if let Some(t) = c.borrow_mut().as_mut() {
                if let Some(top) = t.stack.last_mut() {
                    top.items = n;
                }
            }
        });
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if !self.open {
            return;
        }
        CURRENT.with(|c| {
            if let Some(t) = c.borrow_mut().as_mut() {
                if let Some(open) = t.stack.pop() {
                    let end_nanos = t.shared.now_nanos();
                    t.scratch.push(SpanRecord {
                        id: open.id,
                        parent: open.parent,
                        name: open.name,
                        start_nanos: open.start_nanos,
                        end_nanos,
                        items: open.items,
                        thread: t.thread_tag,
                    });
                }
            }
        });
    }
}

/// A handle to the live trace, cloneable across threads so scatter/gather
/// workers can record spans into the same tree.
#[derive(Clone)]
pub struct TraceContext {
    shared: Arc<TraceShared>,
    /// The span the adopting thread's spans will hang under.
    parent: u64,
    /// When that span opened, for clamping synthetic intervals into it.
    parent_start: u64,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("trace_id", &self.shared.id)
            .field("parent", &self.parent)
            .finish()
    }
}

/// The current thread's live trace, for handing to worker threads.
/// Spans those workers record become children of the span open here now.
pub fn current() -> Option<TraceContext> {
    if !active() {
        return None;
    }
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|t| TraceContext {
            shared: Arc::clone(&t.shared),
            parent: t.stack.last().map(|s| s.id).unwrap_or(0),
            parent_start: t.stack.last().map(|s| s.start_nanos).unwrap_or(0),
        })
    })
}

impl TraceContext {
    /// Adopts the trace on the calling thread and opens a span named
    /// `name` under the context's parent span. The returned guard closes
    /// the span and flushes the thread's records on drop.
    ///
    /// `thread_tag` labels the spans (shard id; rendered as `tid` in the
    /// Chrome export). Returns `None` if this thread already records a
    /// trace (adoption would corrupt its stack).
    pub fn enter(&self, name: &'static str, thread_tag: u64) -> Option<WorkerGuard> {
        if active() {
            return None;
        }
        let id = self.shared.next_span.fetch_add(1, Ordering::Relaxed);
        let start_nanos = self.shared.now_nanos();
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(ThreadTrace {
                shared: Arc::clone(&self.shared),
                thread_tag,
                stack: vec![OpenSpan {
                    id,
                    parent: self.parent,
                    name,
                    start_nanos,
                    items: 0,
                }],
                scratch: Vec::new(),
            });
        });
        ACTIVE.with(|a| a.set(true));
        Some(WorkerGuard)
    }

    /// Records an already-measured interval as a closed child span of the
    /// context's parent — used when the measuring thread is not the traced
    /// thread (e.g. the writer measuring commit phases for a submitter).
    /// Offsets are clamped into the parent span's elapsed window.
    pub fn record_interval(
        &self,
        name: &'static str,
        start_nanos: u64,
        end_nanos: u64,
        items: u64,
    ) {
        let now = self.shared.now_nanos();
        let start = start_nanos.clamp(self.parent_start, now);
        let end = end_nanos.clamp(start, now);
        let id = self.shared.next_span.fetch_add(1, Ordering::Relaxed);
        let mut one = vec![SpanRecord {
            id,
            parent: self.parent,
            name,
            start_nanos: start,
            end_nanos: end,
            items,
            thread: 0,
        }];
        self.shared.flush(&mut one);
    }

    /// Nanoseconds since the trace root started.
    pub fn now_nanos(&self) -> u64 {
        self.shared.now_nanos()
    }
}

/// Closes a worker's adoption span and flushes its records on drop.
pub struct WorkerGuard;

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let taken = CURRENT.with(|c| c.borrow_mut().take());
        ACTIVE.with(|a| a.set(false));
        if let Some(mut t) = taken {
            // Close every span still open on this thread (normally just the
            // adoption span).
            while let Some(open) = t.stack.pop() {
                let end_nanos = t.shared.now_nanos();
                t.scratch.push(SpanRecord {
                    id: open.id,
                    parent: open.parent,
                    name: open.name,
                    start_nanos: open.start_nanos,
                    end_nanos,
                    items: open.items,
                    thread: t.thread_tag,
                });
            }
            t.shared.flush(&mut t.scratch);
        }
    }
}

// ---------------------------------------------------------------------------
// Tracer + flight recorder
// ---------------------------------------------------------------------------

/// Bounded store of the N slowest completed traces per [`OpClass`].
pub struct FlightRecorder {
    per_class: usize,
    slots: Mutex<HashMap<OpClass, Vec<CompletedTrace>>>,
    recorded: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("per_class", &self.per_class)
            .field("retained", &self.retained())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the `per_class` slowest traces per class.
    pub fn new(per_class: usize) -> Self {
        Self {
            per_class: per_class.max(1),
            slots: Mutex::new(HashMap::new()),
            recorded: AtomicU64::new(0),
        }
    }

    /// Offers a completed trace; it is kept if it ranks among the slowest
    /// of its class.
    pub fn offer(&self, trace: CompletedTrace) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        let bucket = slots.entry(trace.class).or_default();
        bucket.push(trace);
        bucket.sort_by_key(|t| std::cmp::Reverse(t.duration_nanos));
        bucket.truncate(self.per_class);
    }

    /// The slowest retained traces for `class`, slowest first.
    pub fn slowest(&self, class: OpClass) -> Vec<CompletedTrace> {
        self.slots
            .lock()
            .unwrap()
            .get(&class)
            .cloned()
            .unwrap_or_default()
    }

    /// Every retained trace, grouped by class in [`OpClass::ALL`] order.
    pub fn all(&self) -> Vec<CompletedTrace> {
        let slots = self.slots.lock().unwrap();
        OpClass::ALL
            .iter()
            .filter_map(|c| slots.get(c))
            .flat_map(|b| b.iter().cloned())
            .collect()
    }

    /// Traces currently retained.
    pub fn retained(&self) -> usize {
        self.slots.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Traces offered since construction.
    pub fn offered(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Per-class summaries (slowest trace per class, with profile) as JSON:
    /// `{"search": {"count": 3, "slowest": {...}}, ...}`.
    pub fn summary_json(&self) -> Value {
        let slots = self.slots.lock().unwrap();
        let mut fields = Vec::new();
        for class in OpClass::ALL {
            if let Some(bucket) = slots.get(&class) {
                if bucket.is_empty() {
                    continue;
                }
                fields.push((
                    class.name().to_string(),
                    Value::Object(vec![
                        ("retained".to_string(), Value::Int(bucket.len() as i64)),
                        ("slowest".to_string(), bucket[0].to_json_value()),
                    ]),
                ));
            }
        }
        Value::Object(fields)
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Decides which operations get traced and collects what they record.
///
/// `sample_every = 0` (the default) disables tracing: [`Tracer::start`]
/// returns `None` and instrumented paths cost one boolean check.
/// `sample_every = n` traces every n-th started operation.
pub struct Tracer {
    sample_every: AtomicU64,
    started: AtomicU64,
    sampled: AtomicU64,
    completed: AtomicU64,
    spans_dropped: AtomicU64,
    max_spans: usize,
    flight: FlightRecorder,
    last: Mutex<Option<CompletedTrace>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .field("sampled", &self.sampled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with sampling off and an 8-per-class flight recorder.
    pub fn new() -> Self {
        Self::with_config(0, 8, DEFAULT_MAX_SPANS)
    }

    /// A tracer sampling every `sample_every`-th op (0 = off), retaining
    /// `flight_per_class` slowest traces per class, capping each trace at
    /// `max_spans` spans.
    pub fn with_config(sample_every: u64, flight_per_class: usize, max_spans: usize) -> Self {
        Self {
            sample_every: AtomicU64::new(sample_every),
            started: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            spans_dropped: AtomicU64::new(0),
            max_spans: max_spans.max(2),
            flight: FlightRecorder::new(flight_per_class),
            last: Mutex::new(None),
        }
    }

    /// Changes the sampling rate (0 disables).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Starts a trace for this operation if sampling selects it and no
    /// trace is already active on this thread. Bind the returned guard for
    /// the operation's duration; dropping it completes the trace.
    #[inline]
    pub fn start(self: &Arc<Self>, class: OpClass, name: &'static str) -> Option<TraceGuard> {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let n = self.started.fetch_add(1, Ordering::Relaxed);
        if n % every != 0 {
            return None;
        }
        self.force(class, name)
    }

    /// Starts a trace unconditionally (still `None` if this thread already
    /// records one).
    pub fn force(self: &Arc<Self>, class: OpClass, name: &'static str) -> Option<TraceGuard> {
        if active() {
            return None;
        }
        self.sampled.fetch_add(1, Ordering::Relaxed);
        let id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(TraceShared::new(id, class, name, self.max_spans));
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(ThreadTrace {
                shared: Arc::clone(&shared),
                thread_tag: 0,
                stack: vec![OpenSpan {
                    id: 0,
                    parent: 0,
                    name,
                    start_nanos: 0,
                    items: 0,
                }],
                scratch: Vec::new(),
            });
        });
        ACTIVE.with(|a| a.set(true));
        Some(TraceGuard {
            tracer: Arc::clone(self),
            shared,
        })
    }

    /// Operations offered to [`Tracer::start`] since construction.
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Traces actually recorded.
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Traces completed (guard dropped).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Spans dropped across all completed traces (buffer overflow).
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    /// The flight recorder holding the slowest completed traces.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The most recently completed trace, if any.
    pub fn last_completed(&self) -> Option<CompletedTrace> {
        self.last.lock().unwrap().clone()
    }

    fn finish(&self, shared: Arc<TraceShared>) {
        // Close this thread's spans (root included) and flush.
        let taken = CURRENT.with(|c| c.borrow_mut().take());
        ACTIVE.with(|a| a.set(false));
        if let Some(mut t) = taken {
            while let Some(open) = t.stack.pop() {
                let end_nanos = t.shared.now_nanos();
                t.scratch.push(SpanRecord {
                    id: open.id,
                    parent: open.parent,
                    name: open.name,
                    start_nanos: open.start_nanos,
                    end_nanos,
                    items: open.items,
                    thread: t.thread_tag,
                });
            }
            t.shared.flush(&mut t.scratch);
        }
        let duration_nanos = shared.now_nanos();
        shared.finished.store(true, Ordering::Release);
        let mut spans = std::mem::take(&mut *shared.spans.lock().unwrap());
        spans.sort_by_key(|s| (s.start_nanos, s.id));
        let dropped_spans = shared.dropped.load(Ordering::Relaxed);
        let profile = QueryProfile {
            level_visits: shared
                .level_visits
                .iter()
                .map(|v| v.load(Ordering::Relaxed))
                .collect(),
            dims: shared
                .dims
                .iter()
                .map(|v| v.load(Ordering::Relaxed))
                .collect(),
        };
        let trace = CompletedTrace {
            id: shared.id,
            class: shared.class,
            name: shared.name,
            duration_nanos,
            spans,
            dropped_spans,
            profile,
        };
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.spans_dropped
            .fetch_add(dropped_spans, Ordering::Relaxed);
        *self.last.lock().unwrap() = Some(trace.clone());
        self.flight.offer(trace);
    }
}

/// Root guard of a live trace; dropping it completes the trace and offers
/// it to the flight recorder.
#[must_use = "dropping the guard completes the trace"]
pub struct TraceGuard {
    tracer: Arc<Tracer>,
    shared: Arc<TraceShared>,
}

impl TraceGuard {
    /// The trace id being recorded.
    pub fn trace_id(&self) -> u64 {
        self.shared.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        self.tracer.finish(Arc::clone(&self.shared));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn traced<F: FnOnce()>(f: F) -> CompletedTrace {
        let tracer = Arc::new(Tracer::with_config(1, 4, DEFAULT_MAX_SPANS));
        {
            let _g = tracer.start(OpClass::Search, "test.root").unwrap();
            f();
        }
        tracer.last_completed().unwrap()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Arc::new(Tracer::new());
        assert!(tracer.start(OpClass::Search, "op").is_none());
        assert!(!active());
        // Instrumented paths are no-ops.
        let s = span("orphan");
        s.items(3);
        drop(s);
        add(Dim::PageReads, 5);
        assert_eq!(tracer.completed(), 0);
    }

    #[test]
    fn sampling_selects_every_nth() {
        let tracer = Arc::new(Tracer::with_config(3, 4, DEFAULT_MAX_SPANS));
        let mut taken = 0;
        for _ in 0..9 {
            if let Some(g) = tracer.start(OpClass::Stab, "op") {
                taken += 1;
                drop(g);
            }
        }
        assert_eq!(taken, 3);
        assert_eq!(tracer.completed(), 3);
    }

    #[test]
    fn nested_spans_form_a_well_formed_tree() {
        let t = traced(|| {
            let a = span("a");
            {
                let b = span("b");
                b.items(7);
                let _c = span("c");
            }
            drop(a);
            let _d = span("d");
        });
        assert_eq!(t.spans.len(), 5); // root + a,b,c,d
        assert!(
            t.check_well_formed().is_empty(),
            "{:?}",
            t.check_well_formed()
        );
        let b = t.spans.iter().find(|s| s.name == "b").unwrap();
        let a = t.spans.iter().find(|s| s.name == "a").unwrap();
        let c = t.spans.iter().find(|s| s.name == "c").unwrap();
        let d = t.spans.iter().find(|s| s.name == "d").unwrap();
        assert_eq!(b.parent, a.id);
        assert_eq!(c.parent, b.id);
        assert_eq!(d.parent, 0);
        assert_eq!(b.items, 7);
    }

    #[test]
    fn counters_and_levels_aggregate() {
        let t = traced(|| {
            add(Dim::KernelInvocations, 4);
            add(Dim::KernelEntriesScanned, 120);
            add(Dim::KernelInvocations, 1);
            level_visits(&[2, 3, 0, 1]);
            level_visit(40, 5); // clamps into the last slot
        });
        assert_eq!(t.profile.dim(Dim::KernelInvocations), 5);
        assert_eq!(t.profile.dim(Dim::KernelEntriesScanned), 120);
        assert_eq!(t.profile.level_visits[0], 2);
        assert_eq!(t.profile.level_visits[1], 3);
        assert_eq!(t.profile.level_visits[3], 1);
        assert_eq!(t.profile.level_visits[MAX_LEVELS - 1], 5);
        assert_eq!(t.profile.total_node_visits(), 11);
    }

    #[test]
    fn workers_record_into_the_same_tree() {
        let t = traced(|| {
            let scatter = span("scatter");
            let ctx = current().unwrap();
            thread::scope(|s| {
                for shard in 0..3u64 {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _g = ctx.enter("shard.scatter", shard).unwrap();
                        let inner = span("kernel");
                        inner.items(shard + 1);
                        add(Dim::ShardFanout, 1);
                    });
                }
            });
            drop(scatter);
        });
        assert!(
            t.check_well_formed().is_empty(),
            "{:?}",
            t.check_well_formed()
        );
        let scatter = t.spans.iter().find(|s| s.name == "scatter").unwrap();
        let workers: Vec<_> = t
            .spans
            .iter()
            .filter(|s| s.name == "shard.scatter")
            .collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, scatter.id);
        }
        assert_eq!(t.spans.iter().filter(|s| s.name == "kernel").count(), 3);
        assert_eq!(t.profile.dim(Dim::ShardFanout), 3);
    }

    #[test]
    fn record_interval_lands_under_parent() {
        let t = traced(|| {
            let outer = span("commit_wait");
            let ctx = current().unwrap();
            ctx.record_interval("apply", 10, 20, 4);
            drop(outer);
        });
        assert!(
            t.check_well_formed().is_empty(),
            "{:?}",
            t.check_well_formed()
        );
        let apply = t.spans.iter().find(|s| s.name == "apply").unwrap();
        let outer = t.spans.iter().find(|s| s.name == "commit_wait").unwrap();
        assert_eq!(apply.parent, outer.id);
        assert_eq!(apply.items, 4);
    }

    #[test]
    fn span_buffer_is_bounded_and_keeps_the_root() {
        let tracer = Arc::new(Tracer::with_config(1, 2, 8));
        {
            let _g = tracer.force(OpClass::Other, "root").unwrap();
            for _ in 0..50 {
                let _s = span("leaf");
            }
        }
        let t = tracer.last_completed().unwrap();
        assert!(t.spans.len() <= 8 + 1);
        assert!(t.dropped_spans > 0);
        assert!(t.root().is_some(), "root must survive overflow");
        assert_eq!(tracer.spans_dropped(), t.dropped_spans);
    }

    #[test]
    fn flight_recorder_keeps_slowest_per_class() {
        let fr = FlightRecorder::new(2);
        for (i, dur) in [100u64, 900, 400, 700].iter().enumerate() {
            fr.offer(CompletedTrace {
                id: i as u64,
                class: OpClass::Search,
                name: "s",
                duration_nanos: *dur,
                spans: vec![],
                dropped_spans: 0,
                profile: QueryProfile::default(),
            });
        }
        fr.offer(CompletedTrace {
            id: 99,
            class: OpClass::Stab,
            name: "t",
            duration_nanos: 5,
            spans: vec![],
            dropped_spans: 0,
            profile: QueryProfile::default(),
        });
        let slowest = fr.slowest(OpClass::Search);
        assert_eq!(
            slowest.iter().map(|t| t.duration_nanos).collect::<Vec<_>>(),
            vec![900, 700]
        );
        assert_eq!(fr.retained(), 3);
        assert_eq!(fr.offered(), 5);
        let summary = fr.summary_json();
        assert!(summary.get("search").is_some());
        assert_eq!(
            summary
                .get("search")
                .and_then(|s| s.get("slowest"))
                .and_then(|s| s.get("duration_nanos"))
                .and_then(Value::as_i64),
            Some(900)
        );
    }

    #[test]
    fn exporters_produce_tree_and_valid_chrome_json() {
        let t = traced(|| {
            let router = span("router");
            drop(router);
            let scatter = span("scatter");
            let _k = span("kernel");
            drop(_k);
            drop(scatter);
            add(Dim::RoutedTree, 1);
        });
        let text = t.render_text_tree();
        assert!(text.contains("trace #"), "{text}");
        assert!(text.contains("router"), "{text}");
        assert!(text.contains("└─") || text.contains("├─"), "{text}");
        assert!(text.contains("routed_tree=1"), "{text}");

        let json = chrome_trace_json(&[t]);
        let parsed = crate::json::parse(&json).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("name").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn well_formedness_detects_violations() {
        let base = |id, parent, s, e| SpanRecord {
            id,
            parent,
            name: "x",
            start_nanos: s,
            end_nanos: e,
            items: 0,
            thread: 0,
        };
        let bad = CompletedTrace {
            id: 1,
            class: OpClass::Search,
            name: "r",
            duration_nanos: 100,
            spans: vec![
                base(0, 0, 0, 100),
                base(1, 0, 10, 120), // escapes parent
                base(2, 7, 20, 30),  // missing parent
            ],
            dropped_spans: 0,
            profile: QueryProfile::default(),
        };
        let problems = bad.check_well_formed();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn nested_start_is_absorbed() {
        let tracer = Arc::new(Tracer::with_config(1, 4, DEFAULT_MAX_SPANS));
        let g = tracer.force(OpClass::Search, "outer").unwrap();
        assert!(tracer.force(OpClass::Search, "inner").is_none());
        drop(g);
        assert_eq!(tracer.completed(), 1);
    }
}
