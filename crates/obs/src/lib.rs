//! # segidx-obs — unified telemetry for the segment-index workspace
//!
//! The paper's sole performance metric is *average nodes accessed per
//! search*; a production index also needs wall-clock tail latency and a
//! record of *why* the tree changed shape. This crate provides the three
//! zero-dependency building blocks the other crates thread through their
//! layers:
//!
//! 1. [`LatencyHistogram`] — wait-free, log₂-bucketed atomic histograms
//!    with `p50`/`p95`/`p99`/`max` extraction, recorded per operation
//!    (`search`, `stab`, `nearest`, `insert`, `delete`, `bulk_load`) and
//!    per physical page read/write.
//! 2. [`ObsSink`] — a structural event trait fired on splits, promotions,
//!    demotions, cuts, coalesces, and buffer-pool evictions, with a bounded
//!    [`RingBufferSink`] recorder for tests/debugging and a [`NullSink`].
//!    Layers hold `Option<Arc<dyn ObsSink>>`; `None` (the default) costs one
//!    null check and no dynamic dispatch.
//! 3. [`MetricsRegistry`] — collector-based aggregation of every counter
//!    and histogram behind one [`MetricsRegistry::snapshot`] /
//!    [`MetricsSnapshot::diff`] API, exporting pretty text, JSON, and
//!    Prometheus text exposition format.
//! 4. [`trace`] — sampled hierarchical query traces: RAII spans with
//!    parent ids, a per-trace [`QueryProfile`] access breakdown, a
//!    [`FlightRecorder`] slow-op log, and exporters to text trees and
//!    Chrome `trace_event` JSON. Sampling defaults to off; untraced paths
//!    cost one thread-local boolean check.
//!
//! Because the workspace builds offline against compile-only serde shims,
//! the [`json`] module carries its own small JSON renderer/parser used by
//! the exporters and by CI artifact validation.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod hist;
pub mod json;
mod registry;
mod sink;
pub mod trace;

pub use hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use registry::{Collector, Metric, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use sink::{Event, EventKind, NullSink, ObsSink, RingBufferSink, Span};
pub use trace::{
    chrome_trace_json, CompletedTrace, FlightRecorder, OpClass, QueryProfile, SpanRecord,
    TraceContext, TraceGuard, Tracer,
};
