//! Snapshot cloning: `Tree::clone` is a structural-sharing snapshot —
//! cheap to take, isolated from later writes, and copy-on-write so the
//! writer only duplicates the nodes it actually touches.

use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::Rect;

fn build(segment: bool, n: u64) -> Tree<2> {
    let config = if segment {
        IndexConfig::srtree()
    } else {
        IndexConfig::rtree()
    };
    let mut t: Tree<2> = Tree::new(config);
    for i in 0..n {
        let x = ((i * 37) % 50_000) as f64;
        let y = ((i * 113) % 50_000) as f64;
        let len = if i % 11 == 0 { 9_000.0 } else { 50.0 };
        t.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
    }
    t
}

#[test]
fn clone_shares_every_node_until_mutation() {
    for segment in [false, true] {
        let tree = build(segment, 5_000);
        let snap = tree.clone();
        // Every live node is shared between the two arenas, none copied.
        assert_eq!(tree.shared_node_count(), tree.node_count());
        assert_eq!(snap.node_count(), tree.node_count());
        assert_eq!(snap.len(), tree.len());
        assert_eq!(snap.entry_count(), tree.entry_count());
        snap.assert_invariants();
    }
}

#[test]
fn snapshot_is_isolated_from_later_writes() {
    let mut tree = build(true, 4_000);
    let q = Rect::new([0.0, 0.0], [50_000.0, 50_000.0]);
    let snap = tree.clone();
    let before = snap.search(&q);

    // Heavy post-snapshot churn: deletes and inserts.
    let victims: Vec<(Rect<2>, RecordId)> = tree
        .iter_entries()
        .filter(|(_, id)| id.raw() % 3 == 0)
        .collect();
    for (rect, id) in &victims {
        tree.delete(rect, *id);
    }
    for i in 10_000..11_000u64 {
        let x = (i % 1_000) as f64;
        tree.insert(Rect::new([x, x], [x + 5.0, x]), RecordId(i));
    }

    // The snapshot still answers exactly as it did at clone time, and still
    // validates — the writer's copy-on-write never reaches shared nodes.
    assert_eq!(snap.search(&q), before);
    snap.assert_invariants();
    tree.assert_invariants();
    assert_ne!(tree.search(&q), before, "writer really changed");
}

#[test]
fn writer_copies_only_touched_nodes() {
    let mut tree = build(false, 8_000);
    let total = tree.node_count();
    let snap = tree.clone();
    assert_eq!(tree.shared_node_count(), total);

    // One point insert touches a root-to-leaf path (plus any split/reinsert
    // fallout) — a small fraction of the arena unshares, not the whole tree.
    tree.insert(Rect::new([1.0, 1.0], [2.0, 1.0]), RecordId(999_999));
    let still_shared = tree.shared_node_count();
    assert!(
        still_shared > total / 2,
        "one insert unshared {} of {} nodes",
        total - still_shared,
        total
    );
    drop(snap);
}

#[test]
fn clone_carries_stats_and_config() {
    let tree = build(true, 2_000);
    let _ = tree.search(&Rect::new([0.0, 0.0], [100.0, 100.0]));
    let snap = tree.clone();
    assert_eq!(snap.stats(), tree.stats());
    assert_eq!(snap.config().segment, tree.config().segment);
    // Searches on the clone do not bump the original's counters.
    let before = tree.stats();
    let _ = snap.search(&Rect::new([0.0, 0.0], [100.0, 100.0]));
    assert_eq!(tree.stats(), before);
}
