//! Tests for the R\*-Tree baseline extensions (topological split,
//! overlap-aware ChooseSubtree, forced reinsertion).

use segidx_core::{IndexConfig, RecordId, SplitAlgorithm, Tree};
use segidx_geom::Rect;

fn boxes(n: u64) -> Vec<(Rect<2>, RecordId)> {
    (0..n)
        .map(|i| {
            let x = ((i * 193) % 10_000) as f64;
            let y = ((i * 71) % 10_000) as f64;
            (Rect::new([x, y], [x + 20.0, y + 20.0]), RecordId(i))
        })
        .collect()
}

#[test]
fn rstar_tree_is_correct() {
    let records = boxes(5_000);
    let mut t: Tree<2> = Tree::new(IndexConfig::rstar());
    for (r, id) in &records {
        t.insert(*r, *id);
    }
    t.assert_invariants();
    assert_eq!(t.len(), 5_000);
    assert!(t.stats().forced_reinserts > 0, "forced reinsertion fired");

    // Differential correctness against brute force on a few queries.
    for q in [
        Rect::new([0.0, 0.0], [500.0, 500.0]),
        Rect::new([4_000.0, 4_000.0], [6_000.0, 4_500.0]),
        Rect::new([9_900.0, 0.0], [10_100.0, 10_100.0]),
    ] {
        let mut expected: Vec<RecordId> = records
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(t.search(&q), expected);
    }
}

#[test]
fn rstar_split_produces_low_overlap() {
    // Same data through quadratic and R* splits: the R* tree's sibling
    // leaves should overlap no more (usually less).
    let records = boxes(4_000);
    let build = |split: SplitAlgorithm, reinsert: bool| -> Tree<2> {
        let config = IndexConfig {
            split,
            choose_subtree_overlap: split == SplitAlgorithm::RStar,
            forced_reinsert: if reinsert { Some(0.3) } else { None },
            ..IndexConfig::default()
        };
        let mut t: Tree<2> = Tree::new(config);
        for (r, id) in &records {
            t.insert(*r, *id);
        }
        t
    };
    let quad = build(SplitAlgorithm::Quadratic, false);
    let rstar = build(SplitAlgorithm::RStar, true);
    quad.assert_invariants();
    rstar.assert_invariants();

    let leaf_overlap = |t: &Tree<2>| t.report().levels[0].overlap_factor;
    assert!(
        leaf_overlap(&rstar) <= leaf_overlap(&quad) * 1.05,
        "R* leaf overlap {} vs quadratic {}",
        leaf_overlap(&rstar),
        leaf_overlap(&quad)
    );

    // And it should not be worse on search accesses.
    let q = Rect::new([2_000.0, 2_000.0], [3_000.0, 3_000.0]);
    let a = quad.count_search_accesses(&q);
    let b = rstar.count_search_accesses(&q);
    assert!(
        b as f64 <= a as f64 * 1.25,
        "R* accesses {b} vs quadratic {a}"
    );
}

#[test]
fn forced_reinsert_fires_once_per_operation() {
    let mut t: Tree<2> = Tree::new(IndexConfig {
        forced_reinsert: Some(0.3),
        ..IndexConfig::default()
    });
    // Fill one leaf exactly to overflow: the 26th insert triggers exactly
    // one forced-reinsert round (not one per reinserted entry).
    for i in 0..26u64 {
        t.insert(
            Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
            RecordId(i),
        );
    }
    let stats = t.stats();
    assert!(stats.forced_reinserts >= 1);
    assert!(
        stats.forced_reinserts <= 8,
        "one round of ~30% of 25 entries, got {}",
        stats.forced_reinserts
    );
    t.assert_invariants();
    assert_eq!(t.len(), 26);
}

#[test]
fn rstar_with_deletes_stays_consistent() {
    let records = boxes(2_000);
    let mut t: Tree<2> = Tree::new(IndexConfig::rstar());
    for (r, id) in &records {
        t.insert(*r, *id);
    }
    for (r, id) in records.iter().step_by(2) {
        assert!(t.delete(r, *id));
    }
    t.assert_invariants();
    assert_eq!(t.len(), 1_000);
    let all = t.search(&Rect::new([0.0, 0.0], [20_000.0, 20_000.0]));
    assert_eq!(all.len(), 1_000);
    assert!(all.iter().all(|r| r.raw() % 2 == 1));
}

#[test]
fn rstar_config_persists() {
    let dir = std::env::temp_dir().join(format!("segidx-rstar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let disk = segidx_storage::DiskManager::create(dir.join("rstar.db")).unwrap();
    let mut t: Tree<2> = Tree::new(IndexConfig::rstar());
    for (r, id) in boxes(500) {
        t.insert(r, id);
    }
    let meta = segidx_core::persist::save(&t, &disk).unwrap();
    let back: Tree<2> = segidx_core::persist::load(&disk, meta).unwrap();
    assert_eq!(back.config(), t.config());
    assert_eq!(back.config().split, SplitAlgorithm::RStar);
    assert_eq!(back.config().forced_reinsert, Some(0.3));
}
