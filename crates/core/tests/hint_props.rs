//! Differential property tests: the HINT engine against all four paper
//! variants under identical operation sequences. The [`IntervalIndex`]
//! contract sorts results by record id, so `search`/`stab`/batch outputs
//! must agree element-for-element. Sequences interleave inserts and
//! deletes so the comparisons cross every storage regime of the engine:
//! the frozen base produced by a (re)build, the post-freeze delta, and
//! the tombstone path a delete of a base-resident entry takes.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_core::{
    HintIndex, IntervalIndex, RTree, RecordId, SRTree, SkeletonRTree, SkeletonSRTree,
};
use segidx_geom::{Point, Rect};

const DOMAIN: f64 = 1000.0;

/// The four paper variants, empty, as trait objects.
fn variants_1d() -> Vec<(&'static str, Box<dyn IntervalIndex<1>>)> {
    let domain = Rect::new([-10.0], [DOMAIN * 1.6]);
    vec![
        ("r-tree", Box::new(RTree::<1>::new())),
        ("sr-tree", Box::new(SRTree::<1>::new())),
        (
            "skeleton-r-tree",
            Box::new(SkeletonRTree::<1>::with_prediction(domain, 256, 32)),
        ),
        (
            "skeleton-sr-tree",
            Box::new(SkeletonSRTree::<1>::with_prediction(domain, 256, 32)),
        ),
    ]
}

fn variants_2d() -> Vec<(&'static str, Box<dyn IntervalIndex<2>>)> {
    let domain = Rect::new([-10.0, -10.0], [DOMAIN * 1.6, DOMAIN * 1.6]);
    vec![
        ("r-tree", Box::new(RTree::<2>::new())),
        ("sr-tree", Box::new(SRTree::<2>::new())),
        (
            "skeleton-r-tree",
            Box::new(SkeletonRTree::<2>::with_prediction(domain, 256, 32)),
        ),
        (
            "skeleton-sr-tree",
            Box::new(SkeletonSRTree::<2>::with_prediction(domain, 256, 32)),
        ),
    ]
}

#[derive(Clone, Debug)]
enum Op {
    Insert { lo: f64, len: f64 },
    Delete { index: usize },
    Search { lo: f64, len: f64 },
    Stab { x: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0..DOMAIN, prop_oneof![
            // Points, short intervals, and long spans: the mix drives
            // copies onto many hierarchy levels.
            Just(0.0),
            0.0..5.0f64,
            0.0..400.0f64,
        ])
        .prop_map(|(lo, len)| Op::Insert { lo, len }),
        2 => any::<usize>().prop_map(|index| Op::Delete { index }),
        2 => (0.0..DOMAIN, 0.0..50.0f64).prop_map(|(lo, len)| Op::Search { lo, len }),
        2 => (-20.0..DOMAIN * 1.2).prop_map(|x| Op::Stab { x }),
    ]
}

/// Applies `ops` to a HINT index and all four variants in lockstep,
/// asserting identical query results throughout.
fn run_differential(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut hint = HintIndex::<1>::new();
    let mut variants = variants_1d();
    let mut live: Vec<(Rect<1>, RecordId)> = Vec::new();
    let mut seq = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert { lo, len } => {
                let rect = Rect::new([*lo], [*lo + *len]);
                let rid = RecordId(seq);
                seq += 1;
                hint.insert(rect, rid);
                for (_, v) in &mut variants {
                    v.insert(rect, rid);
                }
                live.push((rect, rid));
            }
            Op::Delete { index } => {
                if live.is_empty() {
                    continue;
                }
                let (rect, rid) = live.swap_remove(index % live.len());
                prop_assert!(hint.delete(&rect, rid), "hint: delete {rid:?} at {step}");
                for (name, v) in &mut variants {
                    prop_assert!(v.delete(&rect, rid), "{name}: delete {rid:?} at {step}");
                }
            }
            Op::Search { lo, len } => {
                let query = Rect::new([*lo], [*lo + *len]);
                let got = hint.search(&query);
                for (name, v) in &variants {
                    prop_assert_eq!(
                        &got,
                        &v.search(&query),
                        "hint vs {} search at step {}",
                        name,
                        step
                    );
                }
            }
            Op::Stab { x } => {
                let p = Point::new([*x]);
                let got = hint.stab(&p);
                for (name, v) in &variants {
                    prop_assert_eq!(&got, &v.stab(&p), "hint vs {} stab at step {}", name, step);
                }
            }
        }
        if step % 50 == 0 {
            let issues = hint.check_invariants();
            prop_assert!(issues.is_empty(), "hint at step {step}: {issues:?}");
        }
    }
    let issues = hint.check_invariants();
    prop_assert!(issues.is_empty(), "hint at end: {issues:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn hint_matches_every_variant_on_1d_sequences(ops in vec(op_strategy(), 1..250)) {
        run_differential(&ops)?;
    }

    /// Bulk-load freezes everything into the base; the deletes that follow
    /// take the tombstone path, and the queries must reflect them
    /// immediately even though the physical copies linger until rebuild.
    #[test]
    fn tombstoned_base_entries_disappear_from_results(
        n in 20usize..200,
        kill in vec(any::<usize>(), 1..40),
        probes in vec(0.0..DOMAIN, 8..9),
    ) {
        let items: Vec<(Rect<1>, RecordId)> = (0..n)
            .map(|i| {
                let lo = (i as f64 * 37.0) % DOMAIN;
                let len = if i % 7 == 0 { 120.0 } else { 2.0 };
                (Rect::new([lo], [lo + len]), RecordId(i as u64))
            })
            .collect();
        let mut hint = HintIndex::<1>::new();
        hint.bulk_load(items.clone());
        let mut variants = variants_1d();
        for (_, v) in &mut variants {
            v.bulk_load(items.clone());
        }
        let mut live = items;
        for k in kill {
            if live.is_empty() {
                break;
            }
            let (rect, rid) = live.swap_remove(k % live.len());
            prop_assert!(hint.delete(&rect, rid));
            for (_, v) in &mut variants {
                prop_assert!(v.delete(&rect, rid));
            }
        }
        let issues = hint.check_invariants();
        prop_assert!(issues.is_empty(), "{issues:?}");
        for x in probes {
            let p = Point::new([x]);
            let got = hint.stab(&p);
            for (name, v) in &variants {
                prop_assert_eq!(&got, &v.stab(&p), "hint vs {} stab at {}", name, x);
            }
        }
    }

    /// The batch entry points must be observably identical to their serial
    /// loops — on an index holding base, delta, and tombstones at once.
    #[test]
    fn batch_queries_equal_serial_loops(
        ops in vec(op_strategy(), 1..120),
        queries in vec((0.0..DOMAIN, 0.0..60.0f64), 1..12),
    ) {
        let mut hint = HintIndex::<1>::new();
        let mut live: Vec<(Rect<1>, RecordId)> = Vec::new();
        let mut seq = 0u64;
        for op in &ops {
            match op {
                Op::Insert { lo, len } => {
                    let rect = Rect::new([*lo], [*lo + *len]);
                    hint.insert(rect, RecordId(seq));
                    live.push((rect, RecordId(seq)));
                    seq += 1;
                }
                Op::Delete { index } if !live.is_empty() => {
                    let (rect, rid) = live.swap_remove(index % live.len());
                    prop_assert!(hint.delete(&rect, rid));
                }
                _ => {}
            }
        }
        let rects: Vec<Rect<1>> = queries
            .iter()
            .map(|(lo, len)| Rect::new([*lo], [*lo + *len]))
            .collect();
        let points: Vec<Point<1>> = queries.iter().map(|(lo, _)| Point::new([*lo])).collect();
        let serial_search: Vec<Vec<RecordId>> = rects.iter().map(|q| hint.search(q)).collect();
        prop_assert_eq!(hint.search_batch(&rects), serial_search);
        let serial_stab: Vec<Vec<RecordId>> = points.iter().map(|p| hint.stab(p)).collect();
        prop_assert_eq!(hint.stab_batch(&points), serial_stab);
    }

    /// 2-D: the per-dimension hierarchies plus handle intersection must
    /// still agree with every variant, including after deletes.
    #[test]
    fn hint_matches_variants_in_2d(
        items in vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0..80.0f64, 0.0..80.0f64), 1..120),
        kill in vec(any::<usize>(), 0..20),
        windows in vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0..120.0f64, 0.0..120.0f64), 6..7),
    ) {
        let records: Vec<(Rect<2>, RecordId)> = items
            .iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| {
                (Rect::new([*x, *y], [*x + *w, *y + *h]), RecordId(i as u64))
            })
            .collect();
        let mut hint = HintIndex::<2>::new();
        hint.bulk_load(records.clone());
        let mut variants = variants_2d();
        for (_, v) in &mut variants {
            v.bulk_load(records.clone());
        }
        let mut live = records;
        for k in kill {
            if live.is_empty() {
                break;
            }
            let (rect, rid) = live.swap_remove(k % live.len());
            prop_assert!(hint.delete(&rect, rid));
            for (_, v) in &mut variants {
                prop_assert!(v.delete(&rect, rid));
            }
        }
        for (x, y, w, h) in windows {
            let q = Rect::new([x, y], [x + w, y + h]);
            let got = hint.search(&q);
            for (name, v) in &variants {
                prop_assert_eq!(&got, &v.search(&q), "hint vs {} search", name);
            }
            let p = Point::new([x, y]);
            let got = hint.stab(&p);
            for (name, v) in &variants {
                prop_assert_eq!(&got, &v.stab(&p), "hint vs {} stab", name);
            }
        }
    }
}
