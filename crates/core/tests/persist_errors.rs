//! Error-path coverage for persistence: corruption and misuse must surface
//! as errors, never as silently wrong trees.

use segidx_core::{persist, IndexConfig, PagedSearcher, RecordId, Tree};
use segidx_geom::Rect;
use segidx_storage::{
    BufferPool, DiskManager, DiskManagerConfig, PageId, ScriptedFault, SizeClass,
};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("segidx-perr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_tree(n: u64) -> Tree<2> {
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    for i in 0..n {
        let x = ((i * 37) % 3_000) as f64;
        t.insert(Rect::new([x, x / 2.0], [x + 20.0, x / 2.0]), RecordId(i));
    }
    t
}

#[test]
fn load_from_non_meta_page_fails() {
    let disk = DiskManager::create(temp("nonmeta.db")).unwrap();
    let tree = sample_tree(500);
    let meta = persist::save(&tree, &disk).unwrap();
    // Any non-meta page fails the magic check.
    let victim = disk
        .pages()
        .into_iter()
        .map(|(id, _)| id)
        .find(|id| *id != meta)
        .unwrap();
    let err = persist::load::<2>(&disk, victim).unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn load_from_missing_page_fails() {
    let disk = DiskManager::create(temp("missing.db")).unwrap();
    let tree = sample_tree(100);
    let _ = persist::save(&tree, &disk).unwrap();
    let err = persist::load::<2>(&disk, PageId(10_000)).unwrap_err();
    assert!(err.to_string().contains("not found"), "{err}");
}

#[test]
fn corrupted_node_page_fails_load_with_checksum_error() {
    let path = temp("corrupt.db");
    let meta;
    {
        let disk = DiskManager::create(&path).unwrap();
        let tree = sample_tree(2_000);
        meta = persist::save(&tree, &disk).unwrap();
        disk.sync().unwrap();
    }
    // Flip bytes inside the first page's payload (the first node is
    // allocated at slot 0; offset 30 is past its 20-byte header, within the
    // checksummed payload — corrupting zero *padding* would be undetectable
    // by design).
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(30)).unwrap();
    f.write_all(&[0xAB; 16]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let disk = DiskManager::open(&path).unwrap();
    let err = persist::load::<2>(&disk, meta).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt"),
        "unexpected error: {msg}"
    );
    // And the fsck scan pinpoints the page.
    assert!(!disk.verify_all().is_empty());
}

#[test]
fn paged_searcher_surfaces_corruption_at_query_time() {
    let path = temp("query-corrupt.db");
    let meta;
    let victim;
    {
        let disk = DiskManager::create(&path).unwrap();
        let tree = sample_tree(2_000);
        meta = persist::save(&tree, &disk).unwrap();
        disk.sync().unwrap();
        // Pick a 1 KB (leaf) page to corrupt.
        victim = disk
            .pages()
            .into_iter()
            .find(|(id, c)| *id != meta && c.raw() == 0)
            .map(|(id, _)| id)
            .unwrap();
    }
    // Corrupt exactly that page on disk: its slot is unknown here, so hit
    // the whole file region beyond the header of every 1 KB slot.
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let mut off = 512u64;
        while off < len {
            f.seek(SeekFrom::Start(off)).unwrap();
            f.write_all(&[0xCD]).unwrap();
            off += 1024;
        }
        f.sync_all().unwrap();
    }
    let disk = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::new(Arc::clone(&disk));
    // Opening may already fail (if the meta page got hit) — both outcomes
    // are acceptable as long as nothing succeeds silently.
    match PagedSearcher::<2>::open(&pool, meta) {
        Err(_) => {}
        Ok(searcher) => {
            let full = Rect::new([0.0, 0.0], [10_000.0, 10_000.0]);
            let result = searcher.search(&full);
            assert!(result.is_err(), "corrupted pages must fail the search");
        }
    }
    let _ = victim;
}

#[test]
fn failed_sync_surfaces_and_commit_does_not_advance() {
    let path = temp("syncfail.db");
    // Barriers: #0/#1 are create's data+meta-commit pair; #2 is the first
    // explicit sync's data barrier — fail it.
    let fault = Arc::new(ScriptedFault::fail_nth_sync(2));
    let cfg = DiskManagerConfig {
        fault_injector: Some(fault as Arc<_>),
        ..DiskManagerConfig::default()
    };
    let disk = DiskManager::create_with(&path, cfg).unwrap();
    let epoch_before = disk.epoch();
    let tree = sample_tree(300);
    let err = persist::commit(&tree, &disk).unwrap_err();
    assert!(err.is_injected(), "{err}");
    assert_eq!(
        disk.epoch(),
        epoch_before,
        "a failed sync must not claim durability"
    );
    // The fault was one-shot: the retry commits and a clean reopen loads.
    let meta = persist::commit(&tree, &disk).unwrap();
    assert_eq!(disk.epoch(), epoch_before + 1);
    drop(disk);
    let disk = DiskManager::open(&path).unwrap();
    assert_eq!(disk.root(), Some(meta));
    let back: Tree<2> = persist::load(&disk, meta).unwrap();
    assert_eq!(back.entry_count(), tree.entry_count());
}

#[test]
fn buffer_pool_flush_on_drop_reports_write_errors() {
    use segidx_obs::{EventKind, RingBufferSink};

    let path = temp("dropflush.db");
    // Writes: #0 = create's meta image, #1 = the page write-back attempted
    // by the pool's Drop — fail it.
    let fault = Arc::new(ScriptedFault::fail_nth_write(1));
    let cfg = DiskManagerConfig {
        fault_injector: Some(fault as Arc<_>),
        ..DiskManagerConfig::default()
    };
    let disk = Arc::new(DiskManager::create_with(&path, cfg).unwrap());
    let sink = Arc::new(RingBufferSink::new(8));
    {
        let pool = BufferPool::new(Arc::clone(&disk));
        pool.set_sink(Some(sink.clone()));
        let id = pool.allocate(SizeClass::new(0)).unwrap();
        pool.with_page_mut(id, |p| p.set_payload(b"dirty at drop"))
            .unwrap()
            .unwrap();
        assert_eq!(disk.stats().snapshot().write_errors, 0);
        // No flush_all: the pool's Drop must attempt the write-back.
    }
    let after = disk.stats().snapshot();
    assert_eq!(
        after.write_errors, 1,
        "flush-on-drop must count the failed write-back"
    );
    let events = sink.events_of(EventKind::WriteBackError);
    assert_eq!(events.len(), 1, "flush-on-drop must fire an event");
}

#[test]
fn save_load_is_idempotent_across_multiple_trees_in_one_file() {
    let disk = DiskManager::create(temp("multi.db")).unwrap();
    let a = sample_tree(800);
    let mut b: Tree<2> = Tree::new(IndexConfig::rtree());
    for i in 0..300u64 {
        b.insert(
            Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
            RecordId(i),
        );
    }
    let meta_a = persist::save(&a, &disk).unwrap();
    let meta_b = persist::save(&b, &disk).unwrap();
    // Two independent trees coexist in one page file.
    let la: Tree<2> = persist::load(&disk, meta_a).unwrap();
    let lb: Tree<2> = persist::load(&disk, meta_b).unwrap();
    la.assert_invariants();
    lb.assert_invariants();
    assert_eq!(la.len(), 800);
    assert_eq!(lb.len(), 300);
    let q = Rect::new([0.0, 0.0], [5_000.0, 5_000.0]);
    assert_eq!(la.search(&q), a.search(&q));
    assert_eq!(lb.search(&q), b.search(&q));
}
