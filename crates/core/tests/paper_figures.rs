//! The paper's illustrative figures as executable scenarios.
//!
//! Each test builds the small controlled situation the paper draws and
//! asserts that the implementation produces exactly the described behavior.
//! Node capacity is shrunk (4 entries/leaf) so the mechanics fire at toy
//! scale.

use segidx_core::{IndexConfig, RecordId, Tree};
use segidx_geom::Rect;

fn tiny_sr() -> Tree<2> {
    Tree::new(IndexConfig {
        leaf_node_bytes: 160, // capacity 4
        segment: true,
        ..IndexConfig::default()
    })
}

fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
    Rect::new([x0, y], [x1, y])
}

/// Figure 2: a line segment that spans the region of a child node is stored
/// as a spanning index record on the *parent*, not in a leaf.
#[test]
fn figure_2_spanning_segment_stored_on_parent() {
    let mut t = tiny_sr();
    // Two well-separated clusters of short segments force a split into two
    // leaves with disjoint x-ranges (roughly [0,30] and [100,130]).
    for i in 0..4u64 {
        t.insert(
            seg(i as f64 * 10.0, i as f64 * 10.0 + 3.0, 10.0),
            RecordId(i),
        );
    }
    for i in 0..4u64 {
        t.insert(
            seg(100.0 + i as f64 * 10.0, 103.0 + i as f64 * 10.0, 10.0),
            RecordId(10 + i),
        );
    }
    assert!(t.height() >= 2, "split produced an internal node");
    let before_entries = t.entry_count();

    // S1: a segment spanning the first cluster's leaf region entirely.
    t.insert(seg(-5.0, 40.0, 10.0), RecordId(99));
    assert_eq!(
        t.spanning_count(),
        1,
        "S1 is represented as a spanning index record on the parent"
    );
    assert_eq!(t.entry_count(), before_entries + 1, "a single index record");
    // And search finds it alongside the leaf contents.
    let hits = t.search(&seg(0.0, 5.0, 10.0));
    assert!(hits.contains(&RecordId(0)));
    assert!(hits.contains(&RecordId(99)));
    t.assert_invariants();
}

/// Figures 3 and 4 + the §3.1.1 demotion rule, exercised together: with
/// tiny nodes and a mix of short and long segments, every Segment-Index
/// mechanism must fire — cutting (Figure 3), split carry-over with
/// promotion (Figure 4), and demotion/relinking on region expansion — while
/// the structure stays valid and every logical record stays findable.
#[test]
fn figures_3_and_4_mechanics_fire_at_toy_scale() {
    let mut t = tiny_sr();
    let mut expected = 0u64;
    // Deterministic mixed workload: mostly short segments, every 7th one
    // medium (spans leaf regions), every 31st long (crosses parent
    // regions, forcing cuts).
    for i in 0..3_000u64 {
        let x = ((i * 97) % 2_000) as f64;
        let y = ((i * 41) % 500) as f64;
        let len = if i % 31 == 0 {
            700.0
        } else if i % 7 == 0 {
            90.0
        } else {
            3.0
        };
        t.insert(seg(x, x + len, y), RecordId(i));
        expected += 1;
    }
    let stats = t.stats();
    assert!(
        stats.spanning_stores > 0,
        "Figure 2: spanning records stored"
    );
    assert!(stats.cuts > 0, "Figure 3: records cut into portions");
    assert!(stats.remnants_inserted > 0, "Figure 3: remnants reinserted");
    assert!(stats.internal_splits > 0, "Figure 4: non-leaf nodes split");
    assert!(
        stats.demotions + stats.relinks > 0,
        "§3.1.1: expansions demoted or relinked spanning records"
    );
    t.assert_invariants();
    // Every logical record is reported exactly once by a full-domain scan.
    let hits = t.search(&Rect::new([-1_000.0, -1_000.0], [5_000.0, 5_000.0]));
    assert_eq!(hits.len(), expected as usize);
}

/// Figure 4's completion rule in isolation: a spanning record that covers a
/// whole half of a splitting node is *promoted* to the parent (§3.1.2).
#[test]
fn figure_4_promotion_on_root_split() {
    let mut t = tiny_sr();
    let mut id = 0u64;
    let cluster = |t: &mut Tree<2>, k: u64, id: &mut u64| {
        for i in 0..4u64 {
            let x = k as f64 * 20.0 + i as f64 * 4.0;
            t.insert(seg(x, x + 1.0, 10.0), RecordId(*id));
            *id += 1;
        }
    };
    // Two clusters: a two-level tree (root over leaves).
    cluster(&mut t, 0, &mut id);
    cluster(&mut t, 1, &mut id);
    assert_eq!(t.height(), 2, "root with leaf children");

    // S spans the first leaf's region and far beyond: once the root
    // eventually splits, S will cover one of the halves.
    t.insert(seg(-5.0, 95.0, 10.0), RecordId(500));
    assert!(t.spanning_count() >= 1, "S stored as a spanning record");
    assert_eq!(t.stats().promotions, 0, "no internal split yet");

    // Keep adding clusters until the root splits (branch overflow).
    let mut k = 2;
    while t.height() < 3 {
        cluster(&mut t, k, &mut id);
        k += 1;
        assert!(k < 64, "root never split");
    }
    let stats = t.stats();
    assert!(stats.internal_splits >= 1, "the root split");
    assert!(
        stats.promotions >= 1,
        "S promoted to the new root (Figure 4)"
    );
    t.assert_invariants();
    let hits = t.search(&seg(0.0, 2.0, 10.0));
    assert!(hits.contains(&RecordId(500)));
    assert_eq!(t.search(&seg(-100.0, 10_000.0, 10.0)).len(), t.len());
}
