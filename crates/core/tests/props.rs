//! Model-based property tests: random operation sequences applied to every
//! index configuration, checked against a flat-vector model after each
//! batch, with structural invariants verified throughout.

use proptest::collection::vec;
use proptest::prelude::*;
use segidx_core::{build_skeleton, CoalesceConfig, IndexConfig, RecordId, SkeletonSpec, Tree};
use segidx_geom::{Point, Rect};

#[derive(Clone, Debug)]
enum Op {
    Insert { rect: Rect<2>, id: u64 },
    Delete { index: usize },
    Search { query: Rect<2> },
    Stab { x: f64, y: f64 },
}

fn rect_strategy() -> impl Strategy<Value = Rect<2>> {
    // Mixed geometry: points, horizontal segments (short and very long),
    // and boxes — the paper's full menagerie.
    prop_oneof![
        // points
        (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Rect::new([x, y], [x, y])),
        // horizontal segments, skewed lengths
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..400.0f64)
            .prop_map(|(x, y, len)| Rect::new([x, y], [x + len, y])),
        // boxes
        (0.0..900.0f64, 0.0..900.0f64, 0.0..100.0f64, 0.0..100.0f64)
            .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h])),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (rect_strategy(), any::<u64>()).prop_map(|(rect, id)| Op::Insert { rect, id }),
        1 => any::<usize>().prop_map(|index| Op::Delete { index }),
        2 => rect_strategy().prop_map(|query| Op::Search { query }),
        1 => (0.0..1200.0f64, 0.0..1200.0f64).prop_map(|(x, y)| Op::Stab { x, y }),
    ]
}

fn configs() -> Vec<(&'static str, IndexConfig)> {
    let small = IndexConfig {
        // Small nodes so modest op counts still exercise splits,
        // promotions, and coalescing.
        leaf_node_bytes: 320,
        ..IndexConfig::default()
    };
    vec![
        ("rtree", small.clone()),
        (
            "srtree",
            IndexConfig {
                segment: true,
                ..small.clone()
            },
        ),
        (
            "rtree-linear",
            IndexConfig {
                split: segidx_core::SplitAlgorithm::Linear,
                ..small.clone()
            },
        ),
        (
            "rstar",
            IndexConfig {
                split: segidx_core::SplitAlgorithm::RStar,
                choose_subtree_overlap: true,
                forced_reinsert: Some(0.3),
                ..small.clone()
            },
        ),
        (
            "srtree-coalesce",
            IndexConfig {
                segment: true,
                coalesce: Some(CoalesceConfig {
                    check_interval: 25,
                    lfm_candidates: 5,
                }),
                ..small
            },
        ),
    ]
}

fn run_ops(name: &str, mut tree: Tree<2>, ops: &[Op]) -> Result<(), TestCaseError> {
    // Model: live (rect, id) pairs. Ids are made unique by sequence number
    // so deletes are unambiguous.
    let mut model: Vec<(Rect<2>, RecordId)> = Vec::new();
    let mut seq = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert { rect, id } => {
                let rid = RecordId(id.wrapping_mul(1_000_003).wrapping_add(seq));
                seq += 1;
                if model.iter().any(|(_, existing)| *existing == rid) {
                    continue;
                }
                tree.insert(*rect, rid);
                model.push((*rect, rid));
            }
            Op::Delete { index } => {
                if model.is_empty() {
                    continue;
                }
                let (rect, rid) = model.swap_remove(index % model.len());
                prop_assert!(tree.delete(&rect, rid), "{name}: delete {rid:?} at {step}");
            }
            Op::Search { query } => {
                let mut expected: Vec<RecordId> = model
                    .iter()
                    .filter(|(r, _)| r.intersects(query))
                    .map(|(_, id)| *id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(
                    tree.search(query),
                    expected,
                    "{}: search mismatch at step {}",
                    name,
                    step
                );
            }
            Op::Stab { x, y } => {
                let p = Point::new([*x, *y]);
                let mut expected: Vec<RecordId> = model
                    .iter()
                    .filter(|(r, _)| r.contains_point(&p))
                    .map(|(_, id)| *id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(
                    tree.stab(&p),
                    expected,
                    "{}: stab mismatch at step {}",
                    name,
                    step
                );
            }
        }
        if step % 64 == 0 {
            let issues = tree.check_invariants();
            prop_assert!(issues.is_empty(), "{name} at step {step}: {issues:?}");
        }
    }
    prop_assert_eq!(tree.len(), model.len(), "{}: len mismatch", name);
    let issues = tree.check_invariants();
    prop_assert!(issues.is_empty(), "{name} at end: {issues:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_ops_match_model(ops in vec(op_strategy(), 1..300)) {
        for (name, config) in configs() {
            run_ops(name, Tree::new(config), &ops)?;
        }
    }

    #[test]
    fn random_ops_on_skeleton_match_model(ops in vec(op_strategy(), 1..250)) {
        let domain = Rect::new([0.0, 0.0], [1400.0, 1400.0]);
        let config = IndexConfig {
            leaf_node_bytes: 320,
            segment: true,
            coalesce: Some(CoalesceConfig {
                check_interval: 40,
                lfm_candidates: 6,
            }),
            ..IndexConfig::default()
        };
        config.validate().unwrap();
        let spec = SkeletonSpec::uniform(domain, 200);
        run_ops("skeleton-sr", build_skeleton(config, &spec), &ops)?;
    }

    #[test]
    fn bulk_load_matches_model(records in vec(rect_strategy(), 1..250)) {
        // STR bulk load over every configuration must agree with the
        // brute-force model on search, stab, and structural invariants —
        // pins the SoA rewrite of the packing path.
        let items: Vec<(Rect<2>, RecordId)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, RecordId(i as u64)))
            .collect();
        let queries = [
            Rect::new([0.0, 0.0], [1400.0, 1400.0]),
            Rect::new([200.0, 100.0], [450.0, 350.0]),
            Rect::new([990.0, 990.0], [1000.0, 1000.0]),
        ];
        for (name, config) in configs() {
            let tree = segidx_core::bulk::bulk_load(config, items.clone());
            prop_assert_eq!(tree.len(), items.len(), "{}: len", name);
            let issues = tree.check_invariants();
            prop_assert!(issues.is_empty(), "{name}: {issues:?}");
            for q in &queries {
                let mut expected: Vec<RecordId> = items
                    .iter()
                    .filter(|(r, _)| r.intersects(q))
                    .map(|(_, id)| *id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(tree.search(q), expected, "{}: search {:?}", name, q);
            }
            let p = Point::new([500.0, 500.0]);
            let mut expected: Vec<RecordId> = items
                .iter()
                .filter(|(r, _)| r.contains_point(&p))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(tree.stab(&p), expected, "{}: stab", name);
        }
    }

    #[test]
    fn batch_matches_serial(
        records in vec(rect_strategy(), 1..200),
        queries in vec(rect_strategy(), 1..24),
        probes in vec((0.0..1200.0f64, 0.0..1200.0f64), 1..24),
    ) {
        // PR 1's guarantee, re-pinned on the SoA layout: batched (and
        // threaded) execution returns exactly the serial results, in
        // input order, for every configuration.
        let points: Vec<Point<2>> = probes.iter().map(|&(x, y)| Point::new([x, y])).collect();
        for (name, config) in configs() {
            let mut tree: Tree<2> = Tree::new(config);
            for (i, r) in records.iter().enumerate() {
                tree.insert(*r, RecordId(i as u64));
            }
            let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| tree.search(q)).collect();
            prop_assert_eq!(&tree.search_batch(&queries), &serial, "{}: search_batch", name);
            prop_assert_eq!(
                &tree.search_batch_threads(&queries, 3),
                &serial,
                "{}: search_batch_threads",
                name
            );
            let stab_serial: Vec<Vec<RecordId>> = points.iter().map(|p| tree.stab(p)).collect();
            prop_assert_eq!(&tree.stab_batch(&points), &stab_serial, "{}: stab_batch", name);
            prop_assert_eq!(
                &tree.stab_batch_threads(&points, 3),
                &stab_serial,
                "{}: stab_batch_threads",
                name
            );
        }
    }

    #[test]
    fn join_matches_model(
        left in vec(rect_strategy(), 1..80),
        right in vec(rect_strategy(), 1..80),
    ) {
        let build = |records: &[Rect<2>], segment: bool| {
            let mut t: Tree<2> = Tree::new(IndexConfig {
                leaf_node_bytes: 320,
                segment,
                ..IndexConfig::default()
            });
            for (i, r) in records.iter().enumerate() {
                t.insert(*r, RecordId(i as u64));
            }
            t
        };
        let ta = build(&left, true);
        let tb = build(&right, false);
        let mut expected = Vec::new();
        for (i, a) in left.iter().enumerate() {
            for (j, b) in right.iter().enumerate() {
                if a.intersects(b) {
                    expected.push((RecordId(i as u64), RecordId(j as u64)));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(ta.join(&tb), expected);
    }

    #[test]
    fn nearest_matches_model(
        records in vec((rect_strategy(), any::<u64>()), 1..150),
        probe in (0.0..1500.0f64, 0.0..1500.0f64),
        k in 1usize..20,
    ) {
        let mut tree: Tree<2> = Tree::new(IndexConfig {
            leaf_node_bytes: 320,
            segment: true,
            ..IndexConfig::default()
        });
        let mut model: Vec<(Rect<2>, RecordId)> = Vec::new();
        for (i, (rect, _)) in records.iter().enumerate() {
            let rid = RecordId(i as u64);
            tree.insert(*rect, rid);
            model.push((*rect, rid));
        }
        let p = Point::new([probe.0, probe.1]);
        let got = tree.nearest(&p, k);
        let mut dists: Vec<f64> = model.iter().map(|(r, _)| r.min_dist(&p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dists.truncate(k);
        prop_assert_eq!(got.len(), dists.len().min(model.len()));
        for (n, d) in got.iter().zip(dists.iter()) {
            prop_assert!((n.distance - d).abs() < 1e-9,
                "rank distance mismatch: {} vs {}", n.distance, d);
        }
    }
}
