//! Coverage for the smaller public APIs: entry iteration, level profiles,
//! region accessors, and the variant wrappers' engine access.

use segidx_core::{IndexConfig, IntervalIndex, RTree, RecordId, SRTree, Tree};
use segidx_geom::Rect;

fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
    Rect::new([x0, y], [x1, y])
}

#[test]
fn iter_entries_covers_every_portion() {
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    for i in 0..900u64 {
        let x = (i % 30) as f64 * 10.0;
        let y = (i / 30) as f64 * 10.0;
        let len = if i % 6 == 0 { 250.0 } else { 4.0 };
        t.insert(seg(x, x + len, y), RecordId(i));
    }
    let entries: Vec<_> = t.iter_entries().collect();
    assert_eq!(entries.len(), t.entry_count());
    // Every logical record appears at least once.
    let mut ids: Vec<u64> = entries.iter().map(|(_, id)| id.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), t.len());
    // Cut records appear more than once iff cuts happened.
    if t.stats().cuts > 0 {
        assert!(entries.len() > t.len());
    }
}

#[test]
fn level_profile_sums_to_node_count() {
    let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
    for i in 0..2_000u64 {
        t.insert(seg(i as f64, i as f64 + 1.0, (i % 50) as f64), RecordId(i));
    }
    let profile = t.level_profile();
    assert_eq!(profile.iter().sum::<usize>(), t.node_count());
    assert_eq!(profile.len(), t.height() as usize);
    assert_eq!(*profile.last().unwrap(), 1, "one root");
    // Monotone non-increasing from leaves to root for a packed-ish tree.
    assert!(profile[0] > *profile.last().unwrap());
}

#[test]
fn root_region_tracks_contents() {
    let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
    assert!(t.root_region().is_none(), "empty tree has no region");
    t.insert(seg(10.0, 20.0, 5.0), RecordId(1));
    assert_eq!(t.root_region(), Some(seg(10.0, 20.0, 5.0)));
    t.insert(seg(100.0, 250.0, 80.0), RecordId(2));
    let region = t.root_region().unwrap();
    assert!(region.contains_rect(&seg(10.0, 20.0, 5.0)));
    assert!(region.contains_rect(&seg(100.0, 250.0, 80.0)));
}

#[test]
fn wrapper_engine_access_round_trips() {
    let mut r: RTree<2> = RTree::new();
    r.insert(seg(0.0, 1.0, 0.0), RecordId(1));
    // Engine-level APIs reachable through the wrapper.
    assert_eq!(r.tree().len(), 1);
    r.tree_mut().insert(seg(2.0, 3.0, 0.0), RecordId(2));
    assert_eq!(IntervalIndex::len(&r), 2);

    let mut sr: SRTree<2> = SRTree::with_config(IndexConfig {
        leaf_node_bytes: 512,
        ..IndexConfig::default()
    });
    assert!(sr.tree().config().segment, "with_config forces segment on");
    sr.insert(seg(0.0, 5.0, 0.0), RecordId(9));
    assert_eq!(sr.search(&seg(0.0, 10.0, 0.0)), vec![RecordId(9)]);
}

#[test]
fn spanning_count_tracks_live_records() {
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    for i in 0..800u64 {
        let x = (i % 40) as f64 * 10.0;
        let y = (i / 40) as f64 * 10.0;
        t.insert(seg(x, x + 5.0, y), RecordId(i));
    }
    assert_eq!(t.spanning_count(), 0, "short segments: no spanning records");
    let long = seg(0.0, 400.0, 100.0);
    t.insert(long, RecordId(9_999));
    let live = t.spanning_count();
    assert!(live >= 1);
    // Leaf entries + spanning records = total physical entries.
    assert_eq!(
        t.entry_count(),
        t.iter_entries().count(),
        "iterator agrees with the counter"
    );
    // Deleting the long record removes its spanning portions.
    assert!(t.delete(&long, RecordId(9_999)));
    assert_eq!(t.spanning_count(), 0);
}
