//! End-to-end telemetry tests: latency histograms fill for every timed
//! operation, structural events reach an installed sink, and the disabled
//! default records nothing.

use segidx_core::{
    bulk::bulk_load_with_telemetry, IndexConfig, IntervalIndex, RecordId, SRTree, SkeletonSRTree,
    Tree, TreeTelemetry,
};
use segidx_geom::{Point, Rect};
use segidx_obs::{EventKind, RingBufferSink};
use std::sync::Arc;

fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
    Rect::new([x0, y], [x1, y])
}

fn grow(tree: &mut Tree<2>, n: u64) {
    for i in 0..n {
        let x = (i % 50) as f64 * 10.0;
        let y = (i / 50) as f64 * 10.0;
        let len = if i % 11 == 0 { 300.0 } else { 4.0 };
        tree.insert(seg(x, x + len, y), RecordId(i));
    }
}

#[test]
fn histograms_fill_for_every_operation() {
    let telemetry = Arc::new(TreeTelemetry::new());
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    t.set_telemetry(Some(Arc::clone(&telemetry)));
    grow(&mut t, 800);
    t.search(&Rect::new([0.0, 0.0], [100.0, 100.0]));
    t.stab(&Point::new([50.0, 50.0]));
    t.nearest(&Point::new([250.0, 80.0]), 3);
    t.delete(&seg(0.0, 4.0, 0.0), RecordId(0));

    let snap = telemetry.snapshot();
    assert_eq!(snap.insert.count, 800);
    assert_eq!(snap.search.count, 1);
    assert_eq!(snap.stab.count, 1);
    assert_eq!(snap.nearest.count, 1);
    assert_eq!(snap.delete.count, 1);
    assert!(snap.insert.p99().is_some());
    assert!(snap.insert.max >= snap.insert.p50().unwrap_or(0));
}

#[test]
fn structural_events_reach_the_sink() {
    let sink = Arc::new(RingBufferSink::new(1 << 16));
    let telemetry = Arc::new(TreeTelemetry::with_sink(sink.clone()));
    // Tiny nodes with mixed segment lengths: every segment-index mechanism
    // fires (same workload as the paper-figures tests).
    let mut t: Tree<2> = Tree::new(IndexConfig {
        leaf_node_bytes: 160,
        segment: true,
        ..IndexConfig::default()
    });
    t.set_telemetry(Some(telemetry));
    for i in 0..3_000u64 {
        let x = ((i * 97) % 2_000) as f64;
        let y = ((i * 41) % 500) as f64;
        let len = if i % 31 == 0 {
            700.0
        } else if i % 7 == 0 {
            90.0
        } else {
            3.0
        };
        t.insert(seg(x, x + len, y), RecordId(i));
    }

    let stats = t.stats();
    // Event counts mirror the stats counters exactly (nothing dropped with
    // a large ring).
    assert_eq!(sink.dropped(), 0);
    assert_eq!(
        sink.events_of(EventKind::LeafSplit).len() as u64,
        stats.leaf_splits
    );
    assert_eq!(sink.events_of(EventKind::Cut).len() as u64, stats.cuts);
    assert_eq!(
        sink.events_of(EventKind::Promotion).len() as u64,
        stats.promotions
    );
    assert_eq!(
        sink.events_of(EventKind::Demotion).len() as u64,
        stats.demotions
    );
    assert!(stats.leaf_splits > 0, "workload must split leaves");
    assert!(stats.cuts > 0, "workload must cut long segments");
    // Split events carry the level of the node that split.
    assert!(sink
        .events_of(EventKind::LeafSplit)
        .iter()
        .all(|e| e.level == 0));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    grow(&mut t, 500);
    t.search(&Rect::new([0.0, 0.0], [100.0, 100.0]));
    assert!(t.telemetry().is_none());
    // Stats still work as before.
    assert_eq!(t.stats().searches, 1);
}

#[test]
fn trait_objects_install_and_expose_telemetry() {
    let mut index: Box<dyn IntervalIndex<2>> = Box::new(SRTree::new());
    let telemetry = Arc::new(TreeTelemetry::new());
    index.set_telemetry(Some(Arc::clone(&telemetry)));
    index.insert(seg(0.0, 5.0, 1.0), RecordId(1));
    index.search(&seg(0.0, 10.0, 1.0));
    let snap = telemetry.snapshot();
    assert_eq!(snap.insert.count, 1);
    assert_eq!(snap.search.count, 1);
    assert!(index.telemetry().is_some());
}

#[test]
fn skeleton_carries_telemetry_through_the_buffering_phase() {
    let domain = Rect::new([0.0, 0.0], [1_000.0, 1_000.0]);
    let mut s = SkeletonSRTree::<2>::with_prediction(domain, 2_000, 200);
    let telemetry = Arc::new(TreeTelemetry::new());
    // Install while still buffering: inserts into the buffer are not index
    // operations, so nothing records yet.
    s.set_telemetry(Some(Arc::clone(&telemetry)));
    for i in 0..150u64 {
        s.insert(
            seg(
                (i * 6) as f64 % 900.0,
                (i * 6) as f64 % 900.0 + 5.0,
                i as f64,
            ),
            RecordId(i),
        );
    }
    assert!(s.tree().is_none(), "still buffering");
    assert!(s.telemetry().is_some(), "telemetry held while buffering");
    assert_eq!(telemetry.snapshot().insert.count, 0);
    // Construction replays the buffer through real inserts.
    s.finalize();
    assert!(s.tree().is_some());
    assert_eq!(telemetry.snapshot().insert.count, 150);
}

#[test]
fn batch_queries_record_per_query_latency() {
    let telemetry = Arc::new(TreeTelemetry::new());
    let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
    t.set_telemetry(Some(Arc::clone(&telemetry)));
    grow(&mut t, 1_000);
    let before = telemetry.snapshot().search.count;
    let queries: Vec<Rect<2>> = (0..64)
        .map(|i| {
            let x = (i * 7) as f64;
            Rect::new([x, 0.0], [x + 40.0, 200.0])
        })
        .collect();
    let results = t.search_batch(&queries);
    assert_eq!(results.len(), 64);
    let after = telemetry.snapshot().search.count;
    assert_eq!(after - before, 64, "one latency observation per query");
}

#[test]
fn bulk_load_records_build_time() {
    let telemetry = Arc::new(TreeTelemetry::new());
    let items: Vec<(Rect<2>, RecordId)> = (0..3_000u64)
        .map(|i| {
            (
                seg((i % 60) as f64 * 8.0, (i % 60) as f64 * 8.0 + 3.0, i as f64),
                RecordId(i),
            )
        })
        .collect();
    let t = bulk_load_with_telemetry(IndexConfig::rtree(), items, Arc::clone(&telemetry));
    assert_eq!(t.len(), 3_000);
    let snap = telemetry.snapshot();
    assert_eq!(snap.bulk_load.count, 1);
    assert!(t.telemetry().is_some(), "telemetry installed on the result");
}
