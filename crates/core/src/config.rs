//! Index configuration.

use serde::{Deserialize, Serialize};

/// Which node-splitting algorithm to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum SplitAlgorithm {
    /// Guttman's quadratic-cost split: PickSeeds maximizes the dead area of
    /// the seed pair, PickNext maximizes preference difference. The classic
    /// default and the paper's setting.
    #[default]
    Quadratic,
    /// Guttman's linear-cost split: seeds chosen by greatest normalized
    /// separation, remaining entries assigned by least enlargement.
    Linear,
    /// The R\*-Tree topological split (Beckmann et al. 1990, cited by the
    /// paper as \[BECK90\]): choose the split axis by minimum margin sum,
    /// then the distribution by minimum overlap. Provided as a
    /// stronger-baseline ablation beyond the paper's R-Tree.
    RStar,
}

/// Node-coalescing parameters for Skeleton indexes (paper §4, §5).
///
/// After every `check_interval` insertions, the `lfm_candidates`
/// least-frequently-modified leaf nodes are examined and merged with a
/// spatially adjacent sibling when the combined contents fit in one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CoalesceConfig {
    /// Trigger a coalescing pass after this many insertions
    /// (the paper uses 1,000).
    pub check_interval: u64,
    /// Restrict candidates to this many least-frequently-modified nodes
    /// (the paper uses 10).
    pub lfm_candidates: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self {
            check_interval: 1_000,
            lfm_candidates: 10,
        }
    }
}

/// Configuration shared by all four index variants.
///
/// The defaults reproduce the paper's experimental setup (§5): 1 KB leaf
/// nodes whose size doubles at each higher level, 40-byte entries, and — for
/// segment (SR) variants — 2/3 of non-leaf entries reserved for branches.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Leaf node size in bytes (paper: 1 KB).
    pub leaf_node_bytes: usize,
    /// Whether node size doubles at each successively higher level
    /// (paper §2.1.2). When `false` every level uses `leaf_node_bytes`.
    pub vary_node_size: bool,
    /// Cap on the size-doubling ladder: levels at or above this use the same
    /// node size. Ten doublings of a 1 KB leaf = 1 MB, far beyond any
    /// realistic root.
    pub max_size_doublings: u8,
    /// Bytes per index entry used to derive node capacity from node size.
    /// 40 bytes = a 2-D rectangle (four `f64`) plus an 8-byte id.
    pub entry_bytes: usize,
    /// Minimum fill factor applied to node splits, as a fraction of the
    /// relevant capacity (Guttman's `m ≤ M/2`; 0.4 is the common choice).
    pub min_fill_ratio: f64,
    /// Fraction of a non-leaf node's entries reserved for branches in
    /// segment (SR) mode; the remainder holds spanning index records.
    /// The paper's experiments use 2/3 (§5).
    pub branch_fraction: f64,
    /// Enables the Segment Index extensions (spanning records, cutting,
    /// promotion/demotion) — i.e. SR-Tree rather than R-Tree behavior.
    pub segment: bool,
    /// Node-splitting algorithm.
    pub split: SplitAlgorithm,
    /// Node coalescing (Skeleton indexes only; `None` disables).
    pub coalesce: Option<CoalesceConfig>,
    /// R\*-style ChooseSubtree: at the level directly above the leaves,
    /// pick the branch with least *overlap* enlargement instead of least
    /// area enlargement.
    pub choose_subtree_overlap: bool,
    /// R\*-style forced reinsertion: on the first leaf overflow per
    /// mutating operation, reinsert this fraction of the leaf's entries
    /// (those farthest from the node center) instead of splitting.
    /// `None` disables (the paper's setting).
    pub forced_reinsert: Option<f64>,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            leaf_node_bytes: 1024,
            vary_node_size: true,
            max_size_doublings: 10,
            entry_bytes: 40,
            min_fill_ratio: 0.4,
            branch_fraction: 2.0 / 3.0,
            segment: false,
            split: SplitAlgorithm::Quadratic,
            coalesce: None,
            choose_subtree_overlap: false,
            forced_reinsert: None,
        }
    }
}

impl IndexConfig {
    /// The paper's R-Tree configuration.
    pub fn rtree() -> Self {
        Self::default()
    }

    /// The paper's SR-Tree configuration (segment extensions on, 2/3 branch
    /// reservation).
    pub fn srtree() -> Self {
        Self {
            segment: true,
            ..Self::default()
        }
    }

    /// An R\*-Tree configuration (Beckmann et al. 1990): topological split,
    /// overlap-aware ChooseSubtree, 30% forced reinsertion. A stronger
    /// modern baseline than the paper's R-Tree, provided for ablations.
    pub fn rstar() -> Self {
        Self {
            split: SplitAlgorithm::RStar,
            choose_subtree_overlap: true,
            forced_reinsert: Some(0.3),
            ..Self::default()
        }
    }

    /// Node size in bytes at `level` (level 0 = leaves).
    pub fn node_bytes(&self, level: u32) -> usize {
        if self.vary_node_size {
            let doublings = level.min(u32::from(self.max_size_doublings));
            self.leaf_node_bytes << doublings
        } else {
            self.leaf_node_bytes
        }
    }

    /// Total entry capacity of a node at `level`.
    pub fn capacity(&self, level: u32) -> usize {
        (self.node_bytes(level) / self.entry_bytes).max(4)
    }

    /// Maximum number of branch entries at `level` (non-leaf). In segment
    /// mode this is `branch_fraction × capacity`, reserving the remainder
    /// for spanning index records; otherwise the full capacity.
    pub fn branch_capacity(&self, level: u32) -> usize {
        let cap = self.capacity(level);
        if self.segment {
            ((cap as f64 * self.branch_fraction).floor() as usize).clamp(4, cap)
        } else {
            cap
        }
    }

    /// Minimum fill for split distribution at `level`, relative to the
    /// total node capacity (Guttman's `m`). The `leaf` flag is accepted for
    /// future tuning but both node kinds use the same rule — the
    /// `branch_fraction` reservation affects Skeleton fanout sizing only,
    /// so an SR-Tree with no spanning records splits identically to an
    /// R-Tree (paper §5: "both of the non-Skeleton Indexes had identical
    /// performance").
    pub fn min_fill(&self, level: u32, _leaf: bool) -> usize {
        let cap = self.capacity(level);
        (((cap as f64) * self.min_fill_ratio).floor() as usize).max(2)
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.leaf_node_bytes < 4 * self.entry_bytes {
            return Err(format!(
                "leaf node of {} bytes holds fewer than 4 entries of {} bytes",
                self.leaf_node_bytes, self.entry_bytes
            ));
        }
        if self.entry_bytes == 0 {
            return Err("entry_bytes must be positive".into());
        }
        if !(0.0..=0.5).contains(&self.min_fill_ratio) {
            return Err(format!(
                "min_fill_ratio {} outside [0, 0.5]",
                self.min_fill_ratio
            ));
        }
        if !(0.0..=1.0).contains(&self.branch_fraction) {
            return Err(format!(
                "branch_fraction {} outside [0, 1]",
                self.branch_fraction
            ));
        }
        if let Some(c) = &self.coalesce {
            if c.check_interval == 0 || c.lfm_candidates == 0 {
                return Err("coalesce parameters must be positive".into());
            }
        }
        if let Some(p) = self.forced_reinsert {
            if !(0.0..=0.45).contains(&p) || p == 0.0 {
                return Err(format!("forced_reinsert fraction {p} outside (0, 0.45]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = IndexConfig::rtree();
        assert_eq!(c.node_bytes(0), 1024);
        assert_eq!(c.node_bytes(1), 2048);
        assert_eq!(c.node_bytes(3), 8192);
        assert_eq!(c.capacity(0), 25);
        // Non-segment: branches get the whole node.
        assert_eq!(c.branch_capacity(1), c.capacity(1));
        c.validate().unwrap();
    }

    #[test]
    fn srtree_reserves_two_thirds() {
        let c = IndexConfig::srtree();
        let cap = c.capacity(1); // 2048/40 = 51
        assert_eq!(cap, 51);
        assert_eq!(c.branch_capacity(1), 34); // floor(51 * 2/3)
        assert!(c.segment);
        c.validate().unwrap();
    }

    #[test]
    fn size_doubling_caps() {
        let c = IndexConfig {
            max_size_doublings: 2,
            ..IndexConfig::default()
        };
        assert_eq!(c.node_bytes(2), 4096);
        assert_eq!(c.node_bytes(9), 4096);
    }

    #[test]
    fn fixed_node_size() {
        let c = IndexConfig {
            vary_node_size: false,
            ..IndexConfig::default()
        };
        assert_eq!(c.node_bytes(5), 1024);
    }

    #[test]
    fn min_fill_at_least_two() {
        let c = IndexConfig {
            min_fill_ratio: 0.0,
            ..IndexConfig::default()
        };
        assert_eq!(c.min_fill(0, true), 2);
    }

    #[test]
    fn rstar_preset() {
        let c = IndexConfig::rstar();
        c.validate().unwrap();
        assert_eq!(c.split, SplitAlgorithm::RStar);
        assert!(c.choose_subtree_overlap);
        assert_eq!(c.forced_reinsert, Some(0.3));
        assert!(!c.segment);
    }

    #[test]
    fn forced_reinsert_fraction_validated() {
        let c = IndexConfig {
            forced_reinsert: Some(0.6),
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            forced_reinsert: Some(0.0),
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = IndexConfig {
            leaf_node_bytes: 64,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());

        let c = IndexConfig {
            min_fill_ratio: 0.9,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());

        let c = IndexConfig {
            branch_fraction: 1.5,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());

        let c = IndexConfig {
            coalesce: Some(CoalesceConfig {
                check_interval: 0,
                lfm_candidates: 10,
            }),
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
