//! Skeleton indexes: adaptable pre-constructed Segment Indexes (paper §4).
//!
//! A Skeleton index pre-partitions the domain into a regular grid of empty
//! nodes from an estimate of the input size and distribution, then adapts to
//! the actual data through conventional node splitting plus coalescing of
//! sparse adjacent nodes. When the distribution is unknown,
//! [`DistributionPredictor`] buffers the first `T` tuples and derives the
//! histograms from them.

mod build;
mod coalesce;
mod histogram;
mod predict;
mod rebuild;

pub use build::{build_skeleton, SkeletonSpec};
pub use histogram::Histogram;
pub use predict::DistributionPredictor;
