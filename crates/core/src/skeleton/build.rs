//! Top-down construction of Skeleton indexes (paper §4).
//!
//! A Skeleton index pre-partitions the entire domain into a grid of empty
//! nodes before any data arrives. The number of levels and the number of
//! nodes at each level follow the paper's sizing loop:
//!
//! ```text
//! n = number_of_tuples; level = 0;
//! while (n > 1) {
//!     number_of_nodes[level] = ceil( D-th-root( ceil(n / fanout[level]) ) )^D;
//!     n = number_of_nodes[level];
//!     level = level + 1;
//! }
//! ```
//!
//! where `fanout[level]` reflects the node size at that level and — in
//! segment mode — the fraction of entries reserved for branches. Node counts
//! are rounded up so each level forms a `side^D` grid. Partition values come
//! from per-dimension histograms; higher levels group contiguous blocks of
//! the level below, so tiles nest exactly.

use crate::config::IndexConfig;
use crate::entry::Branch;
use crate::id::NodeId;
use crate::node::{Arena, Node};
use crate::skeleton::histogram::Histogram;
use crate::tree::Tree;
use segidx_geom::{Interval, Rect};

/// Everything needed to pre-construct a Skeleton index.
#[derive(Clone, Debug)]
pub struct SkeletonSpec<const D: usize> {
    /// The full domain of the data (the paper uses `[0, 100000]²`).
    pub domain: Rect<D>,
    /// Estimated number of tuples to be inserted.
    pub expected_tuples: usize,
    /// Per-dimension data distribution estimates. Each histogram is
    /// resampled ([`Histogram::rebin`]) to the leaf grid's partition count,
    /// so any bin count works.
    pub histograms: Vec<Histogram>,
}

impl<const D: usize> SkeletonSpec<D> {
    /// A spec assuming uniformly distributed data — the paper's fallback
    /// when the input distribution is unknown (§4).
    pub fn uniform(domain: Rect<D>, expected_tuples: usize) -> Self {
        let histograms = (0..D)
            .map(|d| Histogram::uniform(domain.interval(d), 16))
            .collect();
        Self {
            domain,
            expected_tuples,
            histograms,
        }
    }
}

/// The paper's level-sizing loop: grid side length per level, from leaves
/// up. An empty result means a single leaf suffices.
pub(crate) fn level_sides<const D: usize>(config: &IndexConfig, expected: usize) -> Vec<usize> {
    let mut sides = Vec::new();
    let mut n = expected.max(1);
    let mut level: u32 = 0;
    while n > 1 {
        let fanout = if level == 0 {
            config.capacity(0)
        } else {
            config.branch_capacity(level)
        };
        let nodes = n.div_ceil(fanout);
        let side = nth_root_ceil(nodes, D);
        if side <= 1 {
            break; // this level collapses to a single node: the root
        }
        sides.push(side);
        n = side.pow(D as u32);
        level += 1;
    }
    sides
}

/// `ceil(n^(1/d))`, exact for the integer sizes involved.
fn nth_root_ceil(n: usize, d: usize) -> usize {
    if n <= 1 {
        return n;
    }
    let mut r = (n as f64).powf(1.0 / d as f64).ceil() as usize;
    // Float imprecision can land one off in either direction.
    while r > 1 && (r - 1).pow(d as u32) >= n {
        r -= 1;
    }
    while r.pow(d as u32) < n {
        r += 1;
    }
    r
}

/// Builds the pre-partitioned (empty) Skeleton tree for `spec`.
///
/// # Panics
/// Panics if `spec.histograms.len() != D` or the configuration is invalid.
pub fn build_skeleton<const D: usize>(config: IndexConfig, spec: &SkeletonSpec<D>) -> Tree<D> {
    assert_eq!(spec.histograms.len(), D, "need one histogram per dimension");
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid index config: {e}"));

    let sides = level_sides::<D>(&config, spec.expected_tuples);
    if sides.is_empty() {
        return Tree::new(config);
    }

    let mut arena: Arena<D> = Arena::new();

    // Leaf grid: cut each dimension per its (resampled) histogram.
    let leaf_side = sides[0];
    let cuts: Vec<Histogram> = (0..D)
        .map(|d| {
            let h = spec.histograms[d].rebin(leaf_side);
            // Pin the histogram to the requested domain.
            let mut b = h.boundaries().to_vec();
            b[0] = spec.domain.lo(d);
            *b.last_mut().unwrap() = spec.domain.hi(d);
            for i in 1..b.len() {
                if b[i] < b[i - 1] {
                    b[i] = b[i - 1];
                }
            }
            Histogram::from_boundaries(b)
        })
        .collect();

    // `current[i]` = (grid coordinate, node id, tile) at the level being
    // grouped; starts with the leaves.
    let mut current: Vec<([usize; D], NodeId, Rect<D>)> = Vec::new();
    for coord in grid_coords::<D>(leaf_side) {
        let tile = tile_of(&cuts, &coord);
        let id = arena.alloc(Node::leaf());
        current.push((coord, id, tile));
    }

    // Group contiguous blocks level by level; the root is a 1-sided "grid".
    let mut side_below = leaf_side;
    for level in 1..=sides.len() as u32 {
        let side = sides.get(level as usize).copied().unwrap_or(1);
        let chunk_of = |c: usize| -> usize { c * side / side_below };
        let mut parents: Vec<([usize; D], NodeId, Rect<D>)> = Vec::new();
        for pcoord in grid_coords::<D>(side) {
            let node_id = arena.alloc(Node::internal(level));
            parents.push((pcoord, node_id, spec.domain));
        }
        for (ccoord, cid, ctile) in &current {
            let mut pcoord = [0usize; D];
            for d in 0..D {
                pcoord[d] = chunk_of(ccoord[d]).min(side - 1);
            }
            let pidx = grid_index::<D>(&pcoord, side);
            let (_, pid, _) = parents[pidx];
            arena.get_mut(pid).branches_mut().push(Branch {
                rect: *ctile,
                child: *cid,
            });
            arena.get_mut(*cid).parent = Some(pid);
        }
        // Parent tiles = bounding box of their children's tiles.
        for (_, pid, tile) in parents.iter_mut() {
            let mbr = arena
                .get(*pid)
                .content_mbr()
                .expect("every skeleton node has children");
            *tile = mbr;
        }
        current = parents;
        side_below = side;
        if side == 1 {
            break;
        }
    }

    debug_assert_eq!(current.len(), 1, "construction ends at a single root");
    let root = current[0].1;
    Tree::from_parts(config, arena, root)
}

/// All coordinates of a `side^D` grid, row-major.
fn grid_coords<const D: usize>(side: usize) -> impl Iterator<Item = [usize; D]> {
    let total = side.pow(D as u32);
    (0..total).map(move |mut i| {
        let mut coord = [0usize; D];
        for slot in coord.iter_mut().rev() {
            *slot = i % side;
            i /= side;
        }
        coord
    })
}

/// Row-major index of `coord` in a `side^D` grid.
fn grid_index<const D: usize>(coord: &[usize; D], side: usize) -> usize {
    coord.iter().fold(0, |idx, &c| idx * side + c)
}

/// The tile at `coord`: the product of each dimension's partition.
fn tile_of<const D: usize>(cuts: &[Histogram], coord: &[usize; D]) -> Rect<D> {
    let ivs: [Interval; D] = std::array::from_fn(|d| cuts[d].partition(coord[d]));
    Rect::from_intervals(ivs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RecordId;

    fn domain() -> Rect<2> {
        Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
    }

    #[test]
    fn nth_root_ceil_exact() {
        assert_eq!(nth_root_ceil(8000, 2), 90); // ceil(sqrt(8000)) = 90
        assert_eq!(nth_root_ceil(8100, 2), 90);
        assert_eq!(nth_root_ceil(8101, 2), 91);
        assert_eq!(nth_root_ceil(27, 3), 3);
        assert_eq!(nth_root_ceil(28, 3), 4);
        assert_eq!(nth_root_ceil(1, 2), 1);
        assert_eq!(nth_root_ceil(0, 2), 0);
    }

    #[test]
    fn level_sides_match_paper_arithmetic() {
        // 200K tuples, 1 KB leaves (cap 25), SR config (2/3 branches):
        // level 0: ceil(200000/25) = 8000 → side 90 → 8100 nodes
        // level 1: cap 51·2/3 = 34 → ceil(8100/34) = 239 → side 16 → 256
        // level 2: cap 102·2/3 = 68 → ceil(256/68) = 4 → side 2 → 4
        // level 3: ceil(4/fanout) = 1 → root, loop ends.
        let sides = level_sides::<2>(&IndexConfig::srtree(), 200_000);
        assert_eq!(sides, vec![90, 16, 2]);
    }

    #[test]
    fn small_input_single_leaf() {
        let spec = SkeletonSpec::uniform(domain(), 10);
        let t = build_skeleton(IndexConfig::rtree(), &spec);
        assert_eq!(t.height(), 1);
        t.assert_invariants();
    }

    #[test]
    fn uniform_skeleton_structure() {
        let spec = SkeletonSpec::uniform(domain(), 10_000);
        let t = build_skeleton(IndexConfig::srtree(), &spec);
        t.assert_invariants();
        let sides = level_sides::<2>(&IndexConfig::srtree(), 10_000);
        let profile = t.level_profile();
        assert_eq!(profile[0], sides[0] * sides[0]);
        assert_eq!(*profile.last().unwrap(), 1, "single root");
        // The root's region covers the domain.
        let root = t.root_region().unwrap();
        assert!(root.contains_rect(&domain()));
    }

    #[test]
    fn skeleton_accepts_inserts_and_searches() {
        let spec = SkeletonSpec::uniform(domain(), 5_000);
        let mut t = build_skeleton(IndexConfig::srtree(), &spec);
        for i in 0..5_000u64 {
            let x = ((i * 97) % 99_000) as f64;
            let y = ((i * 31) % 99_000) as f64;
            t.insert(Rect::new([x, y], [x + 50.0, y]), RecordId(i));
        }
        t.assert_invariants();
        assert_eq!(t.len(), 5_000);
        let all = t.search(&domain());
        assert_eq!(all.len(), 5_000);
    }

    #[test]
    fn skewed_histogram_shifts_cuts() {
        // All the mass near zero: the first leaf-tile column must be much
        // narrower than the last.
        let skew = Histogram::from_boundaries(vec![0.0, 10.0, 30.0, 100.0, 100_000.0]);
        let spec = SkeletonSpec {
            domain: domain(),
            expected_tuples: 10_000,
            histograms: vec![skew, Histogram::uniform(Interval::new(0.0, 100_000.0), 4)],
        };
        let t = build_skeleton(IndexConfig::rtree(), &spec);
        t.assert_invariants();
        // Find leaf tiles via the level-1 nodes' branch rects.
        let mut widths: Vec<f64> = Vec::new();
        for (_, node) in t.arena.iter() {
            if node.level == 1 {
                for b in node.branches().iter() {
                    widths.push(b.rect.extent(0));
                }
            }
        }
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min * 10.0,
            "expected strong width skew, got min {min} max {max}"
        );
    }

    #[test]
    fn three_dimensional_skeleton() {
        let domain: Rect<3> = Rect::new([0.0; 3], [1000.0; 3]);
        let spec = SkeletonSpec::uniform(domain, 3_000);
        let t = build_skeleton(IndexConfig::rtree(), &spec);
        t.assert_invariants();
        let profile = t.level_profile();
        let side = level_sides::<3>(&IndexConfig::rtree(), 3_000)[0];
        assert_eq!(profile[0], side.pow(3));
    }
}
