//! Distribution prediction (paper §4).
//!
//! When the input distribution is unknown but tuples arrive in random order,
//! the paper buffers the first `T` tuples (5–10% of the expected total
//! worked well; the experiments use the first 10,000), computes a histogram
//! of the buffered data in each dimension, and builds the Skeleton index
//! from those histograms.

use crate::skeleton::build::SkeletonSpec;
use crate::skeleton::histogram::Histogram;
use segidx_geom::Rect;

/// Collects an initial sample of the input and turns it into a
/// [`SkeletonSpec`].
#[derive(Clone, Debug)]
pub struct DistributionPredictor<const D: usize> {
    domain: Rect<D>,
    expected_tuples: usize,
    target: usize,
    samples: Vec<Rect<D>>,
}

impl<const D: usize> DistributionPredictor<D> {
    /// Default number of histogram bins computed from the sample. The
    /// Skeleton builder resamples to each level's partition count, so this
    /// only bounds the resolution of the estimate.
    pub const DEFAULT_BINS: usize = 64;

    /// Creates a predictor that buffers `target` tuples (the paper's `T`).
    ///
    /// # Panics
    /// Panics if `target == 0`.
    pub fn new(domain: Rect<D>, expected_tuples: usize, target: usize) -> Self {
        assert!(target > 0, "prediction buffer must be positive");
        Self {
            domain,
            expected_tuples,
            target,
            samples: Vec::with_capacity(target),
        }
    }

    /// Creates a predictor buffering the paper-recommended fraction
    /// (clamped to at least one tuple).
    pub fn with_fraction(domain: Rect<D>, expected_tuples: usize, fraction: f64) -> Self {
        let target = ((expected_tuples as f64 * fraction).round() as usize).max(1);
        Self::new(domain, expected_tuples, target)
    }

    /// Adds a tuple to the sample. Returns `true` once the buffer has
    /// reached its target size (the caller should then [`finish`] it).
    ///
    /// [`finish`]: DistributionPredictor::finish
    pub fn offer(&mut self, rect: Rect<D>) -> bool {
        if self.samples.len() < self.target {
            self.samples.push(rect);
        }
        self.samples.len() >= self.target
    }

    /// Number of tuples buffered so far.
    pub fn buffered(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer has reached its target size.
    pub fn is_full(&self) -> bool {
        self.samples.len() >= self.target
    }

    /// Builds equi-depth histograms over the sample (one per dimension,
    /// over record center points) and returns the resulting spec plus the
    /// buffered tuples for insertion into the freshly built skeleton.
    pub fn finish(self) -> (SkeletonSpec<D>, Vec<Rect<D>>) {
        let histograms = (0..D)
            .map(|d| {
                let values: Vec<f64> = self.samples.iter().map(|r| r.center()[d]).collect();
                Histogram::equi_depth(values, self.domain.interval(d), Self::DEFAULT_BINS)
            })
            .collect();
        let spec = SkeletonSpec {
            domain: self.domain,
            expected_tuples: self.expected_tuples,
            histograms,
        };
        (spec, self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_geom::Interval;

    fn domain() -> Rect<2> {
        Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
    }

    #[test]
    fn buffers_until_target() {
        let mut p = DistributionPredictor::new(domain(), 1000, 10);
        for i in 0..9 {
            assert!(!p.offer(Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0])));
        }
        assert!(!p.is_full());
        assert!(p.offer(Rect::new([9.0, 0.0], [10.0, 1.0])));
        assert!(p.is_full());
        assert_eq!(p.buffered(), 10);
    }

    #[test]
    fn fraction_constructor_sizes_buffer() {
        let p = DistributionPredictor::with_fraction(domain(), 200_000, 0.05);
        assert_eq!(p.target, 10_000);
        let p = DistributionPredictor::with_fraction(domain(), 10, 0.001);
        assert_eq!(p.target, 1, "clamped to one");
    }

    #[test]
    fn histograms_reflect_sample_skew() {
        let mut p = DistributionPredictor::new(domain(), 10_000, 1_000);
        // X centers concentrated near zero; Y uniform.
        for i in 0..1000u64 {
            let x = (i % 100) as f64; // all centers in [0, 100)
            let y = (i * 100) as f64;
            p.offer(Rect::new([x, y], [x + 1.0, y]));
        }
        let (spec, samples) = p.finish();
        assert_eq!(samples.len(), 1_000);
        assert_eq!(spec.histograms.len(), 2);
        let hx = &spec.histograms[0];
        // Nearly all interior X cuts below 200.
        let low = hx.boundaries()[1..hx.bins()]
            .iter()
            .filter(|&&b| b < 200.0)
            .count();
        assert!(low >= hx.bins() - 2, "x cuts not concentrated: {low}");
        assert_eq!(hx.domain(), Interval::new(0.0, 100_000.0));
    }

    #[test]
    fn overflow_offers_are_ignored() {
        let mut p = DistributionPredictor::new(domain(), 100, 2);
        p.offer(Rect::new([0.0, 0.0], [1.0, 1.0]));
        p.offer(Rect::new([1.0, 0.0], [2.0, 1.0]));
        assert!(p.offer(Rect::new([2.0, 0.0], [3.0, 1.0])));
        assert_eq!(p.buffered(), 2, "extra offers not buffered");
    }
}
