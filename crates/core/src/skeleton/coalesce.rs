//! Node coalescing for Skeleton indexes (paper §4).
//!
//! "High-density regions are made finer grained through conventional node
//! splitting ... Sparsely populated regions that are spatially adjacent are
//! merged, or coalesced." The pass runs every `check_interval` insertions
//! and only considers the `lfm_candidates` least-frequently-modified leaves,
//! exactly as in the paper's experiments (every 1,000 insertions among the
//! 10 least frequently modified nodes, §5).

use crate::config::CoalesceConfig;
use crate::id::NodeId;
use crate::tree::Tree;
use segidx_geom::Rect;

impl<const D: usize> Tree<D> {
    /// One coalescing pass. Invoked automatically by [`Tree::insert`] when
    /// `config.coalesce` is set; public so callers can trigger maintenance
    /// explicitly (e.g. after a bulk delete).
    pub fn coalesce_pass(&mut self, cfg: CoalesceConfig) {
        // The least-frequently-modified non-root leaves.
        let mut leaves: Vec<(u64, NodeId)> = self
            .arena
            .iter()
            .filter(|(_, n)| n.is_leaf() && n.parent.is_some())
            .map(|(id, n)| (n.mod_count, id))
            .collect();
        leaves.sort_unstable();
        leaves.truncate(cfg.lfm_candidates);

        for (_, leaf) in leaves {
            // A previous merge in this pass may have consumed this leaf.
            if !self.is_live_leaf(leaf) {
                continue;
            }
            self.try_coalesce_leaf(leaf);
        }
        self.drain_pending();
    }

    fn is_live_leaf(&self, id: NodeId) -> bool {
        self.arena
            .iter()
            .any(|(nid, n)| nid == id && n.is_leaf() && n.parent.is_some())
    }

    /// Merges `leaf` into the best adjacent sibling, if any qualifies.
    fn try_coalesce_leaf(&mut self, leaf: NodeId) -> bool {
        let Some(parent) = self.node(leaf).parent else {
            return false;
        };
        let leaf_region = self.region_of(leaf).expect("non-root leaf has a region");
        let leaf_occupancy = self.node(leaf).entries().len();
        let capacity = self.config.capacity(0);

        // Candidate siblings: leaves under the same parent whose combined
        // contents fit in one node. Prefer the one introducing the least
        // dead space; require spatial adjacency (bounded dead space) so a
        // merge does not create a sprawling region.
        let mut best: Option<(NodeId, Rect<D>, f64)> = None;
        for b in self.node(parent).branches().iter() {
            if b.child == leaf {
                continue;
            }
            let sib = self.node(b.child);
            if !sib.is_leaf() || sib.entries().len() + leaf_occupancy > capacity {
                continue;
            }
            let merged = leaf_region.union(&b.rect);
            let covered = leaf_region.area() + b.rect.area() - leaf_region.overlap_area(&b.rect);
            let dead = merged.area() - covered;
            let adjacent = dead <= covered.max(1e-9);
            if !adjacent {
                continue;
            }
            if best.as_ref().map_or(true, |(_, _, d)| dead < *d) {
                best = Some((b.child, merged, dead));
            }
        }
        let Some((sibling, merged_region, _)) = best else {
            return false;
        };

        // 1. Grow the surviving sibling's stored region to the merged tile,
        //    re-checking spanning records linked to it (growth can break
        //    their spanning relationship, as with any expansion).
        let bi = self
            .node(parent)
            .branch_index_of(sibling)
            .expect("sibling branch present");
        self.node_mut(parent)
            .branches_mut()
            .set_rect(bi, &merged_region);
        if self.config.segment {
            self.recheck_spanning_links(parent, sibling);
        }

        // 2. Move the entries across.
        let entries = self.node_mut(leaf).entries_mut().take_vec();
        let sib_node = self.node_mut(sibling);
        sib_node.entries_mut().extend(entries);
        sib_node.touch_modified();

        // 3. Unlink the emptied leaf (relinks or demotes spanning records
        //    that pointed at its branch).
        self.unlink_child(leaf);
        self.stats.coalesces += 1;
        self.emit(segidx_obs::EventKind::Coalesce, sibling);
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{CoalesceConfig, IndexConfig};
    use crate::id::RecordId;
    use crate::skeleton::build::{build_skeleton, SkeletonSpec};
    use crate::tree::Tree;
    use segidx_geom::Rect;

    fn domain() -> Rect<2> {
        Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
    }

    #[test]
    fn coalescing_shrinks_sparse_skeletons() {
        // Build a skeleton sized for 20K tuples but insert only 500, all in
        // one corner: coalescing must merge the untouched leaves.
        let mut config = IndexConfig::rtree();
        config.coalesce = Some(CoalesceConfig {
            check_interval: 100,
            lfm_candidates: 50,
        });
        let spec = SkeletonSpec::uniform(domain(), 20_000);
        let mut t = build_skeleton(config, &spec);
        let before = t.node_count();
        for i in 0..500u64 {
            let x = (i % 100) as f64 * 10.0;
            let y = (i / 100) as f64 * 10.0;
            t.insert(Rect::new([x, y], [x + 5.0, y]), RecordId(i));
        }
        t.assert_invariants();
        assert!(t.stats().coalesces > 0, "no coalesces happened");
        assert!(
            t.node_count() < before,
            "node count {} did not shrink from {before}",
            t.node_count()
        );
        // Nothing lost.
        assert_eq!(t.search(&domain()).len(), 500);
    }

    #[test]
    fn coalescing_preserves_results_under_load() {
        let mut config = IndexConfig::srtree();
        config.coalesce = Some(CoalesceConfig::default());
        let spec = SkeletonSpec::uniform(domain(), 8_000);
        let mut t = build_skeleton(config, &spec);
        for i in 0..8_000u64 {
            let x = ((i * 37) % 90_000) as f64;
            let y = ((i * 113) % 90_000) as f64;
            let len = if i % 11 == 0 { 20_000.0 } else { 40.0 };
            t.insert(
                Rect::new([x, y], [(x + len).min(100_000.0), y]),
                RecordId(i),
            );
        }
        t.assert_invariants();
        assert_eq!(t.len(), 8_000);
        assert_eq!(t.search(&domain()).len(), 8_000);
    }

    #[test]
    fn explicit_pass_on_plain_tree_is_safe() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..300u64 {
            let x = i as f64 * 3.0;
            t.insert(Rect::new([x, 0.0], [x + 1.0, 1.0]), RecordId(i));
        }
        t.coalesce_pass(CoalesceConfig {
            check_interval: 1,
            lfm_candidates: 100,
        });
        t.assert_invariants();
        assert_eq!(t.search(&Rect::new([0.0, 0.0], [1e4, 1e4])).len(), 300);
    }
}
