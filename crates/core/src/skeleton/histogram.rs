//! Per-dimension histograms driving Skeleton pre-partitioning (paper §4).
//!
//! A [`Histogram`] describes where the data mass lies along one dimension as
//! a sequence of partition boundaries. An equi-depth histogram over a data
//! sample places boundaries at quantiles, so a Skeleton index built from it
//! gets fine partitions where data is dense and coarse ones where it is
//! sparse — Figure 6 of the paper.

use segidx_geom::Interval;

/// Partition boundaries for one dimension: `bins + 1` non-decreasing values
/// whose first and last entries are the domain bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    boundaries: Vec<f64>,
}

impl Histogram {
    /// A uniform histogram: `bins` equal-width partitions over `domain`.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn uniform(domain: Interval, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let width = domain.length() / bins as f64;
        let boundaries = (0..=bins)
            .map(|i| {
                if i == bins {
                    domain.hi()
                } else {
                    domain.lo() + width * i as f64
                }
            })
            .collect();
        Self { boundaries }
    }

    /// An equi-depth histogram: boundaries at sample quantiles, clamped to
    /// `domain`, so each partition holds roughly the same number of sample
    /// values. Falls back to [`Histogram::uniform`] for an empty sample.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn equi_depth(mut values: Vec<f64>, domain: Interval, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        values.retain(|v| v.is_finite());
        if values.is_empty() {
            return Self::uniform(domain, bins);
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let n = values.len();
        let mut boundaries = Vec::with_capacity(bins + 1);
        boundaries.push(domain.lo());
        for i in 1..bins {
            // Linear-interpolated quantile at i/bins.
            let q = i as f64 / bins as f64;
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let frac = pos - lo as f64;
            let v = if lo + 1 < n {
                values[lo] * (1.0 - frac) + values[lo + 1] * frac
            } else {
                values[lo]
            };
            boundaries.push(v.clamp(domain.lo(), domain.hi()));
        }
        boundaries.push(domain.hi());
        // Quantiles of heavily duplicated data can collide; enforce
        // monotonicity (zero-width partitions are legal but useless, so
        // only non-decreasing order is required).
        for i in 1..boundaries.len() {
            if boundaries[i] < boundaries[i - 1] {
                boundaries[i] = boundaries[i - 1];
            }
        }
        Self { boundaries }
    }

    /// Builds a histogram directly from explicit boundaries.
    ///
    /// # Panics
    /// Panics if fewer than two boundaries are given or they decrease.
    pub fn from_boundaries(boundaries: Vec<f64>) -> Self {
        assert!(boundaries.len() >= 2, "need at least two boundaries");
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        Self { boundaries }
    }

    /// Number of partitions.
    pub fn bins(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The domain covered.
    pub fn domain(&self) -> Interval {
        Interval::new(
            self.boundaries[0],
            *self.boundaries.last().expect("non-empty boundaries"),
        )
    }

    /// The `i`-th partition as an interval.
    pub fn partition(&self, i: usize) -> Interval {
        Interval::new(self.boundaries[i], self.boundaries[i + 1])
    }

    /// All boundaries.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Resamples to a different partition count, treating the histogram as a
    /// piecewise-linear CDF (each existing partition holds equal mass). The
    /// Skeleton builder uses this to derive each level's cut points from one
    /// source histogram.
    pub fn rebin(&self, new_bins: usize) -> Histogram {
        assert!(new_bins > 0, "histogram needs at least one bin");
        let old_bins = self.bins();
        let mut boundaries = Vec::with_capacity(new_bins + 1);
        for j in 0..=new_bins {
            // Quantile j/new_bins in units of old partitions.
            let pos = j as f64 / new_bins as f64 * old_bins as f64;
            let cell = (pos.floor() as usize).min(old_bins - 1);
            let frac = pos - cell as f64;
            let lo = self.boundaries[cell];
            let hi = self.boundaries[cell + 1];
            boundaries.push(lo + (hi - lo) * frac);
        }
        // Guard against floating-point jitter at the ends.
        let last = boundaries.len() - 1;
        boundaries[0] = self.boundaries[0];
        boundaries[last] = *self.boundaries.last().unwrap();
        Histogram { boundaries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Interval {
        Interval::new(0.0, 100.0)
    }

    #[test]
    fn uniform_partitions_equal_width() {
        let h = Histogram::uniform(domain(), 4);
        assert_eq!(h.bins(), 4);
        assert_eq!(h.boundaries(), &[0.0, 25.0, 50.0, 75.0, 100.0]);
        assert_eq!(h.partition(2), Interval::new(50.0, 75.0));
        assert_eq!(h.domain(), domain());
    }

    #[test]
    fn equi_depth_follows_the_data() {
        // 90% of the mass in [0, 10]: most cuts land below 10.
        let mut values: Vec<f64> = (0..900).map(|i| i as f64 / 90.0).collect();
        values.extend((0..100).map(|i| 10.0 + i as f64 * 0.9));
        let h = Histogram::equi_depth(values, domain(), 10);
        assert_eq!(h.bins(), 10);
        let below = h.boundaries()[1..10].iter().filter(|&&b| b < 10.0).count();
        assert!(
            below >= 8,
            "expected ≥8 interior cuts below 10, got {below}"
        );
        assert_eq!(h.boundaries()[0], 0.0);
        assert_eq!(h.boundaries()[10], 100.0);
    }

    #[test]
    fn equi_depth_empty_sample_falls_back_to_uniform() {
        let h = Histogram::equi_depth(vec![], domain(), 5);
        assert_eq!(h, Histogram::uniform(domain(), 5));
        let h = Histogram::equi_depth(vec![f64::NAN], domain(), 5);
        assert_eq!(h, Histogram::uniform(domain(), 5));
    }

    #[test]
    fn equi_depth_duplicate_heavy_sample_is_monotone() {
        let values = vec![50.0; 1000];
        let h = Histogram::equi_depth(values, domain(), 8);
        assert!(h.boundaries().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(h.boundaries()[0], 0.0);
        assert_eq!(h.boundaries()[8], 100.0);
    }

    #[test]
    fn rebin_uniform_stays_uniform() {
        let h = Histogram::uniform(domain(), 4).rebin(8);
        assert_eq!(h.bins(), 8);
        for (i, b) in h.boundaries().iter().enumerate() {
            assert!((b - i as f64 * 12.5).abs() < 1e-9);
        }
    }

    #[test]
    fn rebin_preserves_skew() {
        let skewed = Histogram::from_boundaries(vec![0.0, 1.0, 2.0, 4.0, 100.0]);
        let r = skewed.rebin(2);
        // Half the mass lies in [0, 2], so the midpoint cut is at 2.
        assert_eq!(r.boundaries(), &[0.0, 2.0, 100.0]);
    }

    #[test]
    fn rebin_roundtrip_endpoints() {
        let h = Histogram::uniform(domain(), 7).rebin(13).rebin(3);
        assert_eq!(h.boundaries()[0], 0.0);
        assert_eq!(*h.boundaries().last().unwrap(), 100.0);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::uniform(domain(), 0);
    }

    #[test]
    #[should_panic]
    fn decreasing_boundaries_panic() {
        let _ = Histogram::from_boundaries(vec![0.0, 5.0, 3.0]);
    }
}
