//! Rebuilding a drifted index as a fresh Skeleton (`REINDEX`-style).
//!
//! A Skeleton pre-partitioned for one distribution degrades when the data
//! drifts (paper §4's adaptation handles gradual drift; wholesale change is
//! better served by rebuilding). [`Tree::rebuild_as_skeleton`] derives
//! exact per-dimension histograms from the *current* contents, constructs a
//! fresh Skeleton sized for them, and reinserts everything.

use crate::skeleton::build::{build_skeleton, SkeletonSpec};
use crate::skeleton::histogram::Histogram;
use crate::tree::Tree;
use segidx_geom::Rect;
use std::collections::HashMap;

impl<const D: usize> Tree<D> {
    /// Reconstructs the logical records currently in the index.
    ///
    /// A record cut into portions (paper §3.1.1) is restored by uniting its
    /// portions — they tile the original rectangle exactly, so the union is
    /// the original geometry. Returned in unspecified order.
    pub fn logical_records(&self) -> Vec<(Rect<D>, crate::id::RecordId)> {
        let mut merged: HashMap<crate::id::RecordId, Rect<D>> = HashMap::with_capacity(self.len());
        for (rect, record) in self.iter_entries() {
            merged
                .entry(record)
                .and_modify(|r| r.expand_to_cover(&rect))
                .or_insert(rect);
        }
        merged.into_iter().map(|(id, r)| (r, id)).collect()
    }

    /// Builds a fresh Skeleton index over this tree's current contents,
    /// with partition histograms derived from the data itself (exact, not
    /// predicted) over `domain`. The new tree uses this tree's
    /// configuration; the original is left untouched.
    ///
    /// # Panics
    /// Panics if any record's center lies outside `domain` in some
    /// dimension — widen the domain to cover the data first.
    pub fn rebuild_as_skeleton(&self, domain: Rect<D>) -> Tree<D> {
        let records = self.logical_records();
        let histograms = (0..D)
            .map(|d| {
                let values: Vec<f64> = records.iter().map(|(r, _)| r.center()[d]).collect();
                Histogram::equi_depth(
                    values,
                    domain.interval(d),
                    DistributionBins::for_len(records.len()),
                )
            })
            .collect();
        let spec = SkeletonSpec {
            domain,
            expected_tuples: records.len().max(1),
            histograms,
        };
        let mut fresh = build_skeleton(self.config.clone(), &spec);
        for (rect, record) in records {
            fresh.insert(rect, record);
        }
        fresh
    }
}

/// Histogram resolution scaled to the input size (the builder resamples to
/// each level's partition count anyway; this only bounds estimate quality).
struct DistributionBins;

impl DistributionBins {
    fn for_len(n: usize) -> usize {
        (n / 100).clamp(16, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::id::RecordId;

    fn domain() -> Rect<2> {
        Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
    }

    #[test]
    fn logical_records_restore_cut_geometry() {
        // Tiny nodes (capacity 4) so cutting reliably fires.
        let mut t: Tree<2> = Tree::new(IndexConfig {
            leaf_node_bytes: 160,
            segment: true,
            ..IndexConfig::default()
        });
        let mut originals = Vec::new();
        for i in 0..3_000u64 {
            let x = ((i * 97) % 2_000) as f64;
            let y = ((i * 41) % 500) as f64;
            let len = if i % 31 == 0 {
                700.0
            } else if i % 7 == 0 {
                90.0
            } else {
                3.0
            };
            let r = Rect::new([x, y], [x + len, y]);
            t.insert(r, RecordId(i));
            originals.push((r, RecordId(i)));
        }
        assert!(t.stats().cuts > 0, "cut records present");
        let mut restored = t.logical_records();
        restored.sort_by_key(|(_, id)| *id);
        originals.sort_by_key(|(_, id)| *id);
        assert_eq!(restored, originals, "unions restore the original rects");
    }

    #[test]
    fn rebuild_improves_a_drifted_skeleton() {
        // Build a skeleton sized for data in one corner, then overwrite the
        // workload with data in the opposite corner.
        let corner_a: Vec<f64> = (0..1000).map(|i| (i % 10_000) as f64).collect();
        let spec = SkeletonSpec {
            domain: domain(),
            expected_tuples: 20_000,
            histograms: vec![
                Histogram::equi_depth(corner_a.clone(), domain().interval(0), 32),
                Histogram::equi_depth(corner_a, domain().interval(1), 32),
            ],
        };
        let mut config = IndexConfig::srtree();
        config.coalesce = Some(Default::default());
        let mut drifted = build_skeleton(config, &spec);
        for i in 0..20_000u64 {
            // Actual data: opposite corner.
            let x = 80_000.0 + ((i * 37) % 19_000) as f64;
            let y = 80_000.0 + ((i * 113) % 19_000) as f64;
            drifted.insert(Rect::new([x, y], [x + 40.0, y]), RecordId(i));
        }
        drifted.assert_invariants();

        let rebuilt = drifted.rebuild_as_skeleton(domain());
        rebuilt.assert_invariants();
        assert_eq!(rebuilt.len(), drifted.len());

        // Same answers…
        let q = Rect::new([85_000.0, 85_000.0], [90_000.0, 90_000.0]);
        assert_eq!(rebuilt.search(&q), drifted.search(&q));
        // …with fewer nodes and cheaper searches.
        assert!(
            rebuilt.node_count() < drifted.node_count(),
            "rebuilt {} vs drifted {}",
            rebuilt.node_count(),
            drifted.node_count()
        );
        let a = drifted.count_search_accesses(&q);
        let b = rebuilt.count_search_accesses(&q);
        assert!(b <= a, "rebuilt accesses {b} vs drifted {a}");
    }

    #[test]
    fn rebuild_of_empty_tree() {
        let t: Tree<2> = Tree::new(IndexConfig::rtree());
        let rebuilt = t.rebuild_as_skeleton(domain());
        assert!(rebuilt.is_empty());
        rebuilt.assert_invariants();
    }
}
