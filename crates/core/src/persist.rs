//! Persistence: serializing an index into the paged storage substrate.
//!
//! Every index node maps onto one page whose size class follows the paper's
//! ladder — level 0 nodes on 1 KB pages, level 1 on 2 KB pages, and so on —
//! so the on-disk layout is exactly the variable-node-size structure of
//! paper §2.1.2. (A node that overflowed elastically is placed on the
//! smallest page that fits it.)
//!
//! Two layers of durability sit on top of [`save`]/[`load`]:
//!
//! * [`commit`] writes the tree, points the disk manager's committed-root
//!   pointer at its metadata page, and syncs — one atomic step, so a crash
//!   at any write boundary leaves either the previous committed tree or the
//!   new one, never a mix.
//! * [`recover`] runs after [`DiskManager::open_repair`] has quarantined
//!   corrupt pages: it reloads the committed tree if it survived intact, or
//!   rebuilds a fresh tree from every surviving node page (leaf entries and
//!   spanning records alike are re-inserted) and commits the rebuild.

use crate::config::{CoalesceConfig, IndexConfig, SplitAlgorithm};
use crate::entry::{Branch, LeafEntry, SpanningEntry};
use crate::id::{NodeId, RecordId};
use crate::node::{Arena, Node, NodeKind};
use crate::tree::Tree;
use segidx_geom::Rect;
use segidx_obs::{Event, EventKind, ObsSink};
use segidx_storage::{
    ByteReader, ByteWriter, DiskManager, PageId, RepairReport, Result, SizeClass, StorageError,
};
use std::collections::HashMap;
use std::sync::Arc;

const TREE_MAGIC: u32 = 0x5347_5452; // "SGTR"
const FORMAT_VERSION: u32 = 1;

/// Writes the tree to `disk`, returning the id of its metadata page.
/// Call [`DiskManager::sync`] afterwards for durability.
pub fn save<const D: usize>(tree: &Tree<D>, disk: &DiskManager) -> Result<PageId> {
    // Allocate one page per node first so child references can be encoded.
    let mut page_of: HashMap<NodeId, PageId> = HashMap::with_capacity(tree.node_count());
    let mut order: Vec<NodeId> = Vec::with_capacity(tree.node_count());
    for (id, node) in tree.arena.iter() {
        let payload_len = encode_node(node).len();
        let class = size_class_for(&tree.config, node.level, payload_len)?;
        let page = disk.allocate(class)?;
        page_of.insert(id, page);
        order.push(id);
    }
    for id in order {
        let node = tree.arena.get(id);
        let payload = encode_node_with_children(node, &page_of);
        let page_id = page_of[&id];
        let class = disk.size_class_of(page_id)?;
        let mut page = segidx_storage::Page::new(page_id, class);
        page.set_payload(&payload)?;
        disk.write_page(&page)?;
    }

    // Metadata page.
    let mut w = ByteWriter::with_capacity(128);
    w.put_u32(TREE_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(D as u32);
    w.put_u64(page_of[&tree.root].raw());
    w.put_u64(tree.len as u64);
    w.put_u64(tree.entry_count as u64);
    encode_config(&mut w, &tree.config);
    let class = SizeClass::fitting(w.len()).ok_or_else(|| {
        StorageError::BadMeta("tree metadata exceeds the largest page size".into())
    })?;
    let meta_id = disk.allocate(class)?;
    let mut page = segidx_storage::Page::new(meta_id, class);
    page.set_payload(w.as_bytes())?;
    disk.write_page(&page)?;
    Ok(meta_id)
}

/// Reads a tree back from `disk` given its metadata page id.
pub fn load<const D: usize>(disk: &DiskManager, meta: PageId) -> Result<Tree<D>> {
    let meta_page = disk.read_page(meta)?;
    let mut r = ByteReader::new(meta_page.payload());
    let magic = r.get_u32()?;
    if magic != TREE_MAGIC {
        return Err(StorageError::BadMeta(format!("bad tree magic {magic:#x}")));
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::BadMeta(format!(
            "unsupported tree format {version}"
        )));
    }
    let dims = r.get_u32()? as usize;
    if dims != D {
        return Err(StorageError::BadMeta(format!(
            "tree has {dims} dimensions, expected {D}"
        )));
    }
    let root_page = PageId(r.get_u64()?);
    let len = r.get_u64()? as usize;
    let entry_count = r.get_u64()? as usize;
    let config = decode_config(&mut r)?;

    let mut arena: Arena<D> = Arena::new();
    let mut node_of: HashMap<PageId, NodeId> = HashMap::new();
    let root = load_node(disk, root_page, &mut arena, &mut node_of)?;
    let mut tree = Tree::from_parts(config, arena, root);
    tree.len = len;
    tree.entry_count = entry_count;
    Ok(tree)
}

/// What [`recover`] did to bring the index back after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The metadata page of the recovered (and committed) tree.
    pub meta: PageId,
    /// Whether the tree had to be rebuilt from surviving pages. `false`
    /// means the committed tree survived intact and was loaded as-is.
    pub rebuilt: bool,
    /// Entries (leaf entries plus spanning records) salvaged into the
    /// rebuilt tree. Equals the tree's entry count when `rebuilt`.
    pub entries_recovered: usize,
    /// Pages quarantined by the repair-mode open; the entries they held
    /// directly are gone.
    pub pages_lost: usize,
}

/// Writes `tree` to `disk` and makes it the committed tree, atomically.
///
/// The previous committed tree's pages are freed first (their extents are
/// recycled only once this commit is durable, so a crash mid-commit still
/// reopens on the previous tree), then the new tree is saved, the disk
/// manager's root pointer is set to its metadata page, and everything is
/// synced under one meta commit. Returns the new metadata page id.
pub fn commit<const D: usize>(tree: &Tree<D>, disk: &DiskManager) -> Result<PageId> {
    if let Some(old) = disk.root() {
        free_tree(disk, old);
    }
    let meta = save(tree, disk)?;
    disk.set_root(Some(meta));
    disk.sync()?;
    Ok(meta)
}

/// Brings the committed index back after a crash or corruption.
///
/// Call after [`DiskManager::open_repair`], passing its [`RepairReport`].
/// If the committed tree (the disk manager's root pointer) loads cleanly it
/// is returned untouched. Otherwise every surviving node page is scavenged:
/// leaf entries and spanning records are re-inserted into a fresh tree
/// (using the on-disk config when the tree metadata page survived), the old
/// pages are freed, and the rebuild is committed so the next open is clean.
///
/// Fires [`EventKind::SubtreeLost`] per quarantined page and
/// [`EventKind::RecoveryRebuild`] (detail = entries recovered) on `sink`.
///
/// Returns [`StorageError::BadMeta`] if the disk has no committed tree.
pub fn recover<const D: usize>(
    disk: &DiskManager,
    repair: &RepairReport,
    sink: Option<&Arc<dyn ObsSink>>,
) -> Result<(Tree<D>, RecoveryReport)> {
    let root = disk
        .root()
        .ok_or_else(|| StorageError::BadMeta("no committed tree to recover".into()))?;
    if repair.is_clean() {
        // Pure crash, no corruption: the committed tree must load.
        let tree = load::<D>(disk, root)?;
        let entries = tree.entry_count();
        return Ok((
            tree,
            RecoveryReport {
                meta: root,
                rebuilt: false,
                entries_recovered: entries,
                pages_lost: 0,
            },
        ));
    }
    // Quarantine happened; the committed tree may still be whole (the
    // corrupt pages could belong to an uncommitted successor).
    if let Ok(tree) = load::<D>(disk, root) {
        let entries = tree.entry_count();
        return Ok((
            tree,
            RecoveryReport {
                meta: root,
                rebuilt: false,
                entries_recovered: entries,
                pages_lost: repair.quarantined.len(),
            },
        ));
    }
    for (page, _) in &repair.quarantined {
        if let Some(sink) = sink {
            sink.event(Event::new(EventKind::SubtreeLost).node(page.raw()));
        }
    }
    // Salvage: collect (rect, record) pairs from every page that still
    // parses as a node of this dimensionality, then rebuild.
    let config = load_config(disk, root).unwrap_or_else(IndexConfig::srtree);
    let mut salvaged: Vec<(Rect<D>, RecordId)> = Vec::new();
    let pages = disk.pages();
    for (id, _) in &pages {
        if let Ok(page) = disk.read_page(*id) {
            salvage_node::<D>(page.payload(), &mut salvaged);
        }
    }
    let mut tree: Tree<D> = Tree::new(config);
    for (rect, record) in &salvaged {
        tree.insert(*rect, *record);
    }
    if let Some(sink) = sink {
        sink.event(Event::new(EventKind::RecoveryRebuild).detail(salvaged.len() as u64));
    }
    // Drop every old page (extents recycle only after the commit below is
    // durable) and commit the rebuild.
    for (id, _) in &pages {
        let _ = disk.free(*id);
    }
    let meta = save(&tree, disk)?;
    disk.set_root(Some(meta));
    disk.sync()?;
    Ok((
        tree,
        RecoveryReport {
            meta,
            rebuilt: true,
            entries_recovered: salvaged.len(),
            pages_lost: repair.quarantined.len(),
        },
    ))
}

/// Reads just the [`IndexConfig`] out of a tree metadata page.
fn load_config(disk: &DiskManager, meta: PageId) -> Option<IndexConfig> {
    let page = disk.read_page(meta).ok()?;
    let mut r = ByteReader::new(page.payload());
    if r.get_u32().ok()? != TREE_MAGIC || r.get_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    let _dims = r.get_u32().ok()?;
    let _root = r.get_u64().ok()?;
    let _len = r.get_u64().ok()?;
    let _entries = r.get_u64().ok()?;
    decode_config(&mut r).ok()
}

/// If `payload` parses fully as a level/leaf node image of dimensionality
/// `D`, appends its directly-held entries (leaf entries, or an internal
/// node's spanning records) to `out`. Tree metadata pages and nodes of
/// other dimensionalities fail the strict-parse check and contribute
/// nothing.
fn salvage_node<const D: usize>(payload: &[u8], out: &mut Vec<(Rect<D>, RecordId)>) {
    let mut r = ByteReader::new(payload);
    let mut found: Vec<(Rect<D>, RecordId)> = Vec::new();
    let ok = (|| -> Result<()> {
        let _level = r.get_u32()?;
        let is_leaf = r.get_u8()?;
        let _mod_count = r.get_u64()?;
        if is_leaf == 1 {
            let count = r.get_u32()? as usize;
            for _ in 0..count {
                let rect = read_rect::<D>(&mut r)?;
                found.push((rect, RecordId(r.get_u64()?)));
            }
        } else if is_leaf == 0 {
            let branch_count = r.get_u32()? as usize;
            let span_count = r.get_u32()? as usize;
            for _ in 0..branch_count {
                let _rect = read_rect::<D>(&mut r)?;
                let _child = r.get_u64()?;
            }
            for _ in 0..span_count {
                let rect = read_rect::<D>(&mut r)?;
                let record = RecordId(r.get_u64()?);
                let _linked = r.get_u64()?;
                found.push((rect, record));
            }
        } else {
            return Err(StorageError::Decode("not a node image".into()));
        }
        if !r.is_exhausted() {
            return Err(StorageError::Decode("trailing bytes".into()));
        }
        Ok(())
    })();
    if ok.is_ok() {
        out.append(&mut found);
    }
}

/// Best-effort walk freeing every page of the tree rooted at `meta`.
/// Unreadable subtrees are skipped (their pages leak rather than fail the
/// caller); dimensionality is read from the metadata page, so this works
/// for any `D`. Freed extents recycle only after the next durable commit,
/// so callers replacing a committed tree (or tier set) may free the old
/// pages before writing the new ones.
pub fn free_tree(disk: &DiskManager, meta: PageId) {
    fn free_node(disk: &DiskManager, page_id: PageId, dims: usize) {
        let Ok(page) = disk.read_page(page_id) else {
            return;
        };
        let mut r = ByteReader::new(page.payload());
        let children = (|| -> Result<Vec<PageId>> {
            let _level = r.get_u32()?;
            let is_leaf = r.get_u8()? == 1;
            let _mod_count = r.get_u64()?;
            let mut children = Vec::new();
            if !is_leaf {
                let branch_count = r.get_u32()? as usize;
                let _span_count = r.get_u32()?;
                for _ in 0..branch_count {
                    r.get_bytes(16 * dims)?;
                    children.push(PageId(r.get_u64()?));
                }
            }
            Ok(children)
        })()
        .unwrap_or_default();
        for child in children {
            free_node(disk, child, dims);
        }
        let _ = disk.free(page_id);
    }

    let root_and_dims = disk.read_page(meta).ok().and_then(|page| {
        let mut r = ByteReader::new(page.payload());
        if r.get_u32().ok()? != TREE_MAGIC || r.get_u32().ok()? != FORMAT_VERSION {
            return None;
        }
        let dims = r.get_u32().ok()? as usize;
        let root = PageId(r.get_u64().ok()?);
        Some((root, dims))
    });
    if let Some((root, dims)) = root_and_dims {
        free_node(disk, root, dims);
    }
    let _ = disk.free(meta);
}

fn load_node<const D: usize>(
    disk: &DiskManager,
    page_id: PageId,
    arena: &mut Arena<D>,
    node_of: &mut HashMap<PageId, NodeId>,
) -> Result<NodeId> {
    let page = disk.read_page(page_id)?;
    let mut r = ByteReader::new(page.payload());
    let level = r.get_u32()?;
    let is_leaf = r.get_u8()? == 1;
    let mod_count = r.get_u64()?;
    let id = if is_leaf {
        let count = r.get_u32()? as usize;
        let mut node = Node::leaf();
        node.level = level;
        node.mod_count = mod_count;
        for _ in 0..count {
            let rect = read_rect::<D>(&mut r)?;
            let record = RecordId(r.get_u64()?);
            node.entries_mut().push(LeafEntry { rect, record });
        }
        arena.alloc(node)
    } else {
        let branch_count = r.get_u32()? as usize;
        let span_count = r.get_u32()? as usize;
        let mut branches = Vec::with_capacity(branch_count);
        for _ in 0..branch_count {
            let rect = read_rect::<D>(&mut r)?;
            let child_page = PageId(r.get_u64()?);
            branches.push((rect, child_page));
        }
        let mut spans = Vec::with_capacity(span_count);
        for _ in 0..span_count {
            let rect = read_rect::<D>(&mut r)?;
            let record = RecordId(r.get_u64()?);
            let linked_page = PageId(r.get_u64()?);
            spans.push((rect, record, linked_page));
        }
        let mut node = Node::internal(level.max(1));
        node.level = level;
        node.mod_count = mod_count;
        let id = arena.alloc(node);
        for (rect, child_page) in branches {
            let child = load_node(disk, child_page, arena, node_of)?;
            arena.get_mut(child).parent = Some(id);
            arena
                .get_mut(id)
                .branches_mut()
                .push(Branch { rect, child });
        }
        for (rect, record, linked_page) in spans {
            let linked_child = *node_of
                .get(&linked_page)
                .ok_or_else(|| StorageError::Corrupt {
                    page: page_id,
                    reason: "spanning record linked to unknown child page".into(),
                })?;
            arena.get_mut(id).spanning_mut().push(SpanningEntry {
                rect,
                record,
                linked_child,
            });
        }
        id
    };
    node_of.insert(page_id, id);
    Ok(id)
}

/// Encodes a node without resolved child pages (used only for sizing).
fn encode_node<const D: usize>(node: &Node<D>) -> Vec<u8> {
    encode_node_inner(node, |_| PageId(0))
}

fn encode_node_with_children<const D: usize>(
    node: &Node<D>,
    page_of: &HashMap<NodeId, PageId>,
) -> Vec<u8> {
    encode_node_inner(node, |id| page_of[&id])
}

fn encode_node_inner<const D: usize>(
    node: &Node<D>,
    resolve: impl Fn(NodeId) -> PageId,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64 + node.occupancy() * (16 * D + 16));
    w.put_u32(node.level);
    w.put_u8(u8::from(node.is_leaf()));
    w.put_u64(node.mod_count);
    match &node.kind {
        NodeKind::Leaf { entries } => {
            w.put_u32(entries.len() as u32);
            for e in entries.iter() {
                write_rect(&mut w, &e.rect);
                w.put_u64(e.record.raw());
            }
        }
        NodeKind::Internal { branches, spanning } => {
            w.put_u32(branches.len() as u32);
            w.put_u32(spanning.len() as u32);
            for b in branches.iter() {
                write_rect(&mut w, &b.rect);
                w.put_u64(resolve(b.child).raw());
            }
            for s in spanning.iter() {
                write_rect(&mut w, &s.rect);
                w.put_u64(s.record.raw());
                w.put_u64(resolve(s.linked_child).raw());
            }
        }
    }
    w.into_bytes()
}

fn write_rect<const D: usize>(w: &mut ByteWriter, rect: &Rect<D>) {
    for d in 0..D {
        w.put_f64(rect.lo(d));
    }
    for d in 0..D {
        w.put_f64(rect.hi(d));
    }
}

fn read_rect<const D: usize>(r: &mut ByteReader<'_>) -> Result<Rect<D>> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for v in lo.iter_mut() {
        *v = r.get_f64()?;
    }
    for v in hi.iter_mut() {
        *v = r.get_f64()?;
    }
    Rect::checked(lo, hi).ok_or_else(|| StorageError::Decode("invalid rect bounds".into()))
}

/// The page size class for a node at `level`: the paper's ladder, enlarged
/// if an elastic overflow made the payload bigger.
fn size_class_for(config: &IndexConfig, level: u32, payload_len: usize) -> Result<SizeClass> {
    let base = if config.vary_node_size {
        level.min(u32::from(config.max_size_doublings)) as u8
    } else {
        0
    };
    let mut class =
        SizeClass::checked(base).unwrap_or(SizeClass::new(segidx_storage::MAX_SIZE_CLASS));
    while class.payload_capacity() < payload_len {
        let next = class.raw() + 1;
        class = SizeClass::checked(next).ok_or_else(|| StorageError::PayloadTooLarge {
            requested: payload_len,
            capacity: class.payload_capacity(),
            size_class: class,
        })?;
    }
    Ok(class)
}

fn encode_config(w: &mut ByteWriter, c: &IndexConfig) {
    w.put_u64(c.leaf_node_bytes as u64);
    w.put_u8(u8::from(c.vary_node_size));
    w.put_u8(c.max_size_doublings);
    w.put_u64(c.entry_bytes as u64);
    w.put_f64(c.min_fill_ratio);
    w.put_f64(c.branch_fraction);
    w.put_u8(u8::from(c.segment));
    w.put_u8(match c.split {
        SplitAlgorithm::Quadratic => 0,
        SplitAlgorithm::Linear => 1,
        SplitAlgorithm::RStar => 2,
    });
    match &c.coalesce {
        None => w.put_u8(0),
        Some(cc) => {
            w.put_u8(1);
            w.put_u64(cc.check_interval);
            w.put_u64(cc.lfm_candidates as u64);
        }
    }
    w.put_u8(u8::from(c.choose_subtree_overlap));
    match c.forced_reinsert {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_f64(p);
        }
    }
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<IndexConfig> {
    let leaf_node_bytes = r.get_u64()? as usize;
    let vary_node_size = r.get_u8()? == 1;
    let max_size_doublings = r.get_u8()?;
    let entry_bytes = r.get_u64()? as usize;
    let min_fill_ratio = r.get_f64()?;
    let branch_fraction = r.get_f64()?;
    let segment = r.get_u8()? == 1;
    let split = match r.get_u8()? {
        0 => SplitAlgorithm::Quadratic,
        1 => SplitAlgorithm::Linear,
        2 => SplitAlgorithm::RStar,
        other => {
            return Err(StorageError::Decode(format!(
                "unknown split algorithm {other}"
            )))
        }
    };
    let coalesce = match r.get_u8()? {
        0 => None,
        _ => Some(CoalesceConfig {
            check_interval: r.get_u64()?,
            lfm_candidates: r.get_u64()? as usize,
        }),
    };
    let choose_subtree_overlap = r.get_u8()? == 1;
    let forced_reinsert = match r.get_u8()? {
        0 => None,
        _ => Some(r.get_f64()?),
    };
    Ok(IndexConfig {
        leaf_node_bytes,
        vary_node_size,
        max_size_doublings,
        entry_bytes,
        min_fill_ratio,
        branch_fraction,
        segment,
        split,
        coalesce,
        choose_subtree_overlap,
        forced_reinsert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "segidx-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn build_tree(segment: bool, n: u64) -> Tree<2> {
        let config = if segment {
            IndexConfig::srtree()
        } else {
            IndexConfig::rtree()
        };
        let mut t: Tree<2> = Tree::new(config);
        for i in 0..n {
            let x = ((i * 37) % 5_000) as f64;
            let y = ((i * 113) % 5_000) as f64;
            let len = if i % 9 == 0 { 2_000.0 } else { 25.0 };
            t.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
        }
        t
    }

    #[test]
    fn roundtrip_preserves_structure_and_results() {
        for segment in [false, true] {
            let tree = build_tree(segment, 2_000);
            let disk = DiskManager::create(temp(&format!("rt-{segment}.db"))).unwrap();
            let meta = save(&tree, &disk).unwrap();
            disk.sync().unwrap();
            let back: Tree<2> = load(&disk, meta).unwrap();
            back.assert_invariants();
            assert_eq!(back.len(), tree.len());
            assert_eq!(back.entry_count(), tree.entry_count());
            assert_eq!(back.node_count(), tree.node_count());
            assert_eq!(back.height(), tree.height());
            let q = Rect::new([100.0, 100.0], [3_000.0, 3_000.0]);
            assert_eq!(back.search(&q), tree.search(&q));
        }
    }

    #[test]
    fn page_sizes_follow_level_ladder() {
        let tree = build_tree(false, 3_000);
        let disk = DiskManager::create(temp("ladder.db")).unwrap();
        let _ = save(&tree, &disk).unwrap();
        // Leaf pages are 1 KB; at least one larger page exists for the
        // upper levels.
        let classes: Vec<u8> = disk.pages().iter().map(|(_, c)| c.raw()).collect();
        assert!(classes.contains(&0), "leaf pages at 1 KB");
        assert!(classes.iter().any(|&c| c >= 1), "larger upper-level pages");
    }

    #[test]
    fn wrong_dimension_rejected() {
        let tree = build_tree(false, 100);
        let disk = DiskManager::create(temp("dims.db")).unwrap();
        let meta = save(&tree, &disk).unwrap();
        let err = load::<3>(&disk, meta).unwrap_err();
        assert!(err.to_string().contains("dimensions"));
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree: Tree<2> = Tree::new(IndexConfig::srtree());
        let disk = DiskManager::create(temp("empty.db")).unwrap();
        let meta = save(&tree, &disk).unwrap();
        let back: Tree<2> = load(&disk, meta).unwrap();
        assert!(back.is_empty());
        back.assert_invariants();
        assert!(back.config().segment);
    }

    #[test]
    fn commit_sets_root_and_survives_reopen() {
        let path = temp("commit.db");
        let tree = build_tree(true, 500);
        {
            let disk = DiskManager::create(&path).unwrap();
            let meta = commit(&tree, &disk).unwrap();
            assert_eq!(disk.root(), Some(meta));
        }
        let disk = DiskManager::open(&path).unwrap();
        let back: Tree<2> = load(&disk, disk.root().unwrap()).unwrap();
        assert_eq!(back.entry_count(), tree.entry_count());
        let q = Rect::new([0.0, 0.0], [5_000.0, 5_000.0]);
        assert_eq!(back.search(&q), tree.search(&q));
    }

    #[test]
    fn commit_replaces_previous_tree_without_leaking_pages() {
        let path = temp("recommit.db");
        let disk = DiskManager::create(&path).unwrap();
        let first = build_tree(false, 1_000);
        commit(&first, &disk).unwrap();
        let pages_after_first = disk.pages().len();
        // Re-committing a same-sized tree frees the old one; the page count
        // must not grow commit over commit.
        for _ in 0..3 {
            let again = build_tree(false, 1_000);
            commit(&again, &disk).unwrap();
            assert_eq!(disk.pages().len(), pages_after_first);
        }
    }

    #[test]
    fn crash_between_commits_reopens_on_previous_tree() {
        use segidx_storage::{DiskManagerConfig, ScriptedFault};
        let path = temp("crash-commit.db");
        let small = build_tree(true, 200);
        let observe = Arc::new(ScriptedFault::observer());
        {
            let cfg = DiskManagerConfig {
                fault_injector: Some(observe.clone() as Arc<_>),
                ..DiskManagerConfig::default()
            };
            let disk = DiskManager::create_with(&path, cfg).unwrap();
            commit(&small, &disk).unwrap();
        }
        let committed_writes = observe.writes_seen();
        // Cut power partway into the *second* commit: reopen must land on
        // the first tree, whole.
        {
            let cut = Arc::new(ScriptedFault::power_cut(committed_writes + 3, Some(64)));
            let cfg = DiskManagerConfig {
                fault_injector: Some(cut as Arc<_>),
                ..DiskManagerConfig::default()
            };
            let disk = DiskManager::create_with(temp("crash-commit-b.db"), cfg).unwrap();
            commit(&small, &disk).unwrap();
            let bigger = build_tree(true, 2_000);
            assert!(commit(&bigger, &disk).is_err(), "power cut mid-commit");
            drop(disk);
            let (disk, report) = DiskManager::open_repair(
                temp("crash-commit-b.db"),
                DiskManagerConfig::default(),
                None,
            )
            .unwrap();
            assert!(report.is_clean(), "a pure power cut corrupts nothing");
            let (back, rr) = recover::<2>(&disk, &report, None).unwrap();
            assert!(!rr.rebuilt);
            assert_eq!(back.entry_count(), small.entry_count());
        }
    }

    #[test]
    fn recover_rebuilds_from_surviving_pages_after_corruption() {
        use segidx_obs::{EventKind, RingBufferSink};
        use segidx_storage::DiskManagerConfig;
        use std::io::{Seek, SeekFrom, Write};

        let path = temp("recover.db");
        let tree = build_tree(true, 1_500);
        {
            let disk = DiskManager::create(&path).unwrap();
            commit(&tree, &disk).unwrap();
        }
        // Corrupt one 1 KB leaf extent's stored payload.
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(5 * 1024 + 40)).unwrap();
            f.write_all(&[0x5A; 16]).unwrap();
        }
        let sink = Arc::new(RingBufferSink::new(64));
        let obs_sink: Arc<dyn ObsSink> = sink.clone();
        let (disk, report) =
            DiskManager::open_repair(&path, DiskManagerConfig::default(), Some(sink.clone()))
                .unwrap();
        assert_eq!(report.quarantined.len(), 1);
        let (back, rr) = recover::<2>(&disk, &report, Some(&obs_sink)).unwrap();
        assert!(rr.rebuilt);
        assert_eq!(rr.pages_lost, 1);
        back.assert_invariants();
        assert!(back.config().segment, "config recovered from tree meta");
        // The rebuilt tree answers with a subset of the original results —
        // only entries on the quarantined page may be missing, and nothing
        // fabricated appears.
        assert!(rr.entries_recovered < tree.entry_count());
        assert!(rr.entries_recovered > 0);
        let q = Rect::new([0.0, 0.0], [5_000.0, 5_000.0]);
        let full: std::collections::BTreeSet<_> = tree.search(&q).into_iter().collect();
        let got: std::collections::BTreeSet<_> = back.search(&q).into_iter().collect();
        assert!(got.is_subset(&full), "no fabricated results");
        assert_eq!(sink.events_of(EventKind::SubtreeLost).len(), 1);
        assert_eq!(sink.events_of(EventKind::RecoveryRebuild).len(), 1);
        // Recovery committed the rebuild: a clean reopen sees it.
        drop(disk);
        let disk = DiskManager::open(&path).unwrap();
        let clean: Tree<2> = load(&disk, disk.root().unwrap()).unwrap();
        assert_eq!(clean.entry_count(), back.entry_count());
    }

    #[test]
    fn recover_without_committed_tree_is_typed() {
        let path = temp("noroot.db");
        {
            DiskManager::create(&path).unwrap().sync().unwrap();
        }
        let (disk, report) = DiskManager::open_repair(&path, Default::default(), None).unwrap();
        let err = recover::<2>(&disk, &report, None).unwrap_err();
        assert!(matches!(err, StorageError::BadMeta(_)));
    }
}
