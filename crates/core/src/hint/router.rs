//! The hybrid query router: HINT for 1-D / stab-degenerate queries, the
//! SR-Tree for genuinely multi-dimensional windows.
//!
//! HINT dominates on one-dimensional workloads and stabbing queries (the
//! per-dimension hierarchy answers them nearly comparison-free), while the
//! SR-Tree prunes multi-dimensional windows in one traversal instead of
//! intersecting `D` independent candidate sets. [`HybridIndex`] maintains
//! both engines and routes each query by shape:
//!
//! * `D == 1`: always HINT.
//! * Stabbing queries: always HINT.
//! * A window degenerate (zero-extent) in **all but at most one**
//!   dimension: HINT — the non-degenerate dimension does the real filtering
//!   and the degenerate ones are stabs, so the sorted-ID intersection stays
//!   cheap.
//! * Anything else: SR-Tree.
//!
//! The crossover this rule encodes is measured by `hint_bench` and recorded
//! in `results/BENCH_hint.json`.

use super::HintIndex;
use crate::api::IntervalIndex;
use crate::config::IndexConfig;
use crate::id::RecordId;
use crate::stats::StatsSnapshot;
use crate::telemetry::TreeTelemetry;
use crate::tree::{Neighbor, Tree};
use segidx_geom::{Point, Rect};
use segidx_obs::{trace, Metric, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The query-shape classes the router distinguishes. Each routing decision
/// is counted per shape, so the HINT/tree split is observable by shape in
/// the metrics exports (not just as two grand totals).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum QueryShape {
    /// One-dimensional window (`D == 1`).
    OneD = 0,
    /// Point stab (degenerate in every dimension).
    Stab = 1,
    /// Window degenerate in all but one dimension.
    Slab = 2,
    /// Genuinely multi-dimensional window.
    Window = 3,
    /// Nearest-neighbor query.
    Nearest = 4,
}

/// Number of [`QueryShape`] classes.
pub const QUERY_SHAPES: usize = 5;

impl QueryShape {
    /// Stable lowercase name used as the `shape` metric label.
    pub fn name(self) -> &'static str {
        match self {
            QueryShape::OneD => "one_d",
            QueryShape::Stab => "stab",
            QueryShape::Slab => "slab",
            QueryShape::Window => "window",
            QueryShape::Nearest => "nearest",
        }
    }

    /// Every shape, in display order.
    pub const ALL: [QueryShape; QUERY_SHAPES] = [
        QueryShape::OneD,
        QueryShape::Stab,
        QueryShape::Slab,
        QueryShape::Window,
        QueryShape::Nearest,
    ];
}

/// Classifies a window query's shape (stabs and nearest queries are
/// classified at their call sites).
pub fn query_shape<const D: usize>(query: &Rect<D>) -> QueryShape {
    if D == 1 {
        return QueryShape::OneD;
    }
    match (0..D).filter(|&d| query.lo(d) < query.hi(d)).count() {
        0 => QueryShape::Stab,
        1 => QueryShape::Slab,
        _ => QueryShape::Window,
    }
}

/// Per-shape routing counters, shared across clones of a [`HybridIndex`]
/// (a snapshot's queries count toward the same totals).
#[derive(Debug, Default)]
pub struct RoutingCounters {
    hint: [AtomicU64; QUERY_SHAPES],
    tree: [AtomicU64; QUERY_SHAPES],
}

impl RoutingCounters {
    /// Queries routed to (HINT, tree) for `shape`.
    pub fn by_shape(&self, shape: QueryShape) -> (u64, u64) {
        (
            self.hint[shape as usize].load(Ordering::Relaxed),
            self.tree[shape as usize].load(Ordering::Relaxed),
        )
    }

    /// Total queries routed to (HINT, tree) across all shapes.
    pub fn totals(&self) -> (u64, u64) {
        let sum = |a: &[AtomicU64]| a.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        (sum(&self.hint), sum(&self.tree))
    }

    fn bump(&self, shape: QueryShape, to_hint: bool, n: u64) {
        let side = if to_hint { &self.hint } else { &self.tree };
        side[shape as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// A dual-engine index: every record lives in both an SR-Tree and a
/// [`HintIndex`]; each query is routed to the engine its shape favors.
///
/// Routing decisions are counted per [`QueryShape`]
/// ([`routing_counters`](Self::routing_counters),
/// [`register_metrics`](Self::register_metrics)) so benchmarks, tests, and
/// the metrics exports can observe the split. Clones share the counters.
#[derive(Debug)]
pub struct HybridIndex<const D: usize> {
    tree: Tree<D>,
    hint: HintIndex<D>,
    routed: Arc<RoutingCounters>,
}

impl<const D: usize> Clone for HybridIndex<D> {
    fn clone(&self) -> Self {
        Self {
            tree: self.tree.clone(),
            hint: self.hint.clone(),
            routed: Arc::clone(&self.routed),
        }
    }
}

impl<const D: usize> Default for HybridIndex<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// True when HINT should serve `query`: one-dimensional data, or a window
/// degenerate in all but at most one dimension (i.e. a stab in the rest).
fn hint_favored<const D: usize>(query: &Rect<D>) -> bool {
    if D == 1 {
        return true;
    }
    let extended = (0..D).filter(|&d| query.lo(d) < query.hi(d)).count();
    extended <= 1
}

impl<const D: usize> HybridIndex<D> {
    /// An empty hybrid over the paper's SR-Tree configuration and a
    /// domain-discovering [`HintIndex`].
    pub fn new() -> Self {
        Self::with_config(IndexConfig::srtree())
    }

    /// An empty hybrid with a custom tree configuration.
    pub fn with_config(config: IndexConfig) -> Self {
        Self {
            tree: Tree::new(config),
            hint: HintIndex::new(),
            routed: Arc::new(RoutingCounters::default()),
        }
    }

    /// The tree engine.
    pub fn tree(&self) -> &Tree<D> {
        &self.tree
    }

    /// The HINT engine.
    pub fn hint(&self) -> &HintIndex<D> {
        &self.hint
    }

    /// Queries routed to (HINT, tree) so far, across all shapes.
    pub fn routed_counts(&self) -> (u64, u64) {
        self.routed.totals()
    }

    /// The per-shape routing counters (shared across clones).
    pub fn routing_counters(&self) -> &Arc<RoutingCounters> {
        &self.routed
    }

    /// Registers the per-shape routing counters as labeled metrics:
    /// `segidx_hybrid_routed_total{engine="hint"|"tree", shape=...}`, one
    /// series per (engine, shape) pair with at least one decision.
    /// Zero-valued pairs are still exported so dashboards see the full
    /// shape matrix.
    pub fn register_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let routed = Arc::clone(&self.routed);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        registry.register(Box::new(move |out| {
            for shape in QueryShape::ALL {
                let (hint, tree) = routed.by_shape(shape);
                for (engine, count) in [("hint", hint), ("tree", tree)] {
                    let mut pairs: Vec<(&str, &str)> = labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    pairs.push(("engine", engine));
                    pairs.push(("shape", shape.name()));
                    out.push(Metric::counter("segidx_hybrid_routed_total", &pairs, count));
                }
            }
        }));
    }

    fn route(&self, query: &Rect<D>) -> bool {
        let _sp = trace::span("router");
        let shape = query_shape(query);
        let to_hint = hint_favored(query);
        self.routed.bump(shape, to_hint, 1);
        trace::add(
            if to_hint {
                trace::Dim::RoutedHint
            } else {
                trace::Dim::RoutedTree
            },
            1,
        );
        to_hint
    }
}

impl<const D: usize> IntervalIndex<D> for HybridIndex<D> {
    fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        self.tree.insert(rect, record);
        self.hint.insert(rect, record);
    }

    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        if self.route(query) {
            self.hint.search(query)
        } else {
            self.tree.search(query)
        }
    }

    fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        // Route the whole batch by its first query's shape when uniform;
        // otherwise fall back to per-query routing (still exact).
        if queries.iter().all(hint_favored) {
            {
                let _sp = trace::span("router");
                for q in queries {
                    self.routed.bump(query_shape(q), true, 1);
                }
                trace::add(trace::Dim::RoutedHint, queries.len() as u64);
            }
            self.hint.search_batch(queries)
        } else if !queries.iter().any(hint_favored) {
            {
                let _sp = trace::span("router");
                for q in queries {
                    self.routed.bump(query_shape(q), false, 1);
                }
                trace::add(trace::Dim::RoutedTree, queries.len() as u64);
            }
            self.tree.search_batch(queries)
        } else {
            queries.iter().map(|q| self.search(q)).collect()
        }
    }

    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        self.routed.bump(QueryShape::Stab, true, 1);
        trace::add(trace::Dim::RoutedHint, 1);
        self.hint.stab(p)
    }

    fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        self.routed
            .bump(QueryShape::Stab, true, points.len() as u64);
        trace::add(trace::Dim::RoutedHint, points.len() as u64);
        self.hint.stab_batch(points)
    }

    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        self.routed.bump(QueryShape::Nearest, false, 1);
        trace::add(trace::Dim::RoutedTree, 1);
        self.tree.nearest(p, k)
    }

    fn bulk_load(&mut self, items: Vec<(Rect<D>, RecordId)>) {
        if self.tree.is_empty() && self.hint.is_empty() {
            let config = self.tree.config().clone();
            let telemetry = self.tree.telemetry().cloned();
            let mut tree = crate::bulk::bulk_load(config, items.clone());
            tree.set_telemetry(telemetry);
            self.tree = tree;
            self.hint.bulk_load(items);
        } else {
            for (rect, record) in items {
                self.insert(rect, record);
            }
        }
    }

    fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
        if hint_favored(query) {
            self.hint.count_search_accesses(query)
        } else {
            self.tree.count_search_accesses(query)
        }
    }

    fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        let in_tree = self.tree.delete(rect, record);
        let in_hint = self.hint.delete(rect, record);
        in_tree || in_hint
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn entry_count(&self) -> usize {
        self.tree.entry_count() + self.hint.entry_count()
    }

    fn stats(&self) -> StatsSnapshot {
        merge_snapshots(self.tree.stats(), self.hint.stats())
    }

    fn reset_search_stats(&self) {
        self.tree.reset_search_stats();
        self.hint.reset_search_stats();
    }

    fn node_count(&self) -> usize {
        self.tree.node_count() + self.hint.node_count()
    }

    fn height(&self) -> u32 {
        self.tree.height().max(self.hint.height())
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut problems = self.tree.check_invariants();
        problems.extend(self.hint.check_invariants());
        if self.tree.len() != self.hint.len() {
            problems.push(format!(
                "engines disagree on len: tree {} vs hint {}",
                self.tree.len(),
                self.hint.len()
            ));
        }
        problems
    }

    fn variant_name(&self) -> &'static str {
        "Hybrid"
    }

    fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
        // Latencies stay attributable to the engine that served the query;
        // the tree carries the shared histograms (HINT latencies are
        // visible through the HINT variant's own telemetry in the bench).
        self.tree.set_telemetry(telemetry);
    }

    fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
        self.tree.telemetry().cloned()
    }
}

/// Field-wise sum of two statistics snapshots.
fn merge_snapshots(a: StatsSnapshot, b: StatsSnapshot) -> StatsSnapshot {
    StatsSnapshot {
        search_node_accesses: a.search_node_accesses + b.search_node_accesses,
        searches: a.searches + b.searches,
        search_results: a.search_results + b.search_results,
        maintenance_node_accesses: a.maintenance_node_accesses + b.maintenance_node_accesses,
        leaf_splits: a.leaf_splits + b.leaf_splits,
        internal_splits: a.internal_splits + b.internal_splits,
        promotions: a.promotions + b.promotions,
        demotions: a.demotions + b.demotions,
        relinks: a.relinks + b.relinks,
        cuts: a.cuts + b.cuts,
        remnants_inserted: a.remnants_inserted + b.remnants_inserted,
        spanning_stores: a.spanning_stores + b.spanning_stores,
        elastic_overflows: a.elastic_overflows + b.elastic_overflows,
        coalesces: a.coalesces + b.coalesces,
        spanning_evictions: a.spanning_evictions + b.spanning_evictions,
        redistributions: a.redistributions + b.redistributions,
        forced_reinserts: a.forced_reinserts + b.forced_reinserts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: u64) -> Vec<(Rect<2>, RecordId)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 9_000) as f64;
                let y = ((i * 113) % 9_000) as f64;
                let len = if i % 13 == 0 { 1_500.0 } else { 6.0 };
                (Rect::new([x, y], [x + len, y]), RecordId(i))
            })
            .collect()
    }

    #[test]
    fn routing_follows_query_shape() {
        let mut h = HybridIndex::<2>::new();
        h.bulk_load(dataset(1_000));
        // Wide 2-D window → tree.
        h.search(&Rect::new([0.0, 0.0], [5_000.0, 5_000.0]));
        // Degenerate in one of two dims → HINT.
        h.search(&Rect::new([0.0, 100.0], [5_000.0, 100.0]));
        // Stab → HINT.
        h.stab(&Point::new([100.0, 100.0]));
        let (hint, tree) = h.routed_counts();
        assert_eq!((hint, tree), (2, 1));
    }

    #[test]
    fn per_shape_counters_and_metrics_export() {
        use segidx_obs::{MetricValue, MetricsRegistry};
        let mut h = HybridIndex::<2>::new();
        h.bulk_load(dataset(1_000));
        let registry = MetricsRegistry::new();
        h.register_metrics(&registry, &[("component", "hybrid")]);
        h.search(&Rect::new([0.0, 0.0], [5_000.0, 5_000.0])); // window → tree
        h.search(&Rect::new([0.0, 100.0], [5_000.0, 100.0])); // slab → hint
        h.search(&Rect::new([10.0, 10.0], [10.0, 10.0])); // degenerate → stab → hint
        h.stab(&Point::new([100.0, 100.0])); // stab → hint
        h.nearest(&Point::new([0.0, 0.0]), 2); // nearest → tree
        assert_eq!(h.routing_counters().by_shape(QueryShape::Window), (0, 1));
        assert_eq!(h.routing_counters().by_shape(QueryShape::Slab), (1, 0));
        assert_eq!(h.routing_counters().by_shape(QueryShape::Stab), (2, 0));
        assert_eq!(h.routing_counters().by_shape(QueryShape::Nearest), (0, 1));
        assert_eq!(h.routed_counts(), (3, 2));
        // Clones share the counters (a snapshot's queries count together).
        let snap = h.clone();
        snap.search(&Rect::new([0.0, 0.0], [100.0, 100.0]));
        assert_eq!(h.routing_counters().by_shape(QueryShape::Window), (0, 2));
        let snap = registry.snapshot();
        let get = |engine: &str, shape: &str| {
            let labels: &[(&str, &str)] = &[
                ("component", "hybrid"),
                ("engine", engine),
                ("shape", shape),
            ];
            match snap
                .get("segidx_hybrid_routed_total", labels)
                .unwrap()
                .value
            {
                MetricValue::Counter(v) => v,
                ref other => panic!("unexpected value {other:?}"),
            }
        };
        assert_eq!(get("tree", "window"), 2);
        assert_eq!(get("hint", "slab"), 1);
        assert_eq!(get("hint", "stab"), 2);
        assert_eq!(get("tree", "nearest"), 1);
        assert_eq!(get("hint", "window"), 0, "full shape matrix exported");
    }

    #[test]
    fn one_dimensional_always_routes_to_hint() {
        let mut h = HybridIndex::<1>::new();
        for i in 0..300u64 {
            h.insert(Rect::new([i as f64], [i as f64 + 10.0]), RecordId(i));
        }
        h.search(&Rect::new([50.0], [80.0]));
        let (hint, tree) = h.routed_counts();
        assert_eq!((hint, tree), (1, 0));
    }

    #[test]
    fn both_routes_return_identical_results() {
        let data = dataset(2_000);
        let mut h = HybridIndex::<2>::new();
        h.bulk_load(data.clone());
        for i in 0..40u64 {
            let x = ((i * 997) % 8_000) as f64;
            let wide = Rect::new([x, 0.0], [x + 800.0, 9_000.0]);
            let slab = Rect::new([x, 4_000.0], [x + 800.0, 4_000.0]);
            for q in [wide, slab] {
                let via_hint = h.hint().search(&q);
                let via_tree = h.tree().search(&q);
                assert_eq!(via_hint, via_tree, "query {q:?}");
                assert_eq!(h.search(&q), via_tree);
            }
        }
        assert!(
            h.check_invariants().is_empty(),
            "{:?}",
            h.check_invariants()
        );
    }

    #[test]
    fn insert_delete_keep_engines_in_lockstep() {
        let data = dataset(500);
        let mut h = HybridIndex::<2>::new();
        for (r, id) in &data {
            h.insert(*r, *id);
        }
        for (r, id) in data.iter().filter(|(_, id)| id.0 % 2 == 0) {
            assert!(h.delete(r, *id));
        }
        assert_eq!(h.len(), 250);
        assert_eq!(h.hint().len(), 250);
        assert!(
            h.check_invariants().is_empty(),
            "{:?}",
            h.check_invariants()
        );
    }
}
