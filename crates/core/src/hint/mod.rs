//! HINT: a hierarchical main-memory interval engine with comparison-free
//! stabbing, plus a hybrid router that pairs it with the SR-Tree.
//!
//! This module implements the fifth engine behind
//! [`IntervalIndex`](crate::api::IntervalIndex) — a flat-array adaptation of
//! HINT (Christodoulou, Bouros & Mamoulis, *HINT: A Hierarchical Index for
//! Intervals in Main Memory*, SIGMOD 2022; arXiv 2104.10939). Where the
//! paper's four variants pay tree descent and per-entry comparisons on every
//! query, HINT maps each interval onto the canonical partitions of a
//! hierarchy of `2^k`-way domain subdivisions and classifies each stored
//! copy (original/replica × in/aft) so that most partitions are reported
//! **without comparing coordinates at all** (see `hint1d` for the class
//! table and its soundness argument).
//!
//! A [`HintIndex`] keeps one `Hint1D` hierarchy per
//! dimension and answers a `D`-dimensional window query by intersecting the
//! per-dimension handle sets — exact, because rectangle intersection is the
//! conjunction of per-dimension interval overlaps. One-dimensional data
//! (`D = 1`) and stabbing queries skip the intersection entirely, which is
//! the fast path the [`HybridIndex`] router exploits.
//!
//! The domain is discovered automatically: the first
//! [`auto-build threshold`](HintIndex::AUTO_BUILD_AT) inserts are buffered
//! un-homed and scanned linearly; the structure then (re)builds over the
//! bounding box seen so far. Later out-of-domain inserts are *clamped* into
//! the boundary cells — correct, because the cell mapping is monotone — and
//! only trigger a rebuild when they accumulate enough to hurt partition
//! selectivity.

mod hint1d;
mod router;

pub use router::{query_shape, HybridIndex, QueryShape, RoutingCounters, QUERY_SHAPES};

use crate::id::RecordId;
use crate::stats::{StatsSnapshot, TreeStats};
use crate::telemetry::TreeTelemetry;
use crate::tree::Neighbor;
use hint1d::{Hint1D, MAX_LEVEL_BITS, MIN_LEVEL_BITS};
use segidx_geom::{Point, Rect};
use segidx_obs::{trace, LatencyHistogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Slot-allocated storage for the logical entries: the single source of
/// truth the per-dimension hierarchies point into via `u32` handles.
#[derive(Clone, Debug)]
struct EntryTable<const D: usize> {
    rects: Vec<Rect<D>>,
    records: Vec<RecordId>,
    live: Vec<bool>,
    /// Homed in the frozen base of every hierarchy (set at build time).
    /// Entries inserted after the last build live in the deltas instead.
    in_base: Vec<bool>,
    free: Vec<u32>,
    /// Tombstoned handles: deleted, but their copies are still frozen in
    /// the base, so the slot stays unusable until the next rebuild retires
    /// them. Queries filter on `live`.
    deferred: Vec<u32>,
    live_count: usize,
}

impl<const D: usize> Default for EntryTable<D> {
    fn default() -> Self {
        Self {
            rects: Vec::new(),
            records: Vec::new(),
            live: Vec::new(),
            in_base: Vec::new(),
            free: Vec::new(),
            deferred: Vec::new(),
            live_count: 0,
        }
    }
}

impl<const D: usize> EntryTable<D> {
    fn alloc(&mut self, rect: Rect<D>, record: RecordId) -> u32 {
        self.live_count += 1;
        match self.free.pop() {
            Some(h) => {
                self.rects[h as usize] = rect;
                self.records[h as usize] = record;
                self.live[h as usize] = true;
                self.in_base[h as usize] = false;
                h
            }
            None => {
                let h = self.rects.len() as u32;
                self.rects.push(rect);
                self.records.push(record);
                self.live.push(true);
                self.in_base.push(false);
                h
            }
        }
    }

    fn release(&mut self, handle: u32) {
        debug_assert!(self.live[handle as usize]);
        self.live[handle as usize] = false;
        self.free.push(handle);
        self.live_count -= 1;
    }

    /// Marks a base-resident entry deleted without freeing its slot: the
    /// frozen copies keep referencing the handle until the next rebuild
    /// drains `deferred` back into `free`.
    fn tombstone(&mut self, handle: u32) {
        debug_assert!(self.live[handle as usize] && self.in_base[handle as usize]);
        self.live[handle as usize] = false;
        self.deferred.push(handle);
        self.live_count -= 1;
    }

    fn iter_live(&self) -> impl Iterator<Item = (u32, &Rect<D>, RecordId)> + '_ {
        self.rects
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live[*i])
            .map(|(i, r)| (i as u32, r, self.records[i]))
    }
}

/// The HINT engine: one `hint1d` hierarchy per dimension over a
/// self-discovered domain, implementing the full
/// [`IntervalIndex`](crate::api::IntervalIndex) surface.
///
/// Cloning is cheap (copy-on-write partitions), making the engine usable as
/// a snapshot under the concurrent index service.
#[derive(Clone, Debug)]
pub struct HintIndex<const D: usize> {
    entries: EntryTable<D>,
    /// `None` until the first build: entries are un-homed and scanned
    /// linearly. `Some` afterwards: every live entry is homed in all `D`
    /// hierarchies.
    dims: Option<[Hint1D; D]>,
    /// Running union of every inserted rectangle (never shrinks).
    bbox: Option<Rect<D>>,
    /// The domain the current hierarchies were built over.
    built_bbox: Option<Rect<D>>,
    /// Live count at the last (re)build; growth past 4× triggers a rebuild
    /// at a finer resolution.
    built_for: usize,
    /// Inserts since the last build whose rectangle escapes `built_bbox`.
    /// They are clamped into boundary cells (correct but less selective);
    /// enough of them triggers a rebuild over the widened bbox.
    out_of_domain: usize,
    stats: TreeStats,
    obs: Option<Arc<TreeTelemetry>>,
}

impl<const D: usize> Default for HintIndex<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest bottom level such that the mean bottom cell holds ≈ 8 entries.
fn bits_for(n: usize) -> u32 {
    let mut bits = MIN_LEVEL_BITS;
    while bits < MAX_LEVEL_BITS && (1usize << bits) < n / 8 {
        bits += 1;
    }
    bits
}

impl<const D: usize> HintIndex<D> {
    /// Un-homed inserts tolerated before the first automatic build.
    pub const AUTO_BUILD_AT: usize = 64;

    /// An empty index with an unknown domain: the first
    /// [`AUTO_BUILD_AT`](Self::AUTO_BUILD_AT) entries are buffered and
    /// scanned linearly, then the hierarchy is built over their bounding
    /// box.
    pub fn new() -> Self {
        Self {
            entries: EntryTable::default(),
            dims: None,
            bbox: None,
            built_bbox: None,
            built_for: 0,
            out_of_domain: 0,
            stats: TreeStats::default(),
            obs: None,
        }
    }

    /// An empty index built immediately over a known `domain`, so every
    /// insert is homed directly (no buffering phase).
    pub fn with_domain(domain: Rect<D>) -> Self {
        let mut idx = Self::new();
        idx.bbox = Some(domain);
        idx.build(MIN_LEVEL_BITS);
        idx
    }

    /// The bottom-level resolution `ℓ` (the finest level has `2^ℓ`
    /// partitions per dimension), or `None` before the first build.
    pub fn resolution_bits(&self) -> Option<u32> {
        self.dims.as_ref().map(|d| d[0].bits())
    }

    /// Number of logical records.
    pub fn len(&self) -> usize {
        self.entries.live_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.live_count == 0
    }

    /// Installs (or clears) wall-clock telemetry.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
        self.obs = telemetry;
    }

    /// The installed telemetry, if any.
    pub fn telemetry(&self) -> Option<&Arc<TreeTelemetry>> {
        self.obs.as_ref()
    }

    fn obs_start(&self) -> Option<Instant> {
        self.obs.as_ref().map(|_| Instant::now())
    }

    fn obs_record(&self, pick: fn(&TreeTelemetry) -> &LatencyHistogram, start: Option<Instant>) {
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            pick(obs).record(start.elapsed().as_nanos() as u64);
        }
    }

    /// (Re)builds the hierarchies at resolution `bits` over the exact
    /// bounding box of the live entries (falling back to the running bbox
    /// when empty), homing every live entry.
    fn build(&mut self, bits: u32) {
        let exact = self
            .entries
            .iter_live()
            .map(|(_, r, _)| *r)
            .reduce(|a, b| a.union(&b));
        let Some(domain) = exact.or(self.bbox) else {
            return;
        };
        let mut dims = core::array::from_fn(|d| Hint1D::new(domain.lo(d), domain.hi(d), bits));
        let mut copies = 0u64;
        for (h, rect, _) in self.entries.iter_live() {
            for (d, hier) in dims.iter_mut().enumerate() {
                copies += hier.insert(rect.lo(d), rect.hi(d), h);
            }
        }
        for hier in dims.iter_mut() {
            hier.freeze();
        }
        // The fresh base holds exactly the live entries: tombstoned slots
        // are physically gone and become reusable, and every live handle is
        // now base-resident.
        while let Some(h) = self.entries.deferred.pop() {
            self.entries.free.push(h);
        }
        for h in 0..self.entries.live.len() {
            self.entries.in_base[h] = self.entries.live[h];
        }
        self.stats.maintenance_node_accesses += copies;
        self.dims = Some(dims);
        self.built_bbox = Some(domain);
        self.built_for = self.entries.live_count.max(16);
        self.out_of_domain = 0;
    }

    /// Rebuild policy, checked after every insert.
    fn maybe_rebuild(&mut self) {
        let live = self.entries.live_count;
        match &self.dims {
            None => {
                if live >= Self::AUTO_BUILD_AT {
                    self.build(bits_for(live));
                }
            }
            Some(dims) => {
                let stale_domain = self.out_of_domain > (live / 4).max(128);
                let outgrown = live > self.built_for * 4 && dims[0].bits() < MAX_LEVEL_BITS;
                let zombies = self.entries.deferred.len() > (live / 4).max(128);
                if stale_domain || outgrown || zombies {
                    self.build(bits_for(live));
                }
            }
        }
    }

    /// Inserts a record.
    pub fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        let start = self.obs_start();
        let handle = self.entries.alloc(rect, record);
        self.bbox = Some(match self.bbox {
            Some(b) => b.union(&rect),
            None => rect,
        });
        if let Some(dims) = &mut self.dims {
            let mut copies = 0u64;
            for (d, hier) in dims.iter_mut().enumerate() {
                copies += hier.insert(rect.lo(d), rect.hi(d), handle);
            }
            self.stats.maintenance_node_accesses += copies;
            if !self
                .built_bbox
                .as_ref()
                .is_some_and(|b| b.contains_rect(&rect))
            {
                self.out_of_domain += 1;
            }
        } else {
            self.stats.maintenance_node_accesses += 1;
        }
        self.maybe_rebuild();
        self.obs_record(|t| &t.insert, start);
    }

    /// Removes a record by its original rectangle and id. Matches on exact
    /// rectangle equality (the stored rectangle is what locates the copies
    /// in every hierarchy).
    pub fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        let start = self.obs_start();
        let found = self
            .entries
            .iter_live()
            .find(|(_, r, id)| *id == record && *r == rect)
            .map(|(h, r, _)| (h, *r));
        let Some((handle, stored)) = found else {
            self.obs_record(|t| &t.delete, start);
            return false;
        };
        if self.entries.in_base[handle as usize] {
            // The copies are frozen in the base: tombstone the entry (it
            // disappears from results immediately via the liveness filter)
            // and let the next rebuild retire the physical copies. Enough
            // tombstones trigger that rebuild on their own.
            self.entries.tombstone(handle);
            self.stats.maintenance_node_accesses += 1;
            self.maybe_rebuild();
        } else {
            if let Some(dims) = &mut self.dims {
                let mut removed = 0u64;
                for (d, hier) in dims.iter_mut().enumerate() {
                    removed += hier.remove(stored.lo(d), stored.hi(d), handle);
                }
                self.stats.maintenance_node_accesses += removed;
            } else {
                self.stats.maintenance_node_accesses += 1;
            }
            self.entries.release(handle);
        }
        self.obs_record(|t| &t.delete, start);
        true
    }

    /// Bulk-loads `items` into an index, rebuilding once at the end — the
    /// cheapest way to construct a large HINT.
    pub fn bulk_load(&mut self, items: Vec<(Rect<D>, RecordId)>) {
        let start = self.obs_start();
        for (rect, record) in items {
            self.entries.alloc(rect, record);
            self.bbox = Some(match self.bbox {
                Some(b) => b.union(&rect),
                None => rect,
            });
        }
        self.build(bits_for(self.entries.live_count));
        self.obs_record(|t| &t.bulk_load, start);
    }

    /// Core query: collects into `s.acc` the handle of every live entry
    /// intersecting `query` and returns the access count (non-empty
    /// partitions touched, plus one for the entry-table / un-homed scan).
    /// Runs on caller-provided scratch so the hot read path performs no
    /// heap allocation besides the final id vector.
    fn query_handles(&self, query: &Rect<D>, s: &mut QueryScratch) -> u64 {
        s.acc.clear();
        let mut accesses = 1u64;
        let Some(dims) = &self.dims else {
            s.acc.extend(
                self.entries
                    .iter_live()
                    .filter(|(_, r, _)| r.intersects(query))
                    .map(|(h, _, _)| h),
            );
            return accesses;
        };
        // Static names so per-dimension spans stay allocation-free.
        const DIM_SPANS: [&str; 8] = [
            "hint.dim0",
            "hint.dim1",
            "hint.dim2",
            "hint.dim3",
            "hint.dim4",
            "hint.dim5",
            "hint.dim6",
            "hint.dim7",
        ];
        for (d, hier) in dims.iter().enumerate() {
            let sp = trace::span(DIM_SPANS[d.min(DIM_SPANS.len() - 1)]);
            s.out.clear();
            accesses += hier.query(query.lo(d), query.hi(d), &mut s.out, &mut s.scratch);
            sp.items(s.out.len() as u64);
            drop(sp);
            if D == 1 {
                // Single dimension: nothing to intersect, so the candidate
                // set needs no handle-order sort (the caller sorts by
                // record id anyway).
                std::mem::swap(&mut s.acc, &mut s.out);
                break;
            }
            s.out.sort_unstable();
            if d == 0 {
                std::mem::swap(&mut s.acc, &mut s.out);
            } else {
                s.acc = intersect_sorted(&s.acc, &s.out);
            }
            if s.acc.is_empty() {
                break;
            }
        }
        accesses
    }

    /// Resolves handles to record ids, dropping tombstoned entries (whose
    /// copies linger in the frozen base until the next rebuild). With no
    /// tombstones outstanding every emitted handle is live by construction
    /// — base handles were live at freeze time, delta handles are removed
    /// physically — so the liveness gather is skipped entirely.
    fn ids_of(&self, handles: &[u32]) -> Vec<RecordId> {
        for &h in handles {
            hint1d::prefetch(&self.entries.records[h as usize]);
        }
        let mut ids: Vec<RecordId> = if self.entries.deferred.is_empty() {
            handles
                .iter()
                .map(|&h| self.entries.records[h as usize])
                .collect()
        } else {
            handles
                .iter()
                .filter(|&&h| self.entries.live[h as usize])
                .map(|&h| self.entries.records[h as usize])
                .collect()
        };
        ids.sort_unstable();
        ids
    }

    /// All records intersecting `query`, sorted by id.
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let start = self.obs_start();
        let sp = trace::span("hint.search");
        let (ids, accesses) = with_query_scratch(|s| {
            let accesses = self.query_handles(query, s);
            (self.ids_of(&s.acc), accesses)
        });
        self.stats.flush_search(accesses, ids.len() as u64);
        sp.items(ids.len() as u64);
        trace::add(trace::Dim::ResultRecords, ids.len() as u64);
        drop(sp);
        self.obs_record(|t| &t.search, start);
        ids
    }

    /// All records containing point `p`, sorted by id — the degenerate
    /// window query, which the hierarchy answers almost comparison-free.
    pub fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        let start = self.obs_start();
        let sp = trace::span("hint.stab");
        let query = Rect::from_point(*p);
        let (ids, accesses) = with_query_scratch(|s| {
            let accesses = self.query_handles(&query, s);
            (self.ids_of(&s.acc), accesses)
        });
        self.stats.flush_search(accesses, ids.len() as u64);
        sp.items(ids.len() as u64);
        trace::add(trace::Dim::ResultRecords, ids.len() as u64);
        drop(sp);
        self.obs_record(|t| &t.stab, start);
        ids
    }

    /// Index accesses a search for `query` performs (the paper's metric,
    /// counted as non-empty partitions touched), without recording stats.
    pub fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
        with_query_scratch(|s| self.query_handles(query, s))
    }

    /// The `k` records nearest to `p` by minimum rectangle distance,
    /// ascending (ties broken by record id).
    pub fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        let start = self.obs_start();
        let mut all: Vec<(f64, RecordId, Rect<D>)> = self
            .entries
            .iter_live()
            .map(|(_, r, id)| (r.min_dist_sqr(p), id, *r))
            .collect();
        all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        let out = all
            .into_iter()
            .map(|(d2, record, rect)| Neighbor {
                record,
                rect,
                distance: d2.sqrt(),
            })
            .collect();
        self.obs_record(|t| &t.nearest, start);
        out
    }

    /// Fans `items` out across worker threads, preserving input order.
    /// Results are bit-identical to the serial loop: each item is evaluated
    /// independently against the same immutable structure.
    fn run_batch<T: Sync>(
        &self,
        items: &[T],
        eval: impl Fn(&T) -> Vec<RecordId> + Sync,
    ) -> Vec<Vec<RecordId>> {
        let n = items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if workers <= 1 {
            return items.iter().map(eval).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Vec<RecordId>> = Vec::with_capacity(n);
        results.resize_with(n, Vec::new);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let eval = &eval;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, eval(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    results[i] = r;
                }
            }
        });
        results
    }

    /// Per-query results for `queries` in input order, identical to calling
    /// [`search`](Self::search) per query, fanned out across threads.
    pub fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        self.run_batch(queries, |q| self.search(q))
    }

    /// Per-point results for `points` in input order, identical to calling
    /// [`stab`](Self::stab) per point, fanned out across threads.
    pub fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        self.run_batch(points, |p| self.stab(p))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the search-side statistics.
    pub fn reset_search_stats(&self) {
        self.stats.reset_search_counters();
    }

    /// Number of physical index records: every stored copy in every
    /// per-dimension hierarchy (an interval has at least `D` copies once
    /// homed), or the live count while still buffering.
    pub fn entry_count(&self) -> usize {
        match &self.dims {
            Some(dims) => dims.iter().map(|h| h.total_copies()).sum(),
            None => self.entries.live_count,
        }
    }

    /// Number of "nodes": non-empty partitions across all hierarchies,
    /// plus one for the entry table.
    pub fn node_count(&self) -> usize {
        1 + self
            .dims
            .as_ref()
            .map(|dims| dims.iter().map(|h| h.populated_partitions()).sum())
            .unwrap_or(0)
    }

    /// Hierarchy height: `ℓ + 1` levels once built, 1 while buffering.
    pub fn height(&self) -> u32 {
        match &self.dims {
            Some(dims) => dims[0].bits() + 1,
            None => 1,
        }
    }

    /// Structural invariant check (empty = consistent): every live entry is
    /// homed on exactly its canonical cover in every dimension, every
    /// tombstoned entry still carries exactly its frozen cover (its slot is
    /// parked on the deferred list, not reusable), and no other dead handle
    /// lingers anywhere.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let live_bits = self.entries.live.iter().filter(|&&l| l).count();
        if live_bits != self.entries.live_count {
            problems.push(format!(
                "live_count {} != live bits {}",
                self.entries.live_count, live_bits
            ));
        }
        for &h in &self.entries.deferred {
            if self.entries.live[h as usize] {
                problems.push(format!("tombstoned handle {h} is still live"));
            }
        }
        let Some(dims) = &self.dims else {
            if !self.entries.deferred.is_empty() {
                problems.push("tombstones exist with no hierarchy".into());
            }
            return problems;
        };
        for (d, hier) in dims.iter().enumerate() {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            hier.for_each_handle(&mut |h| *counts.entry(h).or_default() += 1);
            for (h, rect, _) in self.entries.iter_live() {
                let expect = hier.cover_size(rect.lo(d), rect.hi(d));
                let got = counts.remove(&h).unwrap_or(0);
                if got != expect {
                    problems.push(format!(
                        "dim {d}: handle {h} stored {got} times, cover is {expect}"
                    ));
                }
            }
            for &h in &self.entries.deferred {
                let rect = &self.entries.rects[h as usize];
                let expect = hier.cover_size(rect.lo(d), rect.hi(d));
                let got = counts.remove(&h).unwrap_or(0);
                if got != expect {
                    problems.push(format!(
                        "dim {d}: tombstoned handle {h} stored {got} times, frozen cover is {expect}"
                    ));
                }
            }
            for (h, n) in counts {
                problems.push(format!("dim {d}: dead handle {h} stored {n} times"));
            }
        }
        problems
    }
}

/// Reusable per-thread buffers for the read path: candidate accumulator,
/// per-dimension output, and kernel scratch. Each query clears but never
/// frees them, so steady-state reads allocate only their result vector.
#[derive(Default)]
struct QueryScratch {
    acc: Vec<u32>,
    out: Vec<u32>,
    scratch: Vec<u32>,
}

fn with_query_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<QueryScratch> =
            std::cell::RefCell::new(QueryScratch::default());
    }
    SCRATCH.with(|c| f(&mut c.borrow_mut()))
}

/// Two-pointer intersection of ascending `u32` slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl<const D: usize> crate::api::IntervalIndex<D> for HintIndex<D> {
    fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        HintIndex::insert(self, rect, record);
    }
    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        HintIndex::search(self, query)
    }
    fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        HintIndex::search_batch(self, queries)
    }
    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        HintIndex::stab(self, p)
    }
    fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        HintIndex::stab_batch(self, points)
    }
    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        HintIndex::nearest(self, p, k)
    }
    fn bulk_load(&mut self, items: Vec<(Rect<D>, RecordId)>) {
        HintIndex::bulk_load(self, items);
    }
    fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
        HintIndex::count_search_accesses(self, query)
    }
    fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        HintIndex::delete(self, rect, record)
    }
    fn len(&self) -> usize {
        HintIndex::len(self)
    }
    fn entry_count(&self) -> usize {
        HintIndex::entry_count(self)
    }
    fn stats(&self) -> StatsSnapshot {
        HintIndex::stats(self)
    }
    fn reset_search_stats(&self) {
        HintIndex::reset_search_stats(self);
    }
    fn node_count(&self) -> usize {
        HintIndex::node_count(self)
    }
    fn height(&self) -> u32 {
        HintIndex::height(self)
    }
    fn check_invariants(&self) -> Vec<String> {
        HintIndex::check_invariants(self)
    }
    fn variant_name(&self) -> &'static str {
        "HINT"
    }
    fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
        HintIndex::set_telemetry(self, telemetry);
    }
    fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
        HintIndex::telemetry(self).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_2d(n: u64) -> Vec<(Rect<2>, RecordId)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 90_000) as f64;
                let y = ((i * 113) % 90_000) as f64;
                let len = if i % 13 == 0 { 15_000.0 } else { 60.0 };
                (
                    Rect::new([x, y], [(x + len).min(100_000.0), y]),
                    RecordId(i),
                )
            })
            .collect()
    }

    fn brute(data: &[(Rect<2>, RecordId)], q: &Rect<2>) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = data
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|(_, id)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn incremental_build_matches_brute_force_across_the_rebuild() {
        let data = dataset_2d(2_000);
        let mut idx = HintIndex::<2>::new();
        let q = Rect::new([10_000.0, 10_000.0], [30_000.0, 40_000.0]);
        for (i, (rect, id)) in data.iter().enumerate() {
            idx.insert(*rect, *id);
            // Spot-check right around the automatic build and afterwards.
            if [10, 63, 64, 65, 500, 1999].contains(&i) {
                assert_eq!(idx.search(&q), brute(&data[..=i], &q), "after {i} inserts");
            }
        }
        assert!(idx.resolution_bits().is_some(), "auto-built");
        assert!(
            idx.check_invariants().is_empty(),
            "{:?}",
            idx.check_invariants()
        );
        assert_eq!(idx.len(), 2_000);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let data = dataset_2d(3_000);
        let mut bulk = HintIndex::<2>::new();
        bulk.bulk_load(data.clone());
        let mut inc = HintIndex::<2>::new();
        for (r, id) in &data {
            inc.insert(*r, *id);
        }
        for qi in 0..20u64 {
            let x = ((qi * 7919) % 80_000) as f64;
            let q = Rect::new([x, 0.0], [x + 9_000.0, 90_000.0]);
            assert_eq!(bulk.search(&q), inc.search(&q), "query {qi}");
            assert_eq!(bulk.search(&q), brute(&data, &q));
        }
    }

    #[test]
    fn delete_then_search_and_invariants() {
        let data = dataset_2d(800);
        let mut idx = HintIndex::<2>::new();
        idx.bulk_load(data.clone());
        for (r, id) in data.iter().filter(|(_, id)| id.0 % 3 == 0) {
            assert!(idx.delete(r, *id), "delete {id:?}");
            assert!(!idx.delete(r, *id), "double delete {id:?}");
        }
        let survivors: Vec<_> = data
            .iter()
            .filter(|(_, id)| id.0 % 3 != 0)
            .cloned()
            .collect();
        let q = Rect::new([0.0, 0.0], [100_000.0, 100_000.0]);
        assert_eq!(idx.search(&q), brute(&survivors, &q));
        assert!(
            idx.check_invariants().is_empty(),
            "{:?}",
            idx.check_invariants()
        );
        assert_eq!(idx.len(), survivors.len());
    }

    #[test]
    fn stab_matches_degenerate_search() {
        let data = dataset_2d(1_500);
        let mut idx = HintIndex::<2>::new();
        idx.bulk_load(data);
        for i in 0..60u64 {
            let p = Point::new([((i * 997) % 95_000) as f64, ((i * 113) % 90_000) as f64]);
            let degenerate = Rect::from_point(p);
            assert_eq!(idx.stab(&p), idx.search(&degenerate), "stab {i}");
        }
    }

    #[test]
    fn batch_is_bit_identical_to_serial() {
        let data = dataset_2d(1_200);
        let mut idx = HintIndex::<2>::new();
        idx.bulk_load(data);
        let queries: Vec<Rect<2>> = (0..100u64)
            .map(|i| {
                let x = ((i * 7_001) % 85_000) as f64;
                let y = ((i * 131) % 85_000) as f64;
                Rect::new([x, y], [x + 5_000.0, y + 5_000.0])
            })
            .collect();
        let serial: Vec<Vec<RecordId>> = queries.iter().map(|q| idx.search(q)).collect();
        assert_eq!(idx.search_batch(&queries), serial);
        let points: Vec<Point<2>> = queries.iter().map(|q| q.center()).collect();
        let serial_stab: Vec<Vec<RecordId>> = points.iter().map(|p| idx.stab(p)).collect();
        assert_eq!(idx.stab_batch(&points), serial_stab);
    }

    #[test]
    fn out_of_domain_inserts_stay_correct_and_eventually_rebuild() {
        let mut idx = HintIndex::<2>::with_domain(Rect::new([0.0, 0.0], [100.0, 100.0]));
        for i in 0..200u64 {
            // Every entry lands far outside the initial domain.
            let x = 10_000.0 + i as f64;
            idx.insert(Rect::new([x, x], [x + 5.0, x]), RecordId(i));
        }
        // Clamped entries are still found (monotone cell mapping).
        let q = Rect::new([10_050.0, 0.0], [10_060.0, 20_000.0]);
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 16, "entries 45..=60 overlap in x");
        // The domain-staleness trigger fired at some point and re-homed
        // everything over the widened bbox.
        assert!(idx.check_invariants().is_empty());
        assert!(
            idx.built_bbox.unwrap().hi(0) > 100.0,
            "rebuilt over widened domain"
        );
    }

    #[test]
    fn accesses_and_shape_metrics_are_sane() {
        let mut idx = HintIndex::<2>::new();
        assert_eq!(
            idx.count_search_accesses(&Rect::new([0.0, 0.0], [1.0, 1.0])),
            1
        );
        idx.bulk_load(dataset_2d(1_000));
        assert!(idx.count_search_accesses(&Rect::new([0.0, 0.0], [1.0, 1.0])) >= 1);
        assert!(idx.node_count() > 1);
        assert!(idx.height() > MIN_LEVEL_BITS);
        assert!(idx.entry_count() >= 2 * idx.len(), "≥ D copies per entry");
        let snap = idx.stats();
        assert!(snap.maintenance_node_accesses > 0);
        idx.search(&Rect::new([0.0, 0.0], [50_000.0, 50_000.0]));
        let snap = idx.stats();
        assert_eq!(snap.searches, 1);
        assert!(snap.avg_nodes_per_search().unwrap() >= 1.0);
    }

    #[test]
    fn nearest_matches_brute_force_ordering() {
        let data = dataset_2d(500);
        let mut idx = HintIndex::<2>::new();
        idx.bulk_load(data.clone());
        let p = Point::new([40_000.0, 40_000.0]);
        let got = idx.nearest(&p, 10);
        assert_eq!(got.len(), 10);
        let dists: Vec<f64> = got.iter().map(|n| n.distance).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(dists, sorted, "ascending by distance");
        // The first result really is the global minimum.
        let best = data
            .iter()
            .map(|(r, _)| r.min_dist_sqr(&p).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(got[0].distance, best);
    }
}
