//! The one-dimensional HINT hierarchy: `ℓ+1` levels of domain partitions,
//! level `k` holding `2^k` equal partitions, each interval stored on the
//! canonical (segment-tree) cover of its cell range, subdivided into four
//! classes so most classes are reported **comparison-free**.
//!
//! # Cells and tiles
//!
//! The domain `[lo, hi]` is divided into `2^ℓ` bottom cells; `cell(x)` maps
//! a coordinate to its bottom cell, clamping out-of-domain coordinates into
//! the boundary cells. The mapping is *monotone* (each floating-point step
//! preserves order), which is the only property the comparison-elision
//! proofs below rely on: `cell(x) < cell(y) ⟹ x < y`. A partition at level
//! `k` covers `2^(ℓ-k)` consecutive bottom cells; the canonical cover of an
//! interval's cell range `[cell(start), cell(end)]` is the unique minimal
//! set of whole partitions tiling it exactly (at most two per level).
//!
//! # Classes
//!
//! Each copy of an interval stored at partition `P` is classified:
//!
//! * **Original** (`O`) vs **replica** (`R`): the copy is an original iff
//!   `P` contains `cell(start)` — each interval has exactly one original.
//!   A replica therefore has `cell(start)` *left of* `P`.
//! * **in** vs **aft**: `aft` iff `cell(end)` extends *beyond* `P`'s last
//!   bottom cell, so an `aft` copy's end lies at or past `P`'s right edge.
//!
//! # Storage: frozen base + delta
//!
//! Queries walk one partition per level, so their cost is dominated by how
//! many cache lines the walk touches, not by comparisons. Copies therefore
//! live in two places:
//!
//! * a **frozen base** ([`BaseLevel`]): one flat structure-of-arrays block
//!   per level, partitions laid out consecutively with their four class
//!   segments addressed by an offset table. Built by [`Hint1D::freeze`]
//!   (called at every index (re)build), immutable afterwards, shared across
//!   clones by a single `Arc`. A stab reads a handful of contiguous lines
//!   per level instead of chasing a per-partition heap object.
//! * a **delta**: the original per-partition [`Partition`] objects, holding
//!   only copies inserted *after* the last freeze. Copy-on-write via
//!   [`Arc::make_mut`], so post-freeze mutation stays cheap under the
//!   concurrent snapshot service. A per-level copy counter lets queries
//!   skip the delta entirely for untouched levels — the common case on a
//!   bulk-loaded index.
//!
//! [`Hint1D::remove`] only edits the delta; base-resident copies are
//! retired by the owning [`HintIndex`](super::HintIndex) via tombstones and
//! the next rebuild.
//!
//! # Query
//!
//! A range query `[qs, qe]` visits, per level `k`, the partitions from
//! `a = cell(qs)≫(ℓ-k)` to `b = cell(qe)≫(ℓ-k)` and elides comparisons per
//! class (see [`Hint1D::query`]). A stabbing query is the degenerate case
//! `qs == qe`, where at every level `a == b` and the bottom-heavy classes
//! (`R_aft` everywhere, plus one-sided tests for the rest) make reporting
//! almost comparison-free — the HINT result this engine reproduces.

use segidx_geom::{scan_hi_ge, scan_intersects, scan_lo_le, Rect};
use segidx_obs::trace::{self, Dim};
use std::sync::Arc;

/// Best-effort read prefetch. The per-level walk touches one partition per
/// level at addresses that are all computable up front, so issuing the
/// loads early overlaps what would otherwise be a serial cache-miss chain
/// — the dominant cost of a stab. No-op on non-x86_64 targets.
#[inline(always)]
pub(crate) fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on bad addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Largest bottom-level resolution: `2^16 = 65536` cells.
pub(crate) const MAX_LEVEL_BITS: u32 = 16;
/// Smallest bottom-level resolution: `2^3 = 8` cells.
pub(crate) const MIN_LEVEL_BITS: u32 = 3;

/// One class of copies inside a delta partition, stored as parallel
/// structure-of-arrays planes so the scan kernels test a whole class in
/// one branchless pass.
#[derive(Clone, Debug, Default)]
struct ClassArray {
    starts: Vec<f64>,
    ends: Vec<f64>,
    handles: Vec<u32>,
}

impl ClassArray {
    fn push(&mut self, start: f64, end: f64, handle: u32) {
        self.starts.push(start);
        self.ends.push(end);
        self.handles.push(handle);
    }

    fn remove(&mut self, handle: u32) -> bool {
        match self.handles.iter().position(|&h| h == handle) {
            Some(i) => {
                self.starts.swap_remove(i);
                self.ends.swap_remove(i);
                self.handles.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.handles.len()
    }
}

/// One delta partition: the four class arrays.
#[derive(Clone, Debug, Default)]
pub(crate) struct Partition {
    /// Originals whose end stays inside the partition.
    o_in: ClassArray,
    /// Originals whose end extends beyond the partition.
    o_aft: ClassArray,
    /// Replicas whose end stays inside the partition.
    r_in: ClassArray,
    /// Replicas whose end extends beyond the partition.
    r_aft: ClassArray,
}

impl Partition {
    fn is_empty(&self) -> bool {
        self.o_in.len() == 0
            && self.o_aft.len() == 0
            && self.r_in.len() == 0
            && self.r_aft.len() == 0
    }

    fn originals_empty(&self) -> bool {
        self.o_in.len() == 0 && self.o_aft.len() == 0
    }

    fn copies(&self) -> usize {
        self.o_in.len() + self.o_aft.len() + self.r_in.len() + self.r_aft.len()
    }
}

/// One frozen level: every partition's copies in a single flat SoA block.
///
/// Partition `p` owns the entry range `offs[4p] .. offs[4p+4]`, internally
/// segmented into its four classes in the fixed order
/// `O_in | O_aft | R_in | R_aft` (boundaries `offs[4p+1..=4p+3]`). The
/// offset table is contiguous, so a query locates a partition's classes —
/// and detects an empty partition — from one cache line, and the class
/// scans run over contiguous coordinate planes.
#[derive(Clone, Debug, Default)]
struct BaseLevel {
    /// `4 * partitions + 1` absolute offsets into the entry planes.
    offs: Vec<u32>,
    starts: Vec<f64>,
    ends: Vec<f64>,
    handles: Vec<u32>,
}

impl BaseLevel {
    /// Entry range of classes `c0..c1` (0-based, end-exclusive, `c1 ≤ 4`)
    /// of partition `p`.
    fn seg(&self, p: usize, c0: usize, c1: usize) -> std::ops::Range<usize> {
        self.offs[4 * p + c0] as usize..self.offs[4 * p + c1] as usize
    }

    fn part_is_empty(&self, p: usize) -> bool {
        self.offs[4 * p] == self.offs[4 * p + 4]
    }

    fn originals_empty(&self, p: usize) -> bool {
        self.offs[4 * p] == self.offs[4 * p + 2]
    }

    /// Partition covering both query endpoints (`a == b`): full overlap
    /// test on `O_in`, one-sided on `O_aft`/`R_in`, `R_aft` free. Returns
    /// whether the partition held anything.
    fn emit_covering(
        &self,
        p: usize,
        qs: f64,
        qe: f64,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
    ) -> bool {
        if self.part_is_empty(p) {
            return false;
        }
        emit_both(
            &self.starts,
            &self.ends,
            &self.handles,
            self.seg(p, 0, 1),
            qs,
            qe,
            out,
            scratch,
        );
        emit_start_le(
            &self.starts,
            &self.handles,
            self.seg(p, 1, 2),
            qe,
            out,
            scratch,
        );
        emit_end_ge(
            &self.ends,
            &self.handles,
            self.seg(p, 2, 3),
            qs,
            out,
            scratch,
        );
        out.extend_from_slice(&self.handles[self.seg(p, 3, 4)]);
        true
    }

    /// First partition of a multi-partition scan: `e ≥ qs` on the `in`
    /// classes, `aft` classes free.
    fn emit_first(&self, p: usize, qs: f64, out: &mut Vec<u32>, scratch: &mut Vec<u32>) -> bool {
        if self.part_is_empty(p) {
            return false;
        }
        emit_end_ge(
            &self.ends,
            &self.handles,
            self.seg(p, 0, 1),
            qs,
            out,
            scratch,
        );
        out.extend_from_slice(&self.handles[self.seg(p, 1, 2)]);
        emit_end_ge(
            &self.ends,
            &self.handles,
            self.seg(p, 2, 3),
            qs,
            out,
            scratch,
        );
        out.extend_from_slice(&self.handles[self.seg(p, 3, 4)]);
        true
    }

    /// Middle partition: originals comparison-free, replicas skipped.
    fn emit_middle(&self, p: usize, out: &mut Vec<u32>) -> bool {
        if self.originals_empty(p) {
            return false;
        }
        out.extend_from_slice(&self.handles[self.seg(p, 0, 2)]);
        true
    }

    /// Last partition: `s ≤ qe` on originals, replicas skipped.
    fn emit_last(&self, p: usize, qe: f64, out: &mut Vec<u32>, scratch: &mut Vec<u32>) -> bool {
        if self.originals_empty(p) {
            return false;
        }
        emit_start_le(
            &self.starts,
            &self.handles,
            self.seg(p, 0, 2),
            qe,
            out,
            scratch,
        );
        true
    }
}

/// The 1-D HINT structure for one dimension of a
/// [`HintIndex`](super::HintIndex).
///
/// Cloning costs one `Arc` bump for the whole frozen base plus one per
/// delta partition (copy-on-write via [`Arc::make_mut`]), so an engine
/// snapshot under the concurrent service shares all untouched storage with
/// its predecessor.
#[derive(Clone, Debug)]
pub(crate) struct Hint1D {
    lo: f64,
    hi: f64,
    /// ℓ: the bottom level has `2^ℓ` cells.
    bits: u32,
    /// Frozen flat storage, `base[k]` for level `k`. Empty until the first
    /// [`freeze`](Self::freeze); immutable afterwards.
    base: Arc<Vec<BaseLevel>>,
    /// `levels[k]` holds the `2^k` delta partitions of level `k`,
    /// `k ∈ 0..=ℓ`. Untouched (empty) partitions all share one allocation.
    levels: Vec<Vec<Arc<Partition>>>,
    /// Copies currently stored in the delta of each level — queries skip a
    /// level's delta entirely while its counter is zero.
    delta_copies: Vec<u32>,
    /// Sum of `delta_copies`. While zero, queries run a tight base-only
    /// walk over `active` instead of scanning every level.
    delta_total: u32,
    /// Levels whose frozen base holds at least one copy, ascending.
    /// Rebuilt by [`freeze`](Self::freeze).
    active: Vec<u32>,
}

impl Hint1D {
    /// An empty hierarchy over `[lo, hi]` with `2^bits` bottom cells. A
    /// degenerate domain is widened so the cell width stays positive.
    pub(crate) fn new(lo: f64, hi: f64, bits: u32) -> Self {
        let bits = bits.clamp(MIN_LEVEL_BITS, MAX_LEVEL_BITS);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let levels = (0..=bits)
            .map(|k| {
                let empty = Arc::new(Partition::default());
                vec![empty; 1usize << k]
            })
            .collect();
        Self {
            lo,
            hi,
            bits,
            base: Arc::new(Vec::new()),
            levels,
            delta_copies: vec![0; bits as usize + 1],
            delta_total: 0,
            active: Vec::new(),
        }
    }

    /// ℓ.
    pub(crate) fn bits(&self) -> u32 {
        self.bits
    }

    /// The bottom cell containing `x`, clamped into `[0, 2^ℓ - 1]`. The
    /// mapping is monotone in `x` — the property every comparison-elision
    /// argument reduces to.
    fn cell(&self, x: f64) -> u64 {
        let cells = 1u64 << self.bits;
        let t = (x - self.lo) / (self.hi - self.lo);
        let c = t * cells as f64;
        if c <= 0.0 {
            0
        } else {
            (c as u64).min(cells - 1)
        }
    }

    /// Stores one copy of `[start, end]` (payload `handle`) on every
    /// partition of the canonical cover, in the delta. Returns the number
    /// of copies.
    pub(crate) fn insert(&mut self, start: f64, end: f64, handle: u32) -> u64 {
        let (sa, sb) = (self.cell(start), self.cell(end));
        let mut copies = 0u64;
        let mut level = self.bits as usize;
        let (mut a, mut b) = (sa, sb);
        // Canonical segment-tree cover: take boundary partitions whose
        // sibling is outside [a, b], then ascend one level.
        loop {
            if a == b {
                self.assign(level, a, sa, sb, start, end, handle);
                copies += 1;
                break;
            }
            if a & 1 == 1 {
                self.assign(level, a, sa, sb, start, end, handle);
                copies += 1;
                a += 1;
            }
            if b & 1 == 0 {
                self.assign(level, b, sa, sb, start, end, handle);
                copies += 1;
                b -= 1;
            }
            if a > b {
                break;
            }
            a >>= 1;
            b >>= 1;
            level -= 1;
        }
        copies
    }

    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        level: usize,
        part: u64,
        sa: u64,
        sb: u64,
        start: f64,
        end: f64,
        handle: u32,
    ) {
        let shift = self.bits as usize - level;
        let original = (sa >> shift) == part;
        let aft = sb > (((part + 1) << shift) - 1);
        let p = Arc::make_mut(&mut self.levels[level][part as usize]);
        let class = match (original, aft) {
            (true, false) => &mut p.o_in,
            (true, true) => &mut p.o_aft,
            (false, false) => &mut p.r_in,
            (false, true) => &mut p.r_aft,
        };
        class.push(start, end, handle);
        self.delta_copies[level] += 1;
        self.delta_total += 1;
    }

    /// Removes every **delta** copy of `handle`, locating them by
    /// recomputing the canonical cover of `[start, end]` (the cover is a
    /// pure function of the interval and the domain, so it matches the
    /// insert exactly). Base-resident copies are never touched — the owner
    /// tombstones those and retires them at the next rebuild.
    pub(crate) fn remove(&mut self, start: f64, end: f64, handle: u32) -> u64 {
        let (sa, sb) = (self.cell(start), self.cell(end));
        let mut removed = 0u64;
        let mut level = self.bits as usize;
        let (mut a, mut b) = (sa, sb);
        loop {
            if a == b {
                removed += u64::from(self.unassign(level, a, handle));
                break;
            }
            if a & 1 == 1 {
                removed += u64::from(self.unassign(level, a, handle));
                a += 1;
            }
            if b & 1 == 0 {
                removed += u64::from(self.unassign(level, b, handle));
                b -= 1;
            }
            if a > b {
                break;
            }
            a >>= 1;
            b >>= 1;
            level -= 1;
        }
        removed
    }

    fn unassign(&mut self, level: usize, part: u64, handle: u32) -> bool {
        let p = Arc::make_mut(&mut self.levels[level][part as usize]);
        let hit = p.o_in.remove(handle)
            || p.o_aft.remove(handle)
            || p.r_in.remove(handle)
            || p.r_aft.remove(handle);
        if hit {
            self.delta_copies[level] -= 1;
            self.delta_total -= 1;
        }
        hit
    }

    /// Flattens every delta partition into the frozen per-level SoA base
    /// and resets the delta. Called once per index (re)build, after all
    /// live entries were inserted into a fresh hierarchy.
    pub(crate) fn freeze(&mut self) {
        debug_assert!(self.base.is_empty(), "freeze expects a fresh hierarchy");
        let mut base = Vec::with_capacity(self.bits as usize + 1);
        for parts in &self.levels {
            let total: usize = parts.iter().map(|p| p.copies()).sum();
            let mut bl = BaseLevel {
                offs: Vec::with_capacity(parts.len() * 4 + 1),
                starts: Vec::with_capacity(total),
                ends: Vec::with_capacity(total),
                handles: Vec::with_capacity(total),
            };
            bl.offs.push(0);
            for p in parts {
                for arr in [&p.o_in, &p.o_aft, &p.r_in, &p.r_aft] {
                    bl.starts.extend_from_slice(&arr.starts);
                    bl.ends.extend_from_slice(&arr.ends);
                    bl.handles.extend_from_slice(&arr.handles);
                    bl.offs.push(bl.handles.len() as u32);
                }
            }
            base.push(bl);
        }
        self.active = base
            .iter()
            .enumerate()
            .filter(|(_, bl)| !bl.handles.is_empty())
            .map(|(k, _)| k as u32)
            .collect();
        self.base = Arc::new(base);
        self.levels = (0..=self.bits)
            .map(|k| {
                let empty = Arc::new(Partition::default());
                vec![empty; 1usize << k]
            })
            .collect();
        self.delta_copies = vec![0; self.bits as usize + 1];
        self.delta_total = 0;
    }

    /// Size of the canonical cover of `[start, end]` — the copy count an
    /// insert of that interval produces. Used by invariant checking.
    pub(crate) fn cover_size(&self, start: f64, end: f64) -> usize {
        let (mut a, mut b) = (self.cell(start), self.cell(end));
        let mut copies = 0usize;
        loop {
            if a == b {
                return copies + 1;
            }
            if a & 1 == 1 {
                copies += 1;
                a += 1;
            }
            if b & 1 == 0 {
                copies += 1;
                b -= 1;
            }
            if a > b {
                return copies;
            }
            a >>= 1;
            b >>= 1;
        }
    }

    /// Appends to `out` the handle of every stored interval intersecting
    /// `[qs, qe]` (each exactly once, base and delta copies combined) and
    /// returns the number of non-empty partitions inspected.
    /// `scratch` is kernel scratch, cleared here.
    ///
    /// Per level `k`, with `a`/`b` the partitions containing `cell(qs)`/
    /// `cell(qe)`, the class tests are (✓ = comparison elided):
    ///
    /// | partition  | `O_in`        | `O_aft`  | `R_in`  | `R_aft` |
    /// |------------|---------------|----------|---------|---------|
    /// | `a == b`   | both          | `s ≤ qe` | `e ≥ qs`| ✓       |
    /// | first `a`  | `e ≥ qs`      | ✓        | `e ≥ qs`| ✓       |
    /// | middle     | ✓             | ✓        | skipped | skipped |
    /// | last `b`   | `s ≤ qe`      | `s ≤ qe` | skipped | skipped |
    ///
    /// Soundness of each elision follows from cell monotonicity: a replica
    /// at a scanned first partition has `cell(start)` left of the partition
    /// and hence `start < qs ≤ qe`; an `aft` copy's `cell(end)` lies beyond
    /// a partition containing `cell(qs)`, hence `end > qs`; originals in
    /// middle/last partitions have `cell(start)` past `a`'s tile, hence
    /// `start` reaches at most `qe`'s cell, and symmetrically for ends.
    /// Replicas are skipped outside the first partition because the unique
    /// cover tile containing `cell(qs)` is the only place a left-reaching
    /// interval can be found without duplication.
    pub(crate) fn query(
        &self,
        qs: f64,
        qe: f64,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
    ) -> u64 {
        // Monomorphized tracing split (see `Tree::search_kernel`): one
        // `trace::active()` check per query; the untraced instantiation is
        // bit-identical to the uninstrumented walk.
        if trace::active() {
            self.query_impl::<true>(qs, qe, out, scratch)
        } else {
            self.query_impl::<false>(qs, qe, out, scratch)
        }
    }

    /// The uninstrumented query instantiation, for the `trace_profile`
    /// overhead gate's no-telemetry baseline.
    #[allow(dead_code)]
    pub(crate) fn query_untraced(
        &self,
        qs: f64,
        qe: f64,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
    ) -> u64 {
        self.query_impl::<false>(qs, qe, out, scratch)
    }

    fn query_impl<const TRACED: bool>(
        &self,
        qs: f64,
        qe: f64,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
    ) -> u64 {
        let (qa, qb) = (self.cell(qs), self.cell(qe));
        let mut touched = 0u64;
        // When traced: levels walked and results emitted comparison-free
        // (middle-partition originals + delta `aft` lists), flushed to the
        // active trace's profile once at the end.
        let mut level_walks = 0u64;
        let mut elided = 0u64;
        // Overlap the per-level offset-table misses: every level's visited
        // partition index is known before any level is processed, so the
        // loads can all be in flight together instead of forming a serial
        // dependence chain down the hierarchy.
        for &k in &self.active {
            let bl = &self.base[k as usize];
            let shift = (self.bits - k) as usize;
            prefetch(&bl.offs[4 * (qa >> shift) as usize]);
            if qb != qa {
                prefetch(&bl.offs[4 * (qb >> shift) as usize]);
            }
        }
        if self.delta_total == 0 {
            // Steady-state fast path: the delta is empty, so only the
            // frozen levels recorded in `active` can contribute — a tight,
            // branch-predictable walk over typically half the hierarchy.
            for &k in &self.active {
                let bl = &self.base[k as usize];
                let shift = (self.bits - k) as usize;
                let (a, b) = ((qa >> shift) as usize, (qb >> shift) as usize);
                if TRACED {
                    level_walks += 1;
                }
                if a == b {
                    touched += u64::from(bl.emit_covering(a, qs, qe, out, scratch));
                } else {
                    touched += u64::from(bl.emit_first(a, qs, out, scratch));
                    let mid0 = if TRACED { out.len() } else { 0 };
                    for p in a + 1..b {
                        touched += u64::from(bl.emit_middle(p, out));
                    }
                    if TRACED {
                        elided += (out.len() - mid0) as u64;
                    }
                    touched += u64::from(bl.emit_last(b, qe, out, scratch));
                }
            }
            if TRACED {
                trace::add(Dim::HintLevelWalks, level_walks);
                trace::add(Dim::HintElidedCmp, elided);
            }
            return touched;
        }
        for k in 0..=self.bits as usize {
            let bl = self.base.get(k).filter(|b| !b.handles.is_empty());
            let delta = (self.delta_copies[k] > 0).then(|| &self.levels[k]);
            if bl.is_none() && delta.is_none() {
                continue;
            }
            let shift = self.bits as usize - k;
            let (a, b) = ((qa >> shift) as usize, (qb >> shift) as usize);
            if TRACED {
                level_walks += 1;
            }
            if a == b {
                let mut hit = false;
                if let Some(bl) = bl {
                    hit |= bl.emit_covering(a, qs, qe, out, scratch);
                }
                if let Some(parts) = delta {
                    let p = &parts[a];
                    if !p.is_empty() {
                        hit = true;
                        let full = 0..p.o_in.len();
                        emit_both(
                            &p.o_in.starts,
                            &p.o_in.ends,
                            &p.o_in.handles,
                            full,
                            qs,
                            qe,
                            out,
                            scratch,
                        );
                        emit_start_le(
                            &p.o_aft.starts,
                            &p.o_aft.handles,
                            0..p.o_aft.len(),
                            qe,
                            out,
                            scratch,
                        );
                        emit_end_ge(
                            &p.r_in.ends,
                            &p.r_in.handles,
                            0..p.r_in.len(),
                            qs,
                            out,
                            scratch,
                        );
                        out.extend_from_slice(&p.r_aft.handles);
                    }
                }
                touched += u64::from(hit);
            } else {
                // First partition `a`.
                let mut hit = false;
                if let Some(bl) = bl {
                    hit |= bl.emit_first(a, qs, out, scratch);
                }
                if let Some(parts) = delta {
                    let p = &parts[a];
                    if !p.is_empty() {
                        hit = true;
                        emit_end_ge(
                            &p.o_in.ends,
                            &p.o_in.handles,
                            0..p.o_in.len(),
                            qs,
                            out,
                            scratch,
                        );
                        out.extend_from_slice(&p.o_aft.handles);
                        emit_end_ge(
                            &p.r_in.ends,
                            &p.r_in.handles,
                            0..p.r_in.len(),
                            qs,
                            out,
                            scratch,
                        );
                        out.extend_from_slice(&p.r_aft.handles);
                    }
                }
                touched += u64::from(hit);
                // Middle partitions: originals comparison-free.
                let mid0 = if TRACED { out.len() } else { 0 };
                for p in a + 1..b {
                    let mut hit = false;
                    if let Some(bl) = bl {
                        hit |= bl.emit_middle(p, out);
                    }
                    if let Some(parts) = delta {
                        let d = &parts[p];
                        if !d.originals_empty() {
                            hit = true;
                            out.extend_from_slice(&d.o_in.handles);
                            out.extend_from_slice(&d.o_aft.handles);
                        }
                    }
                    touched += u64::from(hit);
                }
                if TRACED {
                    elided += (out.len() - mid0) as u64;
                }
                // Last partition `b`.
                let mut hit = false;
                if let Some(bl) = bl {
                    hit |= bl.emit_last(b, qe, out, scratch);
                }
                if let Some(parts) = delta {
                    let p = &parts[b];
                    if !p.originals_empty() {
                        hit = true;
                        emit_start_le(
                            &p.o_in.starts,
                            &p.o_in.handles,
                            0..p.o_in.len(),
                            qe,
                            out,
                            scratch,
                        );
                        emit_start_le(
                            &p.o_aft.starts,
                            &p.o_aft.handles,
                            0..p.o_aft.len(),
                            qe,
                            out,
                            scratch,
                        );
                    }
                }
                touched += u64::from(hit);
            }
        }
        if TRACED {
            trace::add(Dim::HintLevelWalks, level_walks);
            trace::add(Dim::HintElidedCmp, elided);
        }
        touched
    }

    /// Number of partitions holding at least one copy (base or delta).
    pub(crate) fn populated_partitions(&self) -> usize {
        (0..=self.bits as usize)
            .map(|k| {
                let bl = self.base.get(k);
                let parts = &self.levels[k];
                (0..parts.len())
                    .filter(|&p| bl.is_some_and(|bl| !bl.part_is_empty(p)) || !parts[p].is_empty())
                    .count()
            })
            .sum()
    }

    /// Total stored copies across base and delta.
    pub(crate) fn total_copies(&self) -> usize {
        let frozen: usize = self.base.iter().map(|bl| bl.handles.len()).sum();
        frozen
            + self
                .levels
                .iter()
                .flatten()
                .map(|p| p.copies())
                .sum::<usize>()
    }

    /// Calls `f` once per stored copy (base and delta) with its handle.
    pub(crate) fn for_each_handle(&self, f: &mut impl FnMut(u32)) {
        for bl in self.base.iter() {
            for &h in &bl.handles {
                f(h);
            }
        }
        for p in self.levels.iter().flatten() {
            for arr in [&p.o_in, &p.o_aft, &p.r_in, &p.r_aft] {
                for &h in &arr.handles {
                    f(h);
                }
            }
        }
    }
}

/// Segment length above which the class scans go through the vectorized
/// segidx-geom kernels. Shorter segments — the common case for a stab's
/// per-level partitions — take a direct scalar loop: the kernels' two-pass
/// index-then-gather and chunked masking only pay off on long runs.
const KERNEL_MIN: usize = 96;

/// Full overlap test `start ≤ qe ∧ end ≥ qs` on `range` of the coordinate
/// planes.
#[allow(clippy::too_many_arguments)]
fn emit_both(
    starts: &[f64],
    ends: &[f64],
    handles: &[u32],
    range: std::ops::Range<usize>,
    qs: f64,
    qe: f64,
    out: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    if range.is_empty() {
        return;
    }
    if range.len() < KERNEL_MIN {
        let (s, e, h) = (
            &starts[range.clone()],
            &ends[range.clone()],
            &handles[range],
        );
        for ((&s, &e), &h) in s.iter().zip(e).zip(h) {
            if s <= qe && e >= qs {
                out.push(h);
            }
        }
        return;
    }
    scratch.clear();
    scan_intersects(
        &Rect::<1>::new([qs], [qe]),
        [&starts[range.clone()]],
        [&ends[range.clone()]],
        scratch,
    );
    let handles = &handles[range];
    for &i in scratch.iter() {
        out.push(handles[i as usize]);
    }
}

/// One-sided `start ≤ qe` on `range` of the start plane.
fn emit_start_le(
    starts: &[f64],
    handles: &[u32],
    range: std::ops::Range<usize>,
    qe: f64,
    out: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    if range.is_empty() {
        return;
    }
    if range.len() < KERNEL_MIN {
        let (s, h) = (&starts[range.clone()], &handles[range]);
        for (&s, &h) in s.iter().zip(h) {
            if s <= qe {
                out.push(h);
            }
        }
        return;
    }
    scratch.clear();
    scan_lo_le(&starts[range.clone()], qe, scratch);
    let handles = &handles[range];
    for &i in scratch.iter() {
        out.push(handles[i as usize]);
    }
}

/// One-sided `end ≥ qs` on `range` of the end plane.
fn emit_end_ge(
    ends: &[f64],
    handles: &[u32],
    range: std::ops::Range<usize>,
    qs: f64,
    out: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    if range.is_empty() {
        return;
    }
    if range.len() < KERNEL_MIN {
        let (e, h) = (&ends[range.clone()], &handles[range]);
        for (&e, &h) in e.iter().zip(h) {
            if e >= qs {
                out.push(h);
            }
        }
        return;
    }
    scratch.clear();
    scan_hi_ge(&ends[range.clone()], qs, scratch);
    let handles = &handles[range];
    for &i in scratch.iter() {
        out.push(handles[i as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic interval soup with spanners, clustered shorts, and
    /// out-of-domain strays.
    fn dataset(n: u32) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = ((i as u64 * 131) % 1000) as f64;
                let len = match i % 9 {
                    0 => 600.0,
                    1 => 0.0,
                    _ => 7.0,
                };
                if i % 23 == 0 {
                    (x - 1500.0, x - 1500.0 + len) // left of the domain
                } else {
                    (x, x + len)
                }
            })
            .collect()
    }

    fn build(data: &[(f64, f64)]) -> Hint1D {
        let mut h = Hint1D::new(0.0, 1000.0, 6);
        for (i, &(s, e)) in data.iter().enumerate() {
            h.insert(s, e, i as u32);
        }
        h
    }

    fn query_sorted(h: &Hint1D, qs: f64, qe: f64) -> Vec<u32> {
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        h.query(qs, qe, &mut out, &mut scratch);
        out.sort_unstable();
        out
    }

    fn brute(data: &[(f64, f64)], qs: f64, qe: f64) -> Vec<u32> {
        data.iter()
            .enumerate()
            .filter(|(_, &(s, e))| s <= qe && e >= qs)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn range_queries_match_brute_force_without_duplicates() {
        let data = dataset(300);
        let h = build(&data);
        for i in 0..80u32 {
            let qs = ((i as u64 * 271) % 1200) as f64 - 100.0;
            let qe = qs + ((i as u64 * 53) % 400) as f64;
            assert_eq!(
                query_sorted(&h, qs, qe),
                brute(&data, qs, qe),
                "[{qs}, {qe}]"
            );
        }
        // Whole-domain and beyond.
        assert_eq!(
            query_sorted(&h, -2000.0, 3000.0),
            brute(&data, -2000.0, 3000.0)
        );
    }

    #[test]
    fn stab_is_the_degenerate_range() {
        let data = dataset(300);
        let h = build(&data);
        for i in 0..150u32 {
            let q = ((i as u64 * 97) % 1100) as f64 - 50.0;
            assert_eq!(query_sorted(&h, q, q), brute(&data, q, q), "stab {q}");
        }
    }

    #[test]
    fn frozen_base_answers_exactly_like_the_delta() {
        let data = dataset(300);
        let delta_only = build(&data);
        let mut frozen = build(&data);
        frozen.freeze();
        assert_eq!(frozen.total_copies(), delta_only.total_copies());
        assert_eq!(
            frozen.populated_partitions(),
            delta_only.populated_partitions()
        );
        for i in 0..80u32 {
            let qs = ((i as u64 * 271) % 1200) as f64 - 100.0;
            let qe = qs + ((i as u64 * 53) % 400) as f64;
            assert_eq!(
                query_sorted(&frozen, qs, qe),
                query_sorted(&delta_only, qs, qe),
                "[{qs}, {qe}]"
            );
            assert_eq!(
                frozen.query(qs, qe, &mut Vec::new(), &mut Vec::new()),
                delta_only.query(qs, qe, &mut Vec::new(), &mut Vec::new()),
                "access counts [{qs}, {qe}]"
            );
        }
    }

    #[test]
    fn post_freeze_inserts_land_in_the_delta_and_are_found() {
        let data = dataset(200);
        let mut h = build(&data);
        h.freeze();
        let mut all = data.clone();
        for i in 0..60u32 {
            let x = ((i as u64 * 173) % 990) as f64;
            let (s, e) = (x, x + 12.0);
            h.insert(s, e, 200 + i);
            all.push((s, e));
        }
        for i in 0..80u32 {
            let qs = ((i as u64 * 271) % 1100) as f64 - 50.0;
            let qe = qs + ((i as u64 * 53) % 300) as f64;
            assert_eq!(
                query_sorted(&h, qs, qe),
                brute(&all, qs, qe),
                "[{qs}, {qe}]"
            );
        }
        // Delta entries can be removed again; base entries cannot (remove
        // recomputes the cover but only edits delta partitions).
        let removed = h.remove(all[200].0, all[200].1, 200);
        assert_eq!(removed as usize, h.cover_size(all[200].0, all[200].1));
        assert_eq!(h.remove(data[0].0, data[0].1, 0), 0, "base copy untouched");
    }

    #[test]
    fn remove_recomputes_the_exact_cover() {
        let data = dataset(120);
        let mut h = build(&data);
        for (i, &(s, e)) in data.iter().enumerate() {
            if i % 3 == 0 {
                let removed = h.remove(s, e, i as u32);
                assert_eq!(removed as usize, h.cover_size(s, e), "handle {i}");
            }
        }
        let keep: Vec<(f64, f64)> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, &d)| d)
            .collect();
        let expect: Vec<u32> = data
            .iter()
            .enumerate()
            .filter(|(i, &(s, e))| i % 3 != 0 && s <= 500.0 && e >= 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(query_sorted(&h, 0.0, 500.0), expect);
        assert_eq!(h.total_copies(), {
            let mut fresh = Hint1D::new(0.0, 1000.0, 6);
            let mut copies = 0usize;
            for (handle, &(s, e)) in keep.iter().enumerate() {
                copies += fresh.insert(s, e, handle as u32) as usize;
            }
            copies
        });
    }

    #[test]
    fn clone_is_copy_on_write() {
        let data = dataset(60);
        let mut h = build(&data);
        h.freeze();
        let snapshot = h.clone();
        let before = query_sorted(&snapshot, 0.0, 1000.0);
        h.insert(10.0, 900.0, 999);
        assert_eq!(
            query_sorted(&snapshot, 0.0, 1000.0),
            before,
            "snapshot frozen"
        );
        assert!(query_sorted(&h, 0.0, 1000.0).contains(&999));
        h.remove(10.0, 900.0, 999);
        assert!(!query_sorted(&h, 0.0, 1000.0).contains(&999));
        assert_eq!(query_sorted(&snapshot, 0.0, 1000.0), before);
    }
}
