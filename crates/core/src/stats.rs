//! Logical index statistics — including the paper's performance metric,
//! the number of index nodes accessed.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the tree.
///
/// `node_accesses` is the paper's metric: every node fetched during a search
/// (and, separately tallied, during maintenance) counts as one access,
/// independent of any buffering below the index. Counters bumped from
/// `&self` methods (search) are atomic, which also makes the tree [`Sync`]:
/// any number of threads may search one index concurrently.
#[derive(Debug, Default)]
pub struct TreeStats {
    /// Nodes accessed by search operations.
    pub(crate) search_node_accesses: AtomicU64,
    /// Number of search operations.
    pub(crate) searches: AtomicU64,
    /// Records returned by search operations (cumulative result-set sizes),
    /// the numerator of the running selectivity estimate used to pre-size
    /// result buffers.
    pub(crate) search_results: AtomicU64,
    /// Nodes accessed by insert/delete maintenance.
    pub(crate) maintenance_node_accesses: u64,
    /// Leaf node splits.
    pub(crate) leaf_splits: u64,
    /// Internal node splits.
    pub(crate) internal_splits: u64,
    /// Spanning records promoted to a parent after a split (paper §3.1.2).
    pub(crate) promotions: u64,
    /// Spanning records demoted after a region expansion (paper §3.1.1).
    pub(crate) demotions: u64,
    /// Spanning records relinked to a different branch without demotion.
    pub(crate) relinks: u64,
    /// Records cut into spanning + remnant portions (paper §3.1.1).
    pub(crate) cuts: u64,
    /// Remnant portions inserted as a result of cuts.
    pub(crate) remnants_inserted: u64,
    /// Spanning records stored (gross, including re-stores after demotion).
    pub(crate) spanning_stores: u64,
    /// Node overflows that could not be resolved by a split (too few
    /// branches) and were absorbed elastically.
    pub(crate) elastic_overflows: u64,
    /// Pairs of sibling leaves merged by Skeleton coalescing (paper §4).
    pub(crate) coalesces: u64,
    /// Spanning records demoted to the leaf level to relieve spanning
    /// pressure on a full non-leaf node (smallest-first eviction).
    pub(crate) spanning_evictions: u64,
    /// Leaf entries moved to an adjacent sibling instead of splitting
    /// (Skeleton deferred splitting).
    pub(crate) redistributions: u64,
    /// Entries removed by R\*-style forced reinsertion.
    pub(crate) forced_reinserts: u64,
}

/// A point-in-time copy of [`TreeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Nodes accessed by search operations.
    pub search_node_accesses: u64,
    /// Number of search operations.
    pub searches: u64,
    /// Records returned by search operations (cumulative result-set sizes).
    #[serde(default)]
    pub search_results: u64,
    /// Nodes accessed by insert/delete maintenance.
    pub maintenance_node_accesses: u64,
    /// Leaf node splits.
    pub leaf_splits: u64,
    /// Internal node splits.
    pub internal_splits: u64,
    /// Spanning records promoted to a parent after a split.
    pub promotions: u64,
    /// Spanning records demoted after a region expansion.
    pub demotions: u64,
    /// Spanning records relinked to a different branch without demotion.
    pub relinks: u64,
    /// Records cut into spanning + remnant portions.
    pub cuts: u64,
    /// Remnant portions inserted as a result of cuts.
    pub remnants_inserted: u64,
    /// Spanning records stored (gross).
    pub spanning_stores: u64,
    /// Unresolvable node overflows absorbed elastically.
    pub elastic_overflows: u64,
    /// Sibling leaf merges performed by coalescing.
    pub coalesces: u64,
    /// Spanning records demoted to the leaf level under spanning pressure.
    pub spanning_evictions: u64,
    /// Leaf entries moved to an adjacent sibling instead of splitting.
    pub redistributions: u64,
    /// Entries removed by R\*-style forced reinsertion.
    pub forced_reinserts: u64,
}

impl TreeStats {
    /// Flushes the node accesses of one completed search in a single atomic
    /// add. The search kernels accumulate accesses in a local counter and
    /// call this once per search, so concurrent readers never contend on the
    /// counter cache line inside the traversal loop.
    pub(crate) fn record_search_accesses(&self, accesses: u64) {
        self.search_node_accesses
            .fetch_add(accesses, Ordering::Relaxed);
    }

    pub(crate) fn record_search(&self) {
        self.searches.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes the counters of one completed search (one search, its node
    /// accesses, and its result count) — three atomic adds per search total.
    pub(crate) fn flush_search(&self, accesses: u64, results: u64) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.search_node_accesses
            .fetch_add(accesses, Ordering::Relaxed);
        self.search_results.fetch_add(results, Ordering::Relaxed);
    }

    /// Running selectivity estimate: mean records returned per search so
    /// far, rounded up. Zero before any searches. Used to pre-size result
    /// buffers.
    pub(crate) fn hits_estimate(&self) -> usize {
        let searches = self.searches.load(Ordering::Relaxed);
        if searches == 0 {
            return 0;
        }
        self.search_results
            .load(Ordering::Relaxed)
            .div_ceil(searches) as usize
    }

    /// Copies the current values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            search_node_accesses: self.search_node_accesses.load(Ordering::Relaxed),
            searches: self.searches.load(Ordering::Relaxed),
            search_results: self.search_results.load(Ordering::Relaxed),
            maintenance_node_accesses: self.maintenance_node_accesses,
            leaf_splits: self.leaf_splits,
            internal_splits: self.internal_splits,
            promotions: self.promotions,
            demotions: self.demotions,
            relinks: self.relinks,
            cuts: self.cuts,
            remnants_inserted: self.remnants_inserted,
            spanning_stores: self.spanning_stores,
            elastic_overflows: self.elastic_overflows,
            coalesces: self.coalesces,
            spanning_evictions: self.spanning_evictions,
            redistributions: self.redistributions,
            forced_reinserts: self.forced_reinserts,
        }
    }

    /// Resets the search-side counters (searches and their node accesses),
    /// leaving maintenance history intact. The experiment harness calls this
    /// between QAR sweeps.
    pub fn reset_search_counters(&self) {
        self.search_node_accesses.store(0, Ordering::Relaxed);
        self.searches.store(0, Ordering::Relaxed);
        self.search_results.store(0, Ordering::Relaxed);
    }
}

/// Cloning copies the current counter values into fresh (unshared)
/// atomics — used by [`Tree::clone`](crate::tree::Tree) so a snapshot
/// carries the statistics it was taken with, decoupled from the live tree.
impl Clone for TreeStats {
    fn clone(&self) -> Self {
        Self {
            search_node_accesses: AtomicU64::new(self.search_node_accesses.load(Ordering::Relaxed)),
            searches: AtomicU64::new(self.searches.load(Ordering::Relaxed)),
            search_results: AtomicU64::new(self.search_results.load(Ordering::Relaxed)),
            maintenance_node_accesses: self.maintenance_node_accesses,
            leaf_splits: self.leaf_splits,
            internal_splits: self.internal_splits,
            promotions: self.promotions,
            demotions: self.demotions,
            relinks: self.relinks,
            cuts: self.cuts,
            remnants_inserted: self.remnants_inserted,
            spanning_stores: self.spanning_stores,
            elastic_overflows: self.elastic_overflows,
            coalesces: self.coalesces,
            spanning_evictions: self.spanning_evictions,
            redistributions: self.redistributions,
            forced_reinserts: self.forced_reinserts,
        }
    }
}

impl StatsSnapshot {
    /// Average nodes accessed per search — the Y axis of the paper's
    /// Graphs 1–6. `None` before any searches.
    pub fn avg_nodes_per_search(&self) -> Option<f64> {
        (self.searches > 0).then(|| self.search_node_accesses as f64 / self.searches as f64)
    }

    /// The activity since `earlier` was taken (saturating per-counter
    /// subtraction). Lets the experiment harness measure one QAR sweep
    /// without destroying the tree's cumulative history the way
    /// [`TreeStats::reset_search_counters`] does.
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            search_node_accesses: self
                .search_node_accesses
                .saturating_sub(earlier.search_node_accesses),
            searches: self.searches.saturating_sub(earlier.searches),
            search_results: self.search_results.saturating_sub(earlier.search_results),
            maintenance_node_accesses: self
                .maintenance_node_accesses
                .saturating_sub(earlier.maintenance_node_accesses),
            leaf_splits: self.leaf_splits.saturating_sub(earlier.leaf_splits),
            internal_splits: self.internal_splits.saturating_sub(earlier.internal_splits),
            promotions: self.promotions.saturating_sub(earlier.promotions),
            demotions: self.demotions.saturating_sub(earlier.demotions),
            relinks: self.relinks.saturating_sub(earlier.relinks),
            cuts: self.cuts.saturating_sub(earlier.cuts),
            remnants_inserted: self
                .remnants_inserted
                .saturating_sub(earlier.remnants_inserted),
            spanning_stores: self.spanning_stores.saturating_sub(earlier.spanning_stores),
            elastic_overflows: self
                .elastic_overflows
                .saturating_sub(earlier.elastic_overflows),
            coalesces: self.coalesces.saturating_sub(earlier.coalesces),
            spanning_evictions: self
                .spanning_evictions
                .saturating_sub(earlier.spanning_evictions),
            redistributions: self.redistributions.saturating_sub(earlier.redistributions),
            forced_reinserts: self
                .forced_reinserts
                .saturating_sub(earlier.forced_reinserts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_counters_and_average() {
        let s = TreeStats::default();
        s.flush_search(2, 5);
        s.flush_search(1, 0);
        let snap = s.snapshot();
        assert_eq!(snap.searches, 2);
        assert_eq!(snap.search_node_accesses, 3);
        assert_eq!(snap.search_results, 5);
        assert_eq!(snap.avg_nodes_per_search(), Some(1.5));
    }

    #[test]
    fn hits_estimate_tracks_mean_result_size() {
        let s = TreeStats::default();
        assert_eq!(s.hits_estimate(), 0, "no searches yet");
        s.flush_search(1, 10);
        s.flush_search(1, 5);
        assert_eq!(s.hits_estimate(), 8, "ceil(15 / 2)");
    }

    #[test]
    fn diff_measures_a_window_without_reset() {
        let mut s = TreeStats::default();
        s.flush_search(4, 1);
        s.leaf_splits = 2;
        let earlier = s.snapshot();
        s.flush_search(6, 2);
        s.flush_search(2, 0);
        s.leaf_splits += 1;
        let d = s.snapshot().diff(&earlier);
        assert_eq!(d.searches, 2);
        assert_eq!(d.search_node_accesses, 8);
        assert_eq!(d.leaf_splits, 1);
        assert_eq!(d.avg_nodes_per_search(), Some(4.0));
        // The cumulative history is untouched.
        assert_eq!(s.snapshot().searches, 3);
    }

    #[test]
    fn reset_clears_only_search_side() {
        let mut s = TreeStats::default();
        s.flush_search(1, 3);
        s.leaf_splits = 7;
        s.reset_search_counters();
        let snap = s.snapshot();
        assert_eq!(snap.searches, 0);
        assert_eq!(snap.search_node_accesses, 0);
        assert_eq!(snap.search_results, 0);
        assert_eq!(snap.leaf_splits, 7);
        assert_eq!(snap.avg_nodes_per_search(), None);
    }
}
