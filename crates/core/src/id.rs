//! Identifier newtypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user data record (tuple).
///
/// The index stores `(rect, RecordId)` pairs; the record id points at the
/// caller's tuple, exactly as the paper's external index records point at
/// data records. When a record is *cut* into spanning and remnant portions
/// (paper §3.1.1), every portion carries the same `RecordId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

impl RecordId {
    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for RecordId {
    fn from(v: u64) -> Self {
        RecordId(v)
    }
}

/// Identifier of an index node within the tree's node arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena slot.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_roundtrip() {
        let r: RecordId = 7u64.into();
        assert_eq!(r.raw(), 7);
        assert_eq!(format!("{r:?}"), "r7");
    }

    #[test]
    fn node_id_debug() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }
}
