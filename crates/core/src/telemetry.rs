//! Opt-in wall-clock telemetry for the index engine.
//!
//! The paper's metric — logical node accesses — is always counted by
//! [`TreeStats`](crate::stats::TreeStats). Wall-clock latency and structural
//! event tracing cost `Instant` reads and (for events) dynamic dispatch, so
//! they are **opt-in**: a [`Tree`](crate::Tree) holds
//! `Option<Arc<TreeTelemetry>>` defaulting to `None`, and a disabled tree
//! pays exactly one null check per operation — no clock reads, no virtual
//! calls.
//!
//! Enable with [`Tree::set_telemetry`](crate::Tree::set_telemetry) (or the
//! [`IntervalIndex`](crate::api::IntervalIndex) method of the same name):
//!
//! ```
//! use segidx_core::{IndexConfig, RecordId, Tree, TreeTelemetry};
//! use segidx_geom::Rect;
//! use segidx_obs::{EventKind, RingBufferSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingBufferSink::new(1024));
//! let telemetry = Arc::new(TreeTelemetry::with_sink(sink.clone()));
//! let mut tree: Tree<1> = Tree::new(IndexConfig::rtree());
//! tree.set_telemetry(Some(Arc::clone(&telemetry)));
//!
//! for i in 0..200u64 {
//!     let lo = i as f64;
//!     tree.insert(Rect::new([lo], [lo + 3.0]), RecordId(i));
//! }
//! tree.search(&Rect::new([50.0], [60.0]));
//!
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.insert.count, 200);
//! assert_eq!(snap.search.count, 1);
//! assert!(!sink.events_of(EventKind::LeafSplit).is_empty());
//! ```

use segidx_obs::{Event, EventKind, HistogramSnapshot, LatencyHistogram, ObsSink};
use std::sync::Arc;

/// Per-operation latency histograms plus an optional structural event sink.
///
/// One `TreeTelemetry` may be shared by any number of trees (the bench
/// harness gives each variant its own so latencies stay attributable).
/// Histograms record **nanoseconds** of wall time per public operation.
#[derive(Debug, Default)]
pub struct TreeTelemetry {
    /// Range-search latency (`search*` family, including batch queries).
    pub search: LatencyHistogram,
    /// Stabbing-query latency.
    pub stab: LatencyHistogram,
    /// Nearest-neighbor query latency.
    pub nearest: LatencyHistogram,
    /// Insert latency (including any cut/split/reinsertion cascade).
    pub insert: LatencyHistogram,
    /// Delete latency (including condensation and reinsertion).
    pub delete: LatencyHistogram,
    /// Bulk-load latency (one observation per `bulk_load` call).
    pub bulk_load: LatencyHistogram,
    /// Structural event sink; `None` skips event construction entirely.
    sink: Option<Arc<dyn ObsSink>>,
}

impl TreeTelemetry {
    /// Latency histograms only; structural events are dropped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latency histograms plus a structural event sink.
    pub fn with_sink(sink: Arc<dyn ObsSink>) -> Self {
        Self {
            sink: Some(sink),
            ..Self::default()
        }
    }

    /// The installed event sink, if any.
    pub fn sink(&self) -> Option<&Arc<dyn ObsSink>> {
        self.sink.as_ref()
    }

    /// Forwards a structural event to the sink, if one is installed.
    #[inline]
    pub(crate) fn emit(&self, kind: EventKind, node: u64, level: u32, detail: u64) {
        if let Some(sink) = &self.sink {
            sink.event(Event::new(kind).node(node).level(level).detail(detail));
        }
    }

    /// A point-in-time copy of every histogram.
    pub fn snapshot(&self) -> TreeTelemetrySnapshot {
        TreeTelemetrySnapshot {
            search: self.search.snapshot(),
            stab: self.stab.snapshot(),
            nearest: self.nearest.snapshot(),
            insert: self.insert.snapshot(),
            delete: self.delete.snapshot(),
            bulk_load: self.bulk_load.snapshot(),
        }
    }
}

/// A point-in-time copy of [`TreeTelemetry`]'s histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeTelemetrySnapshot {
    /// Range-search latency.
    pub search: HistogramSnapshot,
    /// Stabbing-query latency.
    pub stab: HistogramSnapshot,
    /// Nearest-neighbor query latency.
    pub nearest: HistogramSnapshot,
    /// Insert latency.
    pub insert: HistogramSnapshot,
    /// Delete latency.
    pub delete: HistogramSnapshot,
    /// Bulk-load latency.
    pub bulk_load: HistogramSnapshot,
}

impl TreeTelemetrySnapshot {
    /// The activity since `earlier` (saturating per-histogram subtraction).
    pub fn diff(&self, earlier: &TreeTelemetrySnapshot) -> TreeTelemetrySnapshot {
        TreeTelemetrySnapshot {
            search: self.search.diff(&earlier.search),
            stab: self.stab.diff(&earlier.stab),
            nearest: self.nearest.diff(&earlier.nearest),
            insert: self.insert.diff(&earlier.insert),
            delete: self.delete.diff(&earlier.delete),
            bulk_load: self.bulk_load.diff(&earlier.bulk_load),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segidx_obs::RingBufferSink;

    #[test]
    fn snapshot_and_diff_cover_every_operation() {
        let t = TreeTelemetry::new();
        t.search.record(100);
        t.stab.record(200);
        t.nearest.record(300);
        t.insert.record(400);
        t.delete.record(500);
        t.bulk_load.record(600);
        let earlier = t.snapshot();
        t.search.record(1_000);
        let d = t.snapshot().diff(&earlier);
        assert_eq!(d.search.count, 1);
        assert_eq!(d.search.sum, 1_000);
        assert_eq!(d.insert.count, 0);
    }

    #[test]
    fn emit_without_sink_is_a_no_op() {
        let t = TreeTelemetry::new();
        t.emit(EventKind::LeafSplit, 1, 0, 0);
        assert!(t.sink().is_none());
    }

    #[test]
    fn emit_reaches_the_sink() {
        let sink = Arc::new(RingBufferSink::new(8));
        let t = TreeTelemetry::with_sink(sink.clone());
        t.emit(EventKind::Promotion, 42, 3, 7);
        let events = sink.events_of(EventKind::Promotion);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].node, 42);
        assert_eq!(events[0].level, 3);
        assert_eq!(events[0].detail, 7);
    }
}
