//! The four index variants of the paper, behind one trait.
//!
//! | Type | Paper name | Construction |
//! |------|------------|--------------|
//! | [`RTree`] | R-Tree | empty, grows by splitting |
//! | [`SRTree`] | SR-Tree | empty, grows by splitting, segment extensions |
//! | [`SkeletonRTree`] | Skeleton R-Tree | pre-partitioned + coalescing |
//! | [`SkeletonSRTree`] | Skeleton SR-Tree | pre-partitioned + coalescing + segment extensions |

use crate::config::{CoalesceConfig, IndexConfig};
use crate::id::RecordId;
use crate::skeleton::{build_skeleton, DistributionPredictor, SkeletonSpec};
use crate::stats::StatsSnapshot;
use crate::telemetry::TreeTelemetry;
use crate::tree::{Neighbor, Tree};
use segidx_geom::{Point, Rect};
use std::sync::Arc;

/// The common interface of the four paper variants, object-safe so the
/// experiment harness can sweep over `Box<dyn IntervalIndex<2>>`.
pub trait IntervalIndex<const D: usize> {
    /// Inserts a record.
    fn insert(&mut self, rect: Rect<D>, record: RecordId);
    /// All records intersecting `query`, deduplicated and sorted by id.
    fn search(&self, query: &Rect<D>) -> Vec<RecordId>;
    /// Runs every query in `queries` and returns per-query results in input
    /// order, bit-identical to calling [`search`](Self::search) per query.
    /// Tree-backed variants fan the batch out across worker threads (see
    /// [`Tree::search_batch`]); the default runs the queries serially.
    fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        queries.iter().map(|q| self.search(q)).collect()
    }
    /// All records containing point `p`, deduplicated and sorted by id —
    /// the degenerate window query.
    fn stab(&self, p: &Point<D>) -> Vec<RecordId>;
    /// Runs every stab in `points` and returns per-point results in input
    /// order, bit-identical to calling [`stab`](Self::stab) per point. The
    /// default runs the stabs serially.
    fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        points.iter().map(|p| self.stab(p)).collect()
    }
    /// The `k` records nearest to `p`, ascending by minimum rectangle
    /// distance.
    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>>;
    /// Loads `items` into the index. Engines with a packed construction
    /// path use it when the index is still empty; the default (and the
    /// non-empty fallback) is an insert loop.
    fn bulk_load(&mut self, items: Vec<(Rect<D>, RecordId)>) {
        for (rect, record) in items {
            self.insert(rect, record);
        }
    }
    /// Index nodes accessed by a search for `query` (the paper's metric).
    fn count_search_accesses(&self, query: &Rect<D>) -> u64;
    /// Removes a record by its original rectangle and id.
    fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool;
    /// Number of logical records.
    fn len(&self) -> usize;
    /// Number of physical index records (exceeds [`len`](Self::len) when
    /// records have been cut into portions).
    fn entry_count(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Statistics snapshot.
    fn stats(&self) -> StatsSnapshot;
    /// Resets the search-side statistics.
    fn reset_search_stats(&self);
    /// Number of index nodes.
    fn node_count(&self) -> usize;
    /// Tree height.
    fn height(&self) -> u32;
    /// Structural invariant check (empty = consistent).
    fn check_invariants(&self) -> Vec<String>;
    /// Human-readable variant name, matching the paper.
    fn variant_name(&self) -> &'static str;
    /// Installs (or clears) wall-clock telemetry (see
    /// [`crate::telemetry`]). The default is a no-op for index types
    /// without latency instrumentation.
    fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
        let _ = telemetry;
    }
    /// The installed telemetry, if any.
    fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
        None
    }
}

macro_rules! delegate_tree_methods {
    () => {
        fn insert(&mut self, rect: Rect<D>, record: RecordId) {
            self.tree_mut().insert(rect, record);
        }
        fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
            self.tree().search(query)
        }
        fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
            self.tree().search_batch(queries)
        }
        fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
            self.tree().stab(p)
        }
        fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
            self.tree().stab_batch(points)
        }
        fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
            self.tree().nearest(p, k)
        }
        fn bulk_load(&mut self, items: Vec<(Rect<D>, RecordId)>) {
            if self.tree().len() == 0 {
                let config = self.tree().config().clone();
                let telemetry = self.tree().telemetry().cloned();
                let mut tree = crate::bulk::bulk_load(config, items);
                tree.set_telemetry(telemetry);
                *self.tree_mut() = tree;
            } else {
                for (rect, record) in items {
                    self.tree_mut().insert(rect, record);
                }
            }
        }
        fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
            self.tree().count_search_accesses(query)
        }
        fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
            self.tree_mut().delete(rect, record)
        }
        fn len(&self) -> usize {
            self.tree().len()
        }
        fn entry_count(&self) -> usize {
            self.tree().entry_count()
        }
        fn stats(&self) -> StatsSnapshot {
            self.tree().stats()
        }
        fn reset_search_stats(&self) {
            self.tree().reset_search_stats();
        }
        fn node_count(&self) -> usize {
            self.tree().node_count()
        }
        fn height(&self) -> u32 {
            self.tree().height()
        }
        fn check_invariants(&self) -> Vec<String> {
            self.tree().check_invariants()
        }
        fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
            self.tree_mut().set_telemetry(telemetry);
        }
        fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
            self.tree().telemetry().cloned()
        }
    };
}

/// Guttman's R-Tree with the paper's node-size ladder — the baseline index.
#[derive(Debug)]
pub struct RTree<const D: usize>(Tree<D>);

impl<const D: usize> RTree<D> {
    /// An empty R-Tree with the paper's configuration.
    pub fn new() -> Self {
        Self(Tree::new(IndexConfig::rtree()))
    }

    /// An empty R-Tree with a custom configuration; the segment flag is
    /// forced off.
    pub fn with_config(mut config: IndexConfig) -> Self {
        config.segment = false;
        Self(Tree::new(config))
    }

    /// The underlying engine.
    pub fn tree(&self) -> &Tree<D> {
        &self.0
    }

    /// The underlying engine, mutably.
    pub fn tree_mut(&mut self) -> &mut Tree<D> {
        &mut self.0
    }

    /// Consumes the wrapper, returning the engine (e.g. to seed a
    /// `ConcurrentIndex`).
    pub fn into_tree(self) -> Tree<D> {
        self.0
    }
}

impl<const D: usize> Default for RTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> IntervalIndex<D> for RTree<D> {
    delegate_tree_methods!();
    fn variant_name(&self) -> &'static str {
        "R-Tree"
    }
}

/// The Segment R-Tree (paper §3): an R-Tree storing spanning index records
/// in non-leaf nodes, with record cutting, promotion, and demotion.
#[derive(Debug)]
pub struct SRTree<const D: usize>(Tree<D>);

impl<const D: usize> SRTree<D> {
    /// An empty SR-Tree with the paper's configuration (2/3 of non-leaf
    /// entries reserved for branches).
    pub fn new() -> Self {
        Self(Tree::new(IndexConfig::srtree()))
    }

    /// An empty SR-Tree with a custom configuration; the segment flag is
    /// forced on.
    pub fn with_config(mut config: IndexConfig) -> Self {
        config.segment = true;
        Self(Tree::new(config))
    }

    /// The underlying engine.
    pub fn tree(&self) -> &Tree<D> {
        &self.0
    }

    /// The underlying engine, mutably.
    pub fn tree_mut(&mut self) -> &mut Tree<D> {
        &mut self.0
    }

    /// Consumes the wrapper, returning the engine (e.g. to seed a
    /// `ConcurrentIndex`).
    pub fn into_tree(self) -> Tree<D> {
        self.0
    }
}

impl<const D: usize> Default for SRTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> IntervalIndex<D> for SRTree<D> {
    delegate_tree_methods!();
    fn variant_name(&self) -> &'static str {
        "SR-Tree"
    }
}

/// Shared state machine for the two Skeleton variants: either still
/// buffering tuples for distribution prediction, or built and live.
#[derive(Debug)]
enum SkeletonCore<const D: usize> {
    Buffering {
        config: IndexConfig,
        predictor: DistributionPredictor<D>,
        buffered: Vec<(Rect<D>, RecordId)>,
        /// Telemetry installed before construction; attached at build time
        /// (buffer scans are not index operations and are not timed).
        telemetry: Option<Arc<TreeTelemetry>>,
    },
    Built(Tree<D>),
}

impl<const D: usize> SkeletonCore<D> {
    fn from_spec(config: IndexConfig, spec: &SkeletonSpec<D>) -> Self {
        SkeletonCore::Built(build_skeleton(config, spec))
    }

    fn with_prediction(
        config: IndexConfig,
        domain: Rect<D>,
        expected: usize,
        buffer: usize,
    ) -> Self {
        SkeletonCore::Buffering {
            config,
            predictor: DistributionPredictor::new(domain, expected, buffer),
            buffered: Vec::new(),
            telemetry: None,
        }
    }

    fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        match self {
            SkeletonCore::Built(tree) => tree.insert(rect, record),
            SkeletonCore::Buffering {
                predictor,
                buffered,
                ..
            } => {
                let full = predictor.offer(rect);
                buffered.push((rect, record));
                if full {
                    self.build();
                }
            }
        }
    }

    /// Builds the skeleton from the buffered prefix and replays the buffer.
    fn build(&mut self) {
        let SkeletonCore::Buffering {
            config,
            predictor,
            buffered,
            telemetry,
        } = std::mem::replace(self, SkeletonCore::Built(Tree::new(IndexConfig::default())))
        else {
            return;
        };
        let (spec, _samples) = predictor.finish();
        let mut tree = build_skeleton(config, &spec);
        tree.set_telemetry(telemetry);
        for (rect, record) in buffered {
            tree.insert(rect, record);
        }
        *self = SkeletonCore::Built(tree);
    }

    fn set_telemetry(&mut self, t: Option<Arc<TreeTelemetry>>) {
        match self {
            SkeletonCore::Built(tree) => tree.set_telemetry(t),
            SkeletonCore::Buffering { telemetry, .. } => *telemetry = t,
        }
    }

    fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
        match self {
            SkeletonCore::Built(tree) => tree.telemetry().cloned(),
            SkeletonCore::Buffering { telemetry, .. } => telemetry.clone(),
        }
    }

    fn tree(&self) -> Option<&Tree<D>> {
        match self {
            SkeletonCore::Built(t) => Some(t),
            SkeletonCore::Buffering { .. } => None,
        }
    }

    fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        match self {
            SkeletonCore::Built(t) => t.search(query),
            SkeletonCore::Buffering { buffered, .. } => {
                let mut out: Vec<RecordId> = buffered
                    .iter()
                    .filter(|(r, _)| r.intersects(query))
                    .map(|(_, id)| *id)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        match self {
            SkeletonCore::Built(t) => t.stab(p),
            SkeletonCore::Buffering { buffered, .. } => {
                let mut out: Vec<RecordId> = buffered
                    .iter()
                    .filter(|(r, _)| r.contains_point(p))
                    .map(|(_, id)| *id)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        match self {
            SkeletonCore::Built(t) => t.nearest(p, k),
            SkeletonCore::Buffering { buffered, .. } => {
                let mut all: Vec<(f64, RecordId, Rect<D>)> = buffered
                    .iter()
                    .map(|(r, id)| (r.min_dist_sqr(p), *id, *r))
                    .collect();
                all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                all.truncate(k);
                all.into_iter()
                    .map(|(d2, record, rect)| Neighbor {
                        record,
                        rect,
                        distance: d2.sqrt(),
                    })
                    .collect()
            }
        }
    }

    fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        match self {
            SkeletonCore::Built(t) => t.delete(rect, record),
            SkeletonCore::Buffering { buffered, .. } => {
                let _ = rect;
                let before = buffered.len();
                buffered.retain(|(_, id)| *id != record);
                buffered.len() != before
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            SkeletonCore::Built(t) => t.len(),
            SkeletonCore::Buffering { buffered, .. } => buffered.len(),
        }
    }
}

macro_rules! skeleton_variant {
    ($name:ident, $display:literal, $segment:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name<const D: usize>(SkeletonCore<D>);

        impl<const D: usize> $name<D> {
            /// The paper's configuration for this variant (coalescing every
            /// 1,000 insertions among the 10 least-frequently-modified
            /// nodes).
            pub fn paper_config() -> IndexConfig {
                IndexConfig {
                    segment: $segment,
                    coalesce: Some(CoalesceConfig::default()),
                    ..IndexConfig::default()
                }
            }

            /// Builds the skeleton immediately from a known distribution.
            pub fn from_spec(spec: &SkeletonSpec<D>) -> Self {
                Self(SkeletonCore::from_spec(Self::paper_config(), spec))
            }

            /// Builds the skeleton immediately with a custom configuration
            /// (the segment flag is forced to this variant's value).
            pub fn from_spec_with_config(mut config: IndexConfig, spec: &SkeletonSpec<D>) -> Self {
                config.segment = $segment;
                Self(SkeletonCore::from_spec(config, spec))
            }

            /// Uses distribution prediction (paper §4): buffer the first
            /// `buffer` tuples, histogram them, then build and adapt. The
            /// paper buffers the first 10,000 tuples of 100K–200K inputs.
            pub fn with_prediction(domain: Rect<D>, expected_tuples: usize, buffer: usize) -> Self {
                Self(SkeletonCore::with_prediction(
                    Self::paper_config(),
                    domain,
                    expected_tuples,
                    buffer,
                ))
            }

            /// Distribution prediction with a custom configuration.
            pub fn with_prediction_config(
                mut config: IndexConfig,
                domain: Rect<D>,
                expected_tuples: usize,
                buffer: usize,
            ) -> Self {
                config.segment = $segment;
                Self(SkeletonCore::with_prediction(
                    config,
                    domain,
                    expected_tuples,
                    buffer,
                ))
            }

            /// The underlying engine, once built (`None` while the
            /// prediction buffer is still filling).
            pub fn tree(&self) -> Option<&Tree<D>> {
                self.0.tree()
            }

            /// Forces skeleton construction from whatever has been buffered
            /// so far. No-op once built.
            pub fn finalize(&mut self) {
                if matches!(self.0, SkeletonCore::Buffering { .. }) {
                    self.0.build();
                }
            }

            /// Consumes the wrapper, returning the built engine (finalizing
            /// the prediction buffer first if necessary), e.g. to seed a
            /// `ConcurrentIndex`.
            pub fn into_tree(mut self) -> Tree<D> {
                self.finalize();
                match self.0 {
                    SkeletonCore::Built(t) => t,
                    SkeletonCore::Buffering { .. } => unreachable!("finalize() builds"),
                }
            }
        }

        impl<const D: usize> IntervalIndex<D> for $name<D> {
            fn insert(&mut self, rect: Rect<D>, record: RecordId) {
                self.0.insert(rect, record);
            }
            fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
                self.0.search(query)
            }
            fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
                match self.0.tree() {
                    Some(t) => t.search_batch(queries),
                    // Buffering phase: linear scans are cheap; run serially.
                    None => queries.iter().map(|q| self.0.search(q)).collect(),
                }
            }
            fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
                self.0.stab(p)
            }
            fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
                match self.0.tree() {
                    Some(t) => t.stab_batch(points),
                    // Buffering phase: linear scans are cheap; run serially.
                    None => points.iter().map(|p| self.0.stab(p)).collect(),
                }
            }
            fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
                self.0.nearest(p, k)
            }
            fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
                match self.0.tree() {
                    Some(t) => t.count_search_accesses(query),
                    None => 0,
                }
            }
            fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
                self.0.delete(rect, record)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn entry_count(&self) -> usize {
                self.0
                    .tree()
                    .map(|t| t.entry_count())
                    .unwrap_or(self.0.len())
            }
            fn stats(&self) -> StatsSnapshot {
                self.0.tree().map(|t| t.stats()).unwrap_or_default()
            }
            fn reset_search_stats(&self) {
                if let Some(t) = self.0.tree() {
                    t.reset_search_stats();
                }
            }
            fn node_count(&self) -> usize {
                self.0.tree().map(|t| t.node_count()).unwrap_or(0)
            }
            fn height(&self) -> u32 {
                self.0.tree().map(|t| t.height()).unwrap_or(0)
            }
            fn check_invariants(&self) -> Vec<String> {
                self.0
                    .tree()
                    .map(|t| t.check_invariants())
                    .unwrap_or_default()
            }
            fn variant_name(&self) -> &'static str {
                $display
            }
            fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
                self.0.set_telemetry(telemetry);
            }
            fn telemetry(&self) -> Option<Arc<TreeTelemetry>> {
                self.0.telemetry()
            }
        }
    };
}

skeleton_variant!(
    SkeletonRTree,
    "Skeleton R-Tree",
    false,
    "The Skeleton R-Tree (paper §4): a pre-constructed, adaptable R-Tree. \
     The domain is pre-partitioned from estimated size and distribution \
     (optionally predicted from a buffered input prefix) and adapts through \
     node splitting and coalescing. Searches during the buffering phase \
     scan the buffer linearly and report zero node accesses."
);

skeleton_variant!(
    SkeletonSRTree,
    "Skeleton SR-Tree",
    true,
    "The Skeleton SR-Tree (paper §4): the Skeleton pre-construction and \
     coalescing combined with the segment extensions (spanning records, \
     cutting, promotion/demotion). The paper's overall best performer for \
     interval data with non-uniform length distributions. Searches during \
     the buffering phase scan the buffer linearly and report zero node \
     accesses."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Rect<2> {
        Rect::new([0.0, 0.0], [100_000.0, 100_000.0])
    }

    fn exercise(index: &mut dyn IntervalIndex<2>, n: u64) {
        for i in 0..n {
            let x = ((i * 37) % 90_000) as f64;
            let y = ((i * 113) % 90_000) as f64;
            let len = if i % 13 == 0 { 15_000.0 } else { 60.0 };
            index.insert(
                Rect::new([x, y], [(x + len).min(100_000.0), y]),
                RecordId(i),
            );
        }
    }

    #[test]
    fn all_variants_agree_on_results() {
        let mut variants: Vec<Box<dyn IntervalIndex<2>>> = vec![
            Box::new(RTree::<2>::new()),
            Box::new(SRTree::<2>::new()),
            Box::new(SkeletonRTree::<2>::with_prediction(domain(), 3_000, 300)),
            Box::new(SkeletonSRTree::<2>::with_prediction(domain(), 3_000, 300)),
        ];
        for v in variants.iter_mut() {
            exercise(v.as_mut(), 3_000);
            assert_eq!(v.len(), 3_000, "{}", v.variant_name());
            assert!(
                v.check_invariants().is_empty(),
                "{}: {:?}",
                v.variant_name(),
                v.check_invariants()
            );
        }
        let query = Rect::new([10_000.0, 10_000.0], [30_000.0, 40_000.0]);
        let expected = variants[0].search(&query);
        assert!(!expected.is_empty());
        for v in &variants[1..] {
            assert_eq!(
                v.search(&query),
                expected,
                "{} disagrees with R-Tree",
                v.variant_name()
            );
        }
    }

    #[test]
    fn skeleton_buffering_phase_works() {
        let mut s = SkeletonSRTree::<2>::with_prediction(domain(), 10_000, 1_000);
        for i in 0..500u64 {
            s.insert(
                Rect::new([i as f64, 0.0], [i as f64 + 10.0, 0.0]),
                RecordId(i),
            );
        }
        assert!(s.tree().is_none(), "still buffering");
        assert_eq!(s.len(), 500);
        // Searches against the buffer work.
        let hits = s.search(&Rect::new([0.0, 0.0], [5.0, 5.0]));
        assert_eq!(hits.len(), 6, "segments 0..=5 overlap [0,5]");
        // Deletes against the buffer work.
        assert!(s.delete(&Rect::new([0.0, 0.0], [10.0, 0.0]), RecordId(0)));
        assert_eq!(s.len(), 499);
        // Force construction.
        s.finalize();
        assert!(s.tree().is_some());
        assert_eq!(s.len(), 499);
        let hits = s.search(&Rect::new([0.0, 0.0], [5.0, 5.0]));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(RTree::<2>::new().variant_name(), "R-Tree");
        assert_eq!(SRTree::<2>::new().variant_name(), "SR-Tree");
        assert_eq!(
            SkeletonRTree::<2>::with_prediction(domain(), 10, 1).variant_name(),
            "Skeleton R-Tree"
        );
        assert_eq!(
            SkeletonSRTree::<2>::with_prediction(domain(), 10, 1).variant_name(),
            "Skeleton SR-Tree"
        );
    }

    #[test]
    fn default_traits() {
        let r: RTree<2> = Default::default();
        assert!(r.is_empty());
        let s: SRTree<2> = Default::default();
        assert!(s.is_empty());
    }
}
