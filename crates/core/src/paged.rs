//! Executing searches directly against a persisted index through the
//! buffer pool — the paper's actual operating regime, where "only a small
//! portion of the index may reside in main memory at a given time" (§1).
//!
//! [`PagedSearcher`] never materializes the whole tree: each node visited
//! is fetched (and decoded) through the [`BufferPool`], so the pool's
//! byte budget — not the index size — bounds memory. Logical node accesses
//! equal the in-memory engine's by construction; physical page reads depend
//! on the pool size, which lets experiments sweep the memory/I-O trade-off
//! the paper's variable node sizes were designed around.

use crate::id::RecordId;
use segidx_geom::{Point, Rect};
use segidx_storage::{BufferPool, ByteReader, PageId, Result, StorageError};
use std::cell::Cell;

const TREE_MAGIC: u32 = 0x5347_5452; // must match persist.rs

/// Decoded, borrowed view of one on-page node.
struct PagedNode<const D: usize> {
    is_leaf: bool,
    /// Leaf entries (leaf nodes).
    entries: Vec<(Rect<D>, RecordId)>,
    /// Branch regions and child pages (internal nodes).
    branches: Vec<(Rect<D>, PageId)>,
    /// Spanning index records (internal nodes).
    spanning: Vec<(Rect<D>, RecordId)>,
}

/// A read-only search engine over a persisted index.
#[derive(Debug)]
pub struct PagedSearcher<'a, const D: usize> {
    pool: &'a BufferPool,
    root: PageId,
    len: usize,
    logical_accesses: Cell<u64>,
}

impl<'a, const D: usize> PagedSearcher<'a, D> {
    /// Opens the index whose metadata page is `meta` (as returned by
    /// [`crate::persist::save`]).
    pub fn open(pool: &'a BufferPool, meta: PageId) -> Result<Self> {
        let (root, len) = pool.with_page(meta, |page| -> Result<(PageId, usize)> {
            let mut r = ByteReader::new(page.payload());
            let magic = r.get_u32()?;
            if magic != TREE_MAGIC {
                return Err(StorageError::BadMeta(format!("bad tree magic {magic:#x}")));
            }
            let version = r.get_u32()?;
            if version != 1 {
                return Err(StorageError::BadMeta(format!(
                    "unsupported tree format {version}"
                )));
            }
            let dims = r.get_u32()? as usize;
            if dims != D {
                return Err(StorageError::BadMeta(format!(
                    "tree has {dims} dimensions, expected {D}"
                )));
            }
            let root = PageId(r.get_u64()?);
            let len = r.get_u64()? as usize;
            Ok((root, len))
        })??;
        Ok(Self {
            pool,
            root,
            len,
            logical_accesses: Cell::new(0),
        })
    }

    /// Number of logical records in the persisted index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the persisted index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical node accesses performed so far (the paper's metric; compare
    /// with the pool's physical `reads` to see buffering at work).
    pub fn logical_accesses(&self) -> u64 {
        self.logical_accesses.get()
    }

    /// All records intersecting `query`, deduplicated and sorted —
    /// identical semantics (and identical logical node accesses) to
    /// [`crate::tree::Tree::search`], but executed page-by-page.
    pub fn search(&self, query: &Rect<D>) -> Result<Vec<RecordId>> {
        let sp = segidx_obs::trace::span("paged.search");
        let mut visited = 0u64;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page_id) = stack.pop() {
            self.logical_accesses.set(self.logical_accesses.get() + 1);
            visited += 1;
            let node = self.read_node(page_id)?;
            if node.is_leaf {
                for (rect, record) in &node.entries {
                    if rect.intersects(query) {
                        out.push(*record);
                    }
                }
            } else {
                for (rect, record) in &node.spanning {
                    if rect.intersects(query) {
                        out.push(*record);
                    }
                }
                for (rect, child) in &node.branches {
                    if rect.intersects(query) {
                        stack.push(*child);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        sp.items(visited);
        Ok(out)
    }

    /// Stabbing query at a point.
    pub fn stab(&self, p: &Point<D>) -> Result<Vec<RecordId>> {
        self.search(&Rect::from_point(*p))
    }

    fn read_node(&self, page_id: PageId) -> Result<PagedNode<D>> {
        self.pool
            .with_page(page_id, |page| -> Result<PagedNode<D>> {
                let mut r = ByteReader::new(page.payload());
                let _level = r.get_u32()?;
                let is_leaf = r.get_u8()? == 1;
                let _mod_count = r.get_u64()?;
                if is_leaf {
                    let count = r.get_u32()? as usize;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let rect = read_rect::<D>(&mut r)?;
                        entries.push((rect, RecordId(r.get_u64()?)));
                    }
                    Ok(PagedNode {
                        is_leaf,
                        entries,
                        branches: Vec::new(),
                        spanning: Vec::new(),
                    })
                } else {
                    let branch_count = r.get_u32()? as usize;
                    let span_count = r.get_u32()? as usize;
                    let mut branches = Vec::with_capacity(branch_count);
                    for _ in 0..branch_count {
                        let rect = read_rect::<D>(&mut r)?;
                        branches.push((rect, PageId(r.get_u64()?)));
                    }
                    let mut spanning = Vec::with_capacity(span_count);
                    for _ in 0..span_count {
                        let rect = read_rect::<D>(&mut r)?;
                        let record = RecordId(r.get_u64()?);
                        let _linked = r.get_u64()?;
                        spanning.push((rect, record));
                    }
                    Ok(PagedNode {
                        is_leaf,
                        entries: Vec::new(),
                        branches,
                        spanning,
                    })
                }
            })?
    }
}

fn read_rect<const D: usize>(r: &mut ByteReader<'_>) -> Result<Rect<D>> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for v in lo.iter_mut() {
        *v = r.get_f64()?;
    }
    for v in hi.iter_mut() {
        *v = r.get_f64()?;
    }
    Rect::checked(lo, hi).ok_or_else(|| StorageError::Decode("invalid rect bounds".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::persist;
    use crate::tree::Tree;
    use segidx_storage::{BufferPoolConfig, DiskManager};
    use std::sync::Arc;

    fn build_and_save(n: u64, name: &str) -> (Tree<2>, Arc<DiskManager>, PageId) {
        let dir = std::env::temp_dir().join(format!("segidx-paged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut tree: Tree<2> = Tree::new(IndexConfig::srtree());
        for i in 0..n {
            let x = ((i * 37) % 5_000) as f64;
            let y = ((i * 113) % 5_000) as f64;
            let len = if i % 9 == 0 { 2_000.0 } else { 25.0 };
            tree.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
        }
        let disk = Arc::new(DiskManager::create(dir.join(name)).unwrap());
        let meta = persist::save(&tree, &disk).unwrap();
        (tree, disk, meta)
    }

    #[test]
    fn paged_search_matches_in_memory() {
        let (tree, disk, meta) = build_and_save(3_000, "match.db");
        let pool = BufferPool::new(Arc::clone(&disk));
        let searcher: PagedSearcher<2> = PagedSearcher::open(&pool, meta).unwrap();
        assert_eq!(searcher.len(), tree.len());
        for q in [
            Rect::new([0.0, 0.0], [500.0, 500.0]),
            Rect::new([1000.0, 0.0], [1010.0, 5000.0]),
            Rect::new([0.0, 0.0], [5000.0, 5000.0]),
        ] {
            assert_eq!(searcher.search(&q).unwrap(), tree.search(&q));
        }
    }

    #[test]
    fn logical_accesses_match_engine() {
        let (tree, disk, meta) = build_and_save(2_000, "logical.db");
        let pool = BufferPool::new(Arc::clone(&disk));
        let searcher: PagedSearcher<2> = PagedSearcher::open(&pool, meta).unwrap();
        let q = Rect::new([100.0, 100.0], [2_000.0, 2_000.0]);
        let engine_accesses = tree.count_search_accesses(&q);
        let before = searcher.logical_accesses();
        searcher.search(&q).unwrap();
        assert_eq!(searcher.logical_accesses() - before, engine_accesses);
    }

    #[test]
    fn small_pool_rereads_pages_large_pool_caches() {
        let (_, disk, meta) = build_and_save(4_000, "pool.db");
        let q = Rect::new([0.0, 0.0], [5_000.0, 5_000.0]);

        // Tiny pool: second scan must fault pages in again.
        let tiny = BufferPool::with_config(
            Arc::clone(&disk),
            BufferPoolConfig {
                capacity_bytes: 8 * 1024,
            },
        );
        let s: PagedSearcher<2> = PagedSearcher::open(&tiny, meta).unwrap();
        s.search(&q).unwrap();
        let after_first = tiny.stats().snapshot().pool_misses;
        s.search(&q).unwrap();
        let after_second = tiny.stats().snapshot().pool_misses;
        assert!(
            after_second > after_first,
            "tiny pool must miss again on the second scan"
        );

        // Generous pool: the second scan is all hits.
        let big = BufferPool::with_config(
            Arc::clone(&disk),
            BufferPoolConfig {
                capacity_bytes: 64 * 1024 * 1024,
            },
        );
        let s: PagedSearcher<2> = PagedSearcher::open(&big, meta).unwrap();
        s.search(&q).unwrap();
        let misses_first = big.stats().snapshot().pool_misses;
        s.search(&q).unwrap();
        let misses_second = big.stats().snapshot().pool_misses;
        assert_eq!(
            misses_first, misses_second,
            "warm pool serves the second scan without physical reads"
        );
    }

    #[test]
    fn stab_through_pages() {
        let (tree, disk, meta) = build_and_save(1_000, "stab.db");
        let pool = BufferPool::new(Arc::clone(&disk));
        let searcher: PagedSearcher<2> = PagedSearcher::open(&pool, meta).unwrap();
        let p = Point::new([1_000.0, 1_000.0]);
        assert_eq!(searcher.stab(&p).unwrap(), tree.stab(&p));
    }

    #[test]
    fn wrong_meta_page_rejected() {
        let (_, disk, _) = build_and_save(100, "badmeta.db");
        let pool = BufferPool::new(Arc::clone(&disk));
        // Page 0 is a tree node, not the metadata page.
        let err = PagedSearcher::<2>::open(&pool, PageId(0)).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }
}
