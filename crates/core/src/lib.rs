//! # Segment Indexes
//!
//! A faithful, production-quality implementation of
//! *Segment Indexes: Dynamic Indexing Techniques for Multi-Dimensional
//! Interval Data* (Curtis P. Kolovson and Michael Stonebraker, SIGMOD 1991).
//!
//! The paper extends paged, multi-way, tree-structured indexes — Guttman's
//! R-Tree in particular — with three tactics for interval data whose length
//! distribution is highly non-uniform (many short intervals, a few very long
//! ones, as in historical databases):
//!
//! 1. **Spanning index records in non-leaf nodes**: an interval is stored in
//!    the highest node whose child region it spans, so long intervals no
//!    longer elongate leaf regions and inflate overlap (§2.1.1, §3).
//! 2. **Variable node sizes**: node size doubles at each higher level so
//!    that spanning records do not destroy fanout (§2.1.2).
//! 3. **Skeleton indexes**: the index is pre-constructed from an estimated
//!    size and distribution (possibly *predicted* from a buffered prefix of
//!    the input) and then adapts by splitting and coalescing (§4).
//!
//! The four index variants evaluated in the paper are all here, sharing one
//! engine:
//!
//! ```
//! use segidx_core::{RTree, SRTree, SkeletonSRTree, IntervalIndex, RecordId};
//! use segidx_geom::Rect;
//!
//! let mut index = SRTree::<2>::new();
//! // A salary history: horizontal segments in (time, salary) space.
//! index.insert(Rect::new([1985.0, 30_000.0], [1991.0, 30_000.0]), RecordId(1));
//! index.insert(Rect::new([1986.0, 55_000.0], [1988.5, 55_000.0]), RecordId(2));
//!
//! // Who earned between 50K and 60K during 1987?
//! let hits = index.search(&Rect::new([1987.0, 50_000.0], [1988.0, 60_000.0]));
//! assert_eq!(hits, vec![RecordId(2)]);
//! ```
//!
//! See [`api`] for the variant types, [`tree`] for the engine, and
//! [`skeleton`] for pre-construction, prediction, and coalescing.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod baseline;
pub mod bulk;
pub mod config;
pub mod entry;
pub mod hint;
pub mod id;
pub mod node;
pub mod paged;
pub mod persist;
pub mod skeleton;
pub mod stats;
pub mod telemetry;
pub mod tree;

pub use api::{IntervalIndex, RTree, SRTree, SkeletonRTree, SkeletonSRTree};
pub use config::{CoalesceConfig, IndexConfig, SplitAlgorithm};
pub use hint::{HintIndex, HybridIndex, QueryShape};
pub use id::{NodeId, RecordId};
pub use paged::PagedSearcher;
pub use skeleton::{build_skeleton, DistributionPredictor, Histogram, SkeletonSpec};
pub use stats::StatsSnapshot;
pub use telemetry::{TreeTelemetry, TreeTelemetrySnapshot};
pub use tree::{SearchCursor, Tree};
