//! Nearest-neighbor search (best-first traversal with `MINDIST` pruning).
//!
//! Not part of the 1991 paper, but standard R-Tree functionality a library
//! user expects. Works on every variant, including segment mode: spanning
//! index records are considered when their host node is expanded, and —
//! because a cut record's portions all carry the same [`RecordId`] — a
//! record is reported once, at the distance of its nearest portion.

use super::Tree;
use crate::id::RecordId;
use crate::node::NodeKind;
use segidx_geom::{scan_min_dist_sqr, Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A record returned by [`Tree::nearest`], with its distance to the query
/// point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<const D: usize> {
    /// The record id.
    pub record: RecordId,
    /// The record's geometry (the nearest stored portion for cut records).
    pub rect: Rect<D>,
    /// Euclidean distance from the query point to the geometry.
    pub distance: f64,
}

/// Heap item ordered by ascending distance (min-heap via reversed cmp).
enum HeapItem<const D: usize> {
    Node {
        id: crate::id::NodeId,
        dist_sqr: f64,
    },
    Record {
        record: RecordId,
        rect: Rect<D>,
        dist_sqr: f64,
    },
}

impl<const D: usize> HeapItem<D> {
    fn dist_sqr(&self) -> f64 {
        match self {
            HeapItem::Node { dist_sqr, .. } | HeapItem::Record { dist_sqr, .. } => *dist_sqr,
        }
    }
}

impl<const D: usize> PartialEq for HeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sqr() == other.dist_sqr()
    }
}
impl<const D: usize> Eq for HeapItem<D> {}
impl<const D: usize> PartialOrd for HeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want nearest first.
        other
            .dist_sqr()
            .partial_cmp(&self.dist_sqr())
            .unwrap_or(Ordering::Equal)
    }
}

impl<const D: usize> Tree<D> {
    /// The `k` records nearest to `p` (by Euclidean distance to their
    /// rectangles), nearest first. Ties are broken arbitrarily. Counts node
    /// accesses like a search.
    pub fn nearest(&self, p: &Point<D>, k: usize) -> Vec<Neighbor<D>> {
        let t0 = self.obs_start();
        let sp = segidx_obs::trace::span("tree.nearest");
        let mut out: Vec<Neighbor<D>> = Vec::with_capacity(k);
        if k == 0 {
            self.stats.flush_search(0, 0);
            self.obs_record(|o| &o.nearest, t0);
            return out;
        }
        // Node accesses accumulate locally and flush to the shared counters
        // once at the end, like the search kernel.
        let mut accesses: u64 = 0;
        let mut heap: BinaryHeap<HeapItem<D>> = BinaryHeap::new();
        heap.push(HeapItem::Node {
            id: self.root,
            dist_sqr: 0.0,
        });
        // Cut records surface multiple portions; report each id once (its
        // nearest portion pops first, so correctness is preserved).
        let mut reported: Vec<RecordId> = Vec::new();
        // Scratch for the per-node MINDIST kernel.
        let mut dists: Vec<f64> = Vec::new();

        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Record {
                    record,
                    rect,
                    dist_sqr,
                } => {
                    if reported.contains(&record) {
                        continue;
                    }
                    reported.push(record);
                    out.push(Neighbor {
                        record,
                        rect,
                        distance: dist_sqr.sqrt(),
                    });
                    if out.len() == k {
                        break;
                    }
                }
                HeapItem::Node { id, .. } => {
                    accesses += 1;
                    let node = self.node(id);
                    segidx_obs::trace::level_visit(node.level, 1);
                    // Score the whole node with one branchless MINDIST pass
                    // over its coordinate planes, then gather.
                    match &node.kind {
                        NodeKind::Leaf { entries } => {
                            let (los, his) = entries.planes();
                            scan_min_dist_sqr(p, los, his, &mut dists);
                            for (i, &d) in dists.iter().enumerate() {
                                heap.push(HeapItem::Record {
                                    record: entries.record(i),
                                    rect: entries.rect(i),
                                    dist_sqr: d,
                                });
                            }
                        }
                        NodeKind::Internal { branches, spanning } => {
                            let (los, his) = spanning.planes();
                            scan_min_dist_sqr(p, los, his, &mut dists);
                            for (i, &d) in dists.iter().enumerate() {
                                heap.push(HeapItem::Record {
                                    record: spanning.record(i),
                                    rect: spanning.rect(i),
                                    dist_sqr: d,
                                });
                            }
                            let (los, his) = branches.planes();
                            scan_min_dist_sqr(p, los, his, &mut dists);
                            for (i, &d) in dists.iter().enumerate() {
                                heap.push(HeapItem::Node {
                                    id: branches.child(i),
                                    dist_sqr: d,
                                });
                            }
                        }
                    }
                }
            }
        }
        self.stats.flush_search(accesses, out.len() as u64);
        sp.items(out.len() as u64);
        drop(sp);
        self.obs_record(|o| &o.nearest, t0);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::{Point, Rect};

    fn brute_nearest(
        records: &[(Rect<2>, RecordId)],
        p: &Point<2>,
        k: usize,
    ) -> Vec<(RecordId, f64)> {
        let mut v: Vec<(RecordId, f64)> =
            records.iter().map(|(r, id)| (*id, r.min_dist(p))).collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v.truncate(k);
        v
    }

    fn dataset(n: u64, long_every: u64) -> Vec<(Rect<2>, RecordId)> {
        (0..n)
            .map(|i| {
                let x = ((i * 137) % 10_000) as f64;
                let y = ((i * 59) % 10_000) as f64;
                let len = if long_every > 0 && i % long_every == 0 {
                    3_000.0
                } else {
                    10.0
                };
                (Rect::new([x, y], [x + len, y]), RecordId(i))
            })
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        for config in [IndexConfig::rtree(), IndexConfig::srtree()] {
            let records = dataset(2_000, 9);
            let mut t: Tree<2> = Tree::new(config);
            for (r, id) in &records {
                t.insert(*r, *id);
            }
            for probe in [
                Point::new([0.0, 0.0]),
                Point::new([5_000.0, 5_000.0]),
                Point::new([9_999.0, 1.0]),
                Point::new([-500.0, 20_000.0]),
            ] {
                let got = t.nearest(&probe, 10);
                let want = brute_nearest(&records, &probe, 10);
                assert_eq!(got.len(), 10);
                for (g, (_, wd)) in got.iter().zip(want.iter()) {
                    // Distances must match exactly rank-by-rank (ids may
                    // differ under ties).
                    assert!(
                        (g.distance - wd).abs() < 1e-9,
                        "distance mismatch at {probe:?}: {} vs {}",
                        g.distance,
                        wd
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_k_zero_and_oversized() {
        let records = dataset(50, 0);
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for (r, id) in &records {
            t.insert(*r, *id);
        }
        assert!(t.nearest(&Point::origin(), 0).is_empty());
        let all = t.nearest(&Point::origin(), 500);
        assert_eq!(all.len(), 50, "k beyond size returns everything");
        // Sorted by distance.
        for w in all.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn nearest_reports_cut_records_once() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        // Row-aligned grid data plus long row-aligned segments, so the long
        // segments intersect (and span) existing node regions.
        let records: Vec<(Rect<2>, RecordId)> = (0..1_500u64)
            .map(|i| {
                let x = (i % 50) as f64 * 10.0;
                let y = (i / 50) as f64 * 10.0;
                let len = if i % 5 == 0 { 450.0 } else { 4.0 };
                (Rect::new([x, y], [x + len, y]), RecordId(i))
            })
            .collect();
        for (r, id) in &records {
            t.insert(*r, *id);
        }
        assert!(t.stats().spanning_stores > 0);
        let got = t.nearest(&Point::new([5_000.0, 5_000.0]), 100);
        let mut ids: Vec<_> = got.iter().map(|n| n.record).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), got.len(), "no duplicate ids in kNN result");
    }

    #[test]
    fn empty_tree_nearest() {
        let t: Tree<2> = Tree::new(IndexConfig::rtree());
        assert!(t.nearest(&Point::origin(), 5).is_empty());
    }
}
