//! The unified index engine behind all four paper variants.
//!
//! A [`Tree`] is an R-Tree (Guttman 1984) whose behavior is extended by
//! [`IndexConfig`] flags:
//!
//! * `segment: true` enables the SR-Tree extensions of paper §3 — spanning
//!   index records in non-leaf nodes, record cutting, demotion, and
//!   promotion;
//! * a pre-built node structure (see [`crate::skeleton`]) plus
//!   `coalesce: Some(..)` yields the Skeleton variants of paper §4.
//!
//! The paper's four experimental index types are exactly:
//!
//! | Variant            | `segment` | pre-built + coalescing |
//! |--------------------|-----------|------------------------|
//! | R-Tree             | no        | no                     |
//! | SR-Tree            | yes       | no                     |
//! | Skeleton R-Tree    | no        | yes                    |
//! | Skeleton SR-Tree   | yes       | yes                    |

mod batch;
mod delete;
mod insert;
mod inspect;
mod join;
mod nearest;
mod search;
mod split;
mod validate;

pub use inspect::{LevelReport, TreeReport};
pub use nearest::Neighbor;
pub use search::SearchCursor;

use crate::config::IndexConfig;
use crate::id::{NodeId, RecordId};
use crate::node::{Arena, Node};
use crate::stats::{StatsSnapshot, TreeStats};
use crate::telemetry::TreeTelemetry;
use segidx_geom::Rect;
use segidx_obs::{EventKind, LatencyHistogram};
use std::sync::Arc;
use std::time::Instant;

/// A record portion queued for reinsertion.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingInsert<const D: usize> {
    pub rect: Rect<D>,
    pub record: RecordId,
    /// Pressure-relief demotions reinsert straight to the leaf level so the
    /// record does not bounce back onto the full node it was evicted from.
    pub allow_spanning: bool,
}

/// A paged, multi-way, dynamic index over `D`-dimensional interval data.
///
/// See the [module documentation](self) for how configuration flags map to
/// the paper's index variants; most users should construct trees through the
/// wrappers in [`crate::api`].
#[derive(Debug)]
pub struct Tree<const D: usize> {
    pub(crate) arena: Arena<D>,
    pub(crate) root: NodeId,
    pub(crate) config: IndexConfig,
    /// Logical records inserted (a cut record still counts once).
    pub(crate) len: usize,
    /// Physical index records stored (leaf entries + spanning entries).
    pub(crate) entry_count: usize,
    /// Records awaiting reinsertion (remnants of cuts, demoted spanning
    /// records, entries from condensed nodes). Always drained before a
    /// public mutating method returns.
    pub(crate) pending: Vec<PendingInsert<D>>,
    /// Insertions since the last coalescing pass.
    pub(crate) inserts_since_coalesce: u64,
    /// Whether R\*-style forced reinsertion may still fire during the
    /// current mutating operation (re-armed by each public mutation).
    pub(crate) reinsert_armed: bool,
    pub(crate) stats: TreeStats,
    /// Opt-in wall-clock telemetry; `None` (the default) costs one null
    /// check per operation and skips all clock reads and event dispatch.
    pub(crate) obs: Option<Arc<TreeTelemetry>>,
}

/// Cloning a tree is a *snapshot*: the arena shares every node with the
/// original by refcount (see [`crate::node::Arena`]), so the cost is one
/// `Arc` clone per node — no entry data is copied. Mutating either copy
/// afterwards copies only the nodes that mutation touches (copy-on-write),
/// which is what makes epoch-published snapshots in `segidx-concurrent`
/// cheap: a group commit that touched *k* of *n* nodes pays O(k) node
/// copies, not O(n).
impl<const D: usize> Clone for Tree<D> {
    fn clone(&self) -> Self {
        Self {
            arena: self.arena.clone(),
            root: self.root,
            config: self.config.clone(),
            len: self.len,
            entry_count: self.entry_count,
            pending: self.pending.clone(),
            inserts_since_coalesce: self.inserts_since_coalesce,
            reinsert_armed: self.reinsert_armed,
            stats: self.stats.clone(),
            obs: self.obs.clone(),
        }
    }
}

impl<const D: usize> Tree<D> {
    /// Creates an empty tree (a single empty leaf as root).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`IndexConfig::validate`]).
    pub fn new(config: IndexConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid index config: {e}"));
        let mut arena = Arena::new();
        let root = arena.alloc(Node::leaf());
        Self {
            arena,
            root,
            config,
            len: 0,
            entry_count: 0,
            pending: Vec::new(),
            inserts_since_coalesce: 0,
            reinsert_armed: false,
            stats: TreeStats::default(),
            obs: None,
        }
    }

    /// Builds a tree around a pre-constructed arena (used by the Skeleton
    /// builder and the bulk loader).
    pub(crate) fn from_parts(config: IndexConfig, arena: Arena<D>, root: NodeId) -> Self {
        Self {
            arena,
            root,
            config,
            len: 0,
            entry_count: 0,
            pending: Vec::new(),
            inserts_since_coalesce: 0,
            reinsert_armed: false,
            stats: TreeStats::default(),
            obs: None,
        }
    }

    /// The configuration this tree was built with.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of logical records inserted and not deleted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of physical index records (leaf entries plus spanning
    /// entries). Exceeds [`Tree::len`] when records have been cut.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Number of index nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of live nodes whose storage is shared with a snapshot clone
    /// of this tree (see [`Clone`] above). Zero when no clone is alive.
    pub fn shared_node_count(&self) -> usize {
        self.arena.shared_nodes()
    }

    /// Height of the tree (a lone leaf root has height 1).
    pub fn height(&self) -> u32 {
        self.arena.get(self.root).level + 1
    }

    /// The root's covering region (`None` for an empty tree).
    pub fn root_region(&self) -> Option<Rect<D>> {
        self.arena.get(self.root).content_mbr()
    }

    /// A snapshot of the tree's statistics, including the paper's
    /// node-access metric.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets search-side counters (see
    /// [`TreeStats::reset_search_counters`]).
    pub fn reset_search_stats(&self) {
        self.stats.reset_search_counters();
    }

    /// Installs (or clears) wall-clock telemetry. See [`crate::telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<TreeTelemetry>>) {
        self.obs = telemetry;
    }

    /// The installed telemetry, if any.
    pub fn telemetry(&self) -> Option<&Arc<TreeTelemetry>> {
        self.obs.as_ref()
    }

    /// Starts a latency measurement iff telemetry is installed: the disabled
    /// path is a single null check with no clock read.
    #[inline]
    pub(crate) fn obs_start(&self) -> Option<Instant> {
        self.obs.as_ref().map(|_| Instant::now())
    }

    /// Completes a latency measurement started by [`Tree::obs_start`],
    /// recording into the histogram `pick` selects.
    #[inline]
    pub(crate) fn obs_record(
        &self,
        pick: fn(&TreeTelemetry) -> &LatencyHistogram,
        start: Option<Instant>,
    ) {
        if let (Some(obs), Some(t0)) = (&self.obs, start) {
            pick(obs).record_duration(t0.elapsed());
        }
    }

    /// Fires a structural event for `node` iff telemetry with a sink is
    /// installed. Call *after* bumping the matching [`TreeStats`] counter.
    #[inline]
    pub(crate) fn emit(&self, kind: EventKind, node: NodeId) {
        if let Some(obs) = &self.obs {
            if obs.sink().is_some() {
                let level = self.arena.get(node).level;
                obs.emit(kind, u64::from(node.raw()), level, 0);
            }
        }
    }

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node<D> {
        self.arena.get(id)
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node<D> {
        self.arena.get_mut(id)
    }

    /// The *stored region* of a node: the rectangle recorded in its parent's
    /// branch entry. The root has no stored region.
    pub(crate) fn region_of(&self, id: NodeId) -> Option<Rect<D>> {
        let parent = self.node(id).parent?;
        let p = self.node(parent);
        let bi = p
            .branch_index_of(id)
            .expect("parent pointer without matching branch");
        Some(p.branches().rect(bi))
    }

    /// Counts one maintenance node access.
    #[inline]
    pub(crate) fn touch_maintenance(&mut self, _id: NodeId) {
        self.stats.maintenance_node_accesses += 1;
    }

    /// Reinserts queued record portions until the queue is empty. Every
    /// public mutating method calls this before returning.
    pub(crate) fn drain_pending(&mut self) {
        while let Some(p) = self.pending.pop() {
            self.insert_portion_inner(p.rect, p.record, p.allow_spanning);
        }
    }

    /// Queues a portion for reinsertion with spanning placement allowed.
    pub(crate) fn queue_reinsert(&mut self, rect: Rect<D>, record: RecordId) {
        self.pending.push(PendingInsert {
            rect,
            record,
            allow_spanning: true,
        });
    }

    /// Queues a portion for leaf-only reinsertion (pressure relief).
    pub(crate) fn queue_leaf_reinsert(&mut self, rect: Rect<D>, record: RecordId) {
        self.pending.push(PendingInsert {
            rect,
            record,
            allow_spanning: false,
        });
    }

    /// Iterates over every physical index record as `(rect, record)` pairs,
    /// in unspecified order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Rect<D>, RecordId)> + '_ {
        self.arena.iter().flat_map(|(_, node)| {
            let leaf: Vec<(Rect<D>, RecordId)> = match &node.kind {
                crate::node::NodeKind::Leaf { entries } => {
                    entries.iter().map(|e| (e.rect, e.record)).collect()
                }
                crate::node::NodeKind::Internal { spanning, .. } => {
                    spanning.iter().map(|s| (s.rect, s.record)).collect()
                }
            };
            leaf.into_iter()
        })
    }

    /// Per-level node counts, from leaves (index 0) to the root. Useful for
    /// inspecting Skeleton pre-partitioning.
    pub fn level_profile(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.height() as usize];
        for (_, node) in self.arena.iter() {
            counts[node.level as usize] += 1;
        }
        counts
    }

    /// Number of live spanning index records (leaf entries are
    /// `entry_count() - spanning_count()`).
    pub fn spanning_count(&self) -> usize {
        self.arena
            .iter()
            .filter(|(_, n)| !n.is_leaf())
            .map(|(_, n)| n.spanning().len())
            .sum()
    }
}
