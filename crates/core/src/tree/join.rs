//! Spatial join: all intersecting pairs between two indexes.
//!
//! Synchronized depth-first traversal: a pair of subtrees is descended only
//! if their covering regions intersect, so disjoint regions of the two
//! datasets are never compared. Spanning index records participate at the
//! node where they are stored, paired against the other tree's entire
//! relevant subtree.

use super::Tree;
use crate::id::{NodeId, RecordId};
use crate::node::NodeKind;
use segidx_geom::{scan_intersects, Rect};
use std::collections::HashSet;

impl<const D: usize> Tree<D> {
    /// All pairs `(a, b)` where record `a` of `self` intersects record `b`
    /// of `other`. Pairs are deduplicated (cut records count once per
    /// logical pair) and sorted. Both trees' search-access counters are
    /// incremented for every node visited.
    pub fn join(&self, other: &Tree<D>) -> Vec<(RecordId, RecordId)> {
        self.stats.record_search();
        other.stats.record_search();
        let mut out: Vec<(RecordId, RecordId)> = Vec::new();

        // (left node, right node, region intersection guard)
        let mut stack: Vec<(NodeId, NodeId)> = vec![(self.root, other.root)];
        let mut visited_left: HashSet<NodeId> = HashSet::new();
        let mut visited_right: HashSet<NodeId> = HashSet::new();
        // Node accesses accumulate locally and flush once per join, like
        // the search kernel.
        let mut left_accesses: u64 = 0;
        let mut right_accesses: u64 = 0;

        while let Some((l, r)) = stack.pop() {
            // Node-access accounting (once per distinct node per join).
            if visited_left.insert(l) {
                left_accesses += 1;
            }
            if visited_right.insert(r) {
                right_accesses += 1;
            }
            let ln = self.node(l);
            let rn = other.node(r);

            // Records materialized at these nodes (leaf entries or
            // spanning records).
            let l_records = node_records(ln);
            let r_records = node_records(rn);

            // Record × record pairs at this node pair.
            for (lr, lid) in &l_records {
                for (rr, rid) in &r_records {
                    if lr.intersects(rr) {
                        out.push((*lid, *rid));
                    }
                }
            }
            // Records on one side × subtrees on the other.
            if let NodeKind::Internal { branches, .. } = &rn.kind {
                for (lr, lid) in &l_records {
                    for b in branches.iter() {
                        if lr.intersects(&b.rect) {
                            self.join_record_vs_subtree(*lr, *lid, other, b.child, false, &mut out);
                        }
                    }
                }
            }
            if let NodeKind::Internal { branches, .. } = &ln.kind {
                for (rr, rid) in &r_records {
                    for b in branches.iter() {
                        if rr.intersects(&b.rect) {
                            self.join_record_vs_subtree(*rr, *rid, self, b.child, true, &mut out);
                        }
                    }
                }
            }
            // Subtree × subtree.
            if let (
                NodeKind::Internal { branches: lb, .. },
                NodeKind::Internal { branches: rb, .. },
            ) = (&ln.kind, &rn.kind)
            {
                for a in lb.iter() {
                    for b in rb.iter() {
                        if a.rect.intersects(&b.rect) {
                            stack.push((a.child, b.child));
                        }
                    }
                }
            }
        }
        self.stats.record_search_accesses(left_accesses);
        other.stats.record_search_accesses(right_accesses);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Pairs one record against every matching record in a subtree.
    /// `swap = true` means the fixed record belongs to the *right* tree.
    ///
    /// The descent runs [`scan_intersects`] over each node's coordinate
    /// planes — the same branchless kernel as the search hot loop.
    fn join_record_vs_subtree(
        &self,
        rect: Rect<D>,
        id: RecordId,
        tree: &Tree<D>,
        root: NodeId,
        swap: bool,
        out: &mut Vec<(RecordId, RecordId)>,
    ) {
        let mut stack = vec![root];
        let mut matches: Vec<u32> = Vec::new();
        let mut emit = |other_id: RecordId| {
            if swap {
                out.push((other_id, id));
            } else {
                out.push((id, other_id));
            }
        };
        while let Some(n) = stack.pop() {
            let node = tree.node(n);
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    matches.clear();
                    let (los, his) = entries.planes();
                    scan_intersects(&rect, los, his, &mut matches);
                    for &i in &matches {
                        emit(entries.record(i as usize));
                    }
                }
                NodeKind::Internal { branches, spanning } => {
                    matches.clear();
                    let (los, his) = spanning.planes();
                    scan_intersects(&rect, los, his, &mut matches);
                    for &i in &matches {
                        emit(spanning.record(i as usize));
                    }
                    matches.clear();
                    let (los, his) = branches.planes();
                    scan_intersects(&rect, los, his, &mut matches);
                    for &i in &matches {
                        stack.push(branches.child(i as usize));
                    }
                }
            }
        }
    }
}

/// The records materialized directly on a node: leaf entries for leaves,
/// spanning records for internal nodes.
fn node_records<const D: usize>(node: &crate::node::Node<D>) -> Vec<(Rect<D>, RecordId)> {
    match &node.kind {
        NodeKind::Leaf { entries } => entries.iter().map(|e| (e.rect, e.record)).collect(),
        NodeKind::Internal { spanning, .. } => {
            spanning.iter().map(|s| (s.rect, s.record)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::Rect;

    fn brute_join(
        a: &[(Rect<2>, RecordId)],
        b: &[(Rect<2>, RecordId)],
    ) -> Vec<(RecordId, RecordId)> {
        let mut out = Vec::new();
        for (ra, ia) in a {
            for (rb, ib) in b {
                if ra.intersects(rb) {
                    out.push((*ia, *ib));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn dataset(n: u64, salt: u64, long_every: u64) -> Vec<(Rect<2>, RecordId)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37 + salt * 13) % 2_000) as f64;
                let y = ((i * 97 + salt * 7) % 2_000) as f64;
                let len = if long_every > 0 && i % long_every == 0 {
                    700.0
                } else {
                    6.0
                };
                (Rect::new([x, y], [x + len, y + 4.0]), RecordId(i))
            })
            .collect()
    }

    fn build(records: &[(Rect<2>, RecordId)], segment: bool) -> Tree<2> {
        let config = if segment {
            IndexConfig::srtree()
        } else {
            IndexConfig::rtree()
        };
        let mut t = Tree::new(config);
        for (r, id) in records {
            t.insert(*r, *id);
        }
        t
    }

    #[test]
    fn join_matches_brute_force() {
        let a = dataset(600, 1, 0);
        let b = dataset(500, 2, 0);
        for (sa, sb) in [(false, false), (true, false), (true, true)] {
            let ta = build(&a, sa);
            let tb = build(&b, sb);
            assert_eq!(
                ta.join(&tb),
                brute_join(&a, &b),
                "segment flags ({sa}, {sb})"
            );
        }
    }

    #[test]
    fn join_with_spanning_records() {
        // Row-aligned grids with long row segments guarantee spanning
        // records on both sides.
        let grid = |salt: u64, long_every: u64| -> Vec<(Rect<2>, RecordId)> {
            (0..1_200u64)
                .map(|i| {
                    let x = ((i + salt) % 40) as f64 * 12.0;
                    let y = (i / 40) as f64 * 10.0 + salt as f64;
                    let len = if i % long_every == 0 { 360.0 } else { 5.0 };
                    (Rect::new([x, y], [x + len, y]), RecordId(i))
                })
                .collect()
        };
        let a = grid(0, 6);
        let b = grid(3, 8);
        let ta = build(&a, true);
        let tb = build(&b, true);
        assert!(ta.stats().spanning_stores > 0);
        assert!(tb.stats().spanning_stores > 0);
        assert_eq!(ta.join(&tb), brute_join(&a, &b));
    }

    #[test]
    fn join_is_symmetric() {
        let a = dataset(300, 5, 11);
        let b = dataset(300, 6, 0);
        let ta = build(&a, true);
        let tb = build(&b, false);
        let forward = ta.join(&tb);
        let mut backward: Vec<(RecordId, RecordId)> =
            tb.join(&ta).into_iter().map(|(x, y)| (y, x)).collect();
        backward.sort_unstable();
        assert_eq!(forward, backward);
    }

    #[test]
    fn join_with_empty_tree() {
        let a = dataset(100, 7, 0);
        let ta = build(&a, false);
        let empty: Tree<2> = Tree::new(IndexConfig::rtree());
        assert!(ta.join(&empty).is_empty());
        assert!(empty.join(&ta).is_empty());
    }

    #[test]
    fn self_join_includes_reflexive_pairs() {
        let a = dataset(200, 8, 0);
        let ta = build(&a, false);
        let pairs = ta.join(&ta);
        // Every record intersects itself.
        for (_, id) in &a {
            assert!(pairs.contains(&(*id, *id)));
        }
        assert_eq!(pairs, brute_join(&a, &a));
    }
}
