//! Deep structural invariant checking, used heavily by tests.

use super::Tree;
use crate::id::NodeId;
use crate::node::NodeKind;
use std::collections::HashSet;

impl<const D: usize> Tree<D> {
    /// Checks every structural invariant of the tree and returns the list of
    /// violations (empty when the tree is consistent).
    ///
    /// Checked invariants:
    /// 1. parent pointers match branch entries, and the root has no parent;
    /// 2. levels decrease by exactly one along every branch; leaves are
    ///    level 0; all leaves are at the same depth (the tree is balanced);
    /// 3. every stored branch region covers the child's structural contents
    ///    *and* the child's spanning records (the cutting/containment
    ///    invariant of paper §3.1.1);
    /// 4. every spanning record spans (intersects + covers in ≥ 1 dimension)
    ///    the region of the branch it is linked to, and that branch exists;
    /// 5. spanning records appear only in segment mode;
    /// 6. no node exceeds its capacity, unless elastic overflows were
    ///    recorded;
    /// 7. the physical entry count matches `entry_count()`, and the pending
    ///    reinsertion queue is empty;
    /// 8. every arena node is reachable from the root exactly once.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut issues = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut physical_entries = 0usize;
        let mut leaf_depths: HashSet<u32> = HashSet::new();

        if self.node(self.root).parent.is_some() {
            issues.push("root has a parent pointer".into());
        }

        let mut stack: Vec<(NodeId, u32)> = vec![(self.root, 0)];
        while let Some((n, depth)) = stack.pop() {
            if !seen.insert(n) {
                issues.push(format!("{n:?} reachable via multiple paths"));
                continue;
            }
            let node = self.node(n);
            let cap = self.config.capacity(node.level);
            if node.occupancy() > cap && self.stats().elastic_overflows == 0 {
                issues.push(format!(
                    "{n:?} over capacity: {} > {cap} with no elastic overflows recorded",
                    node.occupancy()
                ));
            }
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    if node.level != 0 {
                        issues.push(format!("leaf {n:?} at level {}", node.level));
                    }
                    leaf_depths.insert(depth);
                    physical_entries += entries.len();
                }
                NodeKind::Internal { branches, spanning } => {
                    if branches.is_empty() {
                        issues.push(format!("internal {n:?} has no branches"));
                    }
                    if !spanning.is_empty() && !self.config.segment {
                        issues.push(format!(
                            "{n:?} holds spanning records but segment mode is off"
                        ));
                    }
                    physical_entries += spanning.len();
                    let region = self.region_of(n);
                    for b in branches.iter() {
                        let child = self.node(b.child);
                        if child.parent != Some(n) {
                            issues.push(format!(
                                "{:?} parent pointer is {:?}, expected {n:?}",
                                b.child, child.parent
                            ));
                        }
                        if child.level + 1 != node.level {
                            issues.push(format!(
                                "{:?} at level {} under {n:?} at level {}",
                                b.child, child.level, node.level
                            ));
                        }
                        if let Some(mbr) = child.content_mbr() {
                            if !b.rect.contains_rect(&mbr) {
                                issues.push(format!(
                                    "stored region of {:?} does not cover its contents",
                                    b.child
                                ));
                            }
                        }
                        if let Some(region) = &region {
                            if !region.contains_rect(&b.rect) {
                                issues.push(format!(
                                    "branch region of {:?} escapes region of {n:?}",
                                    b.child
                                ));
                            }
                        }
                        stack.push((b.child, depth + 1));
                    }
                    for (si, s) in spanning.iter().enumerate() {
                        match node.branch_index_of(s.linked_child) {
                            None => issues.push(format!(
                                "spanning record {si} on {n:?} linked to absent branch {:?}",
                                s.linked_child
                            )),
                            Some(bi) => {
                                if !s.rect.spans_any_dim(&branches.rect(bi)) {
                                    issues.push(format!(
                                        "spanning record {si} on {n:?} does not span its branch"
                                    ));
                                }
                            }
                        }
                        if let Some(region) = &region {
                            if !region.contains_rect(&s.rect) {
                                issues.push(format!(
                                    "spanning record {si} on {n:?} escapes the node's region"
                                ));
                            }
                        }
                    }
                }
            }
        }

        if leaf_depths.len() > 1 {
            issues.push(format!("unbalanced: leaves at depths {leaf_depths:?}"));
        }
        if seen.len() != self.arena.len() {
            issues.push(format!(
                "{} arena nodes but {} reachable from the root",
                self.arena.len(),
                seen.len()
            ));
        }
        if physical_entries != self.entry_count {
            issues.push(format!(
                "entry_count {} but {} physical entries found",
                self.entry_count, physical_entries
            ));
        }
        if !self.pending.is_empty() {
            issues.push(format!(
                "{} records stuck in the pending queue",
                self.pending.len()
            ));
        }
        issues
    }

    /// Panics with a readable report if [`Tree::check_invariants`] finds
    /// violations. Intended for tests.
    pub fn assert_invariants(&self) {
        let issues = self.check_invariants();
        assert!(
            issues.is_empty(),
            "tree invariant violations:\n  {}",
            issues.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::Rect;

    #[test]
    fn fresh_tree_is_valid() {
        let t: Tree<2> = Tree::new(IndexConfig::rtree());
        t.assert_invariants();
    }

    #[test]
    fn invariants_hold_across_growth() {
        for config in [IndexConfig::rtree(), IndexConfig::srtree()] {
            let mut t: Tree<2> = Tree::new(config);
            for i in 0..1500u64 {
                let x = ((i * 37) % 1000) as f64;
                let y = ((i * 91) % 1000) as f64;
                let len = if i % 10 == 0 { 400.0 } else { 3.0 };
                t.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
                if i % 250 == 0 {
                    t.assert_invariants();
                }
            }
            t.assert_invariants();
            assert_eq!(t.len(), 1500);
        }
    }

    #[test]
    fn invariants_hold_across_deletes() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        let rects: Vec<_> = (0..800u64)
            .map(|i| {
                let x = ((i * 13) % 500) as f64;
                let y = ((i * 7) % 500) as f64;
                let len = if i % 7 == 0 { 250.0 } else { 2.0 };
                let r = Rect::new([x, y], [x + len, y]);
                t.insert(r, RecordId(i));
                r
            })
            .collect();
        t.assert_invariants();
        for i in (0..800u64).step_by(2) {
            assert!(t.delete(&rects[i as usize], RecordId(i)));
            if i % 100 == 0 {
                t.assert_invariants();
            }
        }
        t.assert_invariants();
        assert_eq!(t.len(), 400);
    }
}
