//! Batched, parallel query execution.
//!
//! A batch call fans its queries out across scoped worker threads (the tree
//! is [`Sync`]: all shared mutation goes through the relaxed atomic counters
//! in [`TreeStats`](crate::stats::TreeStats)). Each worker owns a private
//! [`SearchCursor`], so the per-query hot path allocates nothing after
//! warm-up and workers share no mutable state. Queries are claimed in small
//! blocks from an atomic cursor — cheap dynamic load balancing for the
//! heavy-tailed per-query costs typical of interval workloads — and results
//! are returned **in input order** regardless of which worker ran which
//! query.
//!
//! ```
//! use segidx_core::{IndexConfig, RecordId, Tree};
//! use segidx_geom::Rect;
//!
//! let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
//! for i in 0..100u64 {
//!     t.insert(Rect::new([i as f64, 0.0], [i as f64 + 5.0, 0.0]), RecordId(i));
//! }
//! let queries: Vec<Rect<2>> = (0..10)
//!     .map(|i| Rect::new([i as f64 * 10.0, -1.0], [i as f64 * 10.0 + 2.0, 1.0]))
//!     .collect();
//! let batched = t.search_batch(&queries);
//! for (q, ids) in queries.iter().zip(&batched) {
//!     assert_eq!(ids, &t.search(q), "input order, identical results");
//! }
//! ```

use super::{SearchCursor, Tree};
use crate::id::RecordId;
use segidx_geom::{Point, Rect};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Upper bound on how many queries a worker claims per scheduling step.
/// Small enough to balance heavy-tailed query costs, large enough that the
/// shared claim counter is touched rarely.
const MAX_CLAIM_BLOCK: usize = 16;

/// Default worker count: one per available hardware thread.
fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

impl<const D: usize> Tree<D> {
    /// Runs every query in `queries` and returns the per-query results in
    /// input order, using one worker per available hardware thread.
    ///
    /// Results are bit-identical to calling [`Tree::search`] per query:
    /// sorted by id, deduplicated in segment mode. Statistics aggregate
    /// exactly as if the queries had run serially (each search flushes its
    /// counters once).
    pub fn search_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<RecordId>> {
        self.search_batch_threads(queries, default_workers())
    }

    /// [`Tree::search_batch`] with an explicit worker count (clamped to
    /// `1..=queries.len()`). `workers == 1` runs on the calling thread with
    /// a single reused cursor — still faster than per-query [`Tree::search`]
    /// because buffers warm up once.
    pub fn search_batch_threads(&self, queries: &[Rect<D>], workers: usize) -> Vec<Vec<RecordId>> {
        self.run_batch(queries.len(), workers, |cursor, i| {
            self.search_with(cursor, &queries[i]).to_vec()
        })
    }

    /// Runs every stabbing query in `points` and returns the per-point
    /// results in input order, using one worker per available hardware
    /// thread. Results are bit-identical to calling [`Tree::stab`] per
    /// point.
    pub fn stab_batch(&self, points: &[Point<D>]) -> Vec<Vec<RecordId>> {
        self.stab_batch_threads(points, default_workers())
    }

    /// [`Tree::stab_batch`] with an explicit worker count.
    pub fn stab_batch_threads(&self, points: &[Point<D>], workers: usize) -> Vec<Vec<RecordId>> {
        self.run_batch(points.len(), workers, |cursor, i| {
            self.stab_with(cursor, &points[i]).to_vec()
        })
    }

    /// The batch scheduler: runs `run(cursor, i)` for every `i < len` across
    /// `workers` scoped threads and collects the results in input order.
    fn run_batch<F>(&self, len: usize, workers: usize, run: F) -> Vec<Vec<RecordId>>
    where
        F: Fn(&mut SearchCursor<D>, usize) -> Vec<RecordId> + Sync,
    {
        let workers = workers.clamp(1, len.max(1));
        if workers == 1 {
            let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
            return (0..len).map(|i| run(&mut cursor, i)).collect();
        }
        let block = (len / (workers * 8)).clamp(1, MAX_CLAIM_BLOCK);
        let next = AtomicUsize::new(0);
        let run = &run;
        // Each worker buffers (index, result) pairs locally; the merge after
        // the join restores input order without any cross-thread writes to
        // the output.
        let buckets: Vec<Vec<(usize, Vec<RecordId>)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
                        let mut local: Vec<(usize, Vec<RecordId>)> = Vec::new();
                        loop {
                            let start = next.fetch_add(block, Ordering::Relaxed);
                            if start >= len {
                                break;
                            }
                            for i in start..(start + block).min(len) {
                                local.push((i, run(&mut cursor, i)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        let mut out: Vec<Vec<RecordId>> = Vec::with_capacity(len);
        out.resize_with(len, Vec::new);
        for (i, ids) in buckets.into_iter().flatten() {
            out[i] = ids;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::{Point, Rect};

    fn build(segment: bool, n: u64) -> Tree<2> {
        let config = if segment {
            IndexConfig::srtree()
        } else {
            IndexConfig::rtree()
        };
        let mut t: Tree<2> = Tree::new(config);
        for i in 0..n {
            let x = (i % 60) as f64 * 9.0;
            let y = (i / 60) as f64 * 7.0;
            let len = if i % 11 == 0 { 350.0 } else { 6.0 };
            t.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
        }
        t
    }

    fn queries(count: u64) -> Vec<Rect<2>> {
        (0..count)
            .map(|i| {
                let x = ((i * 71) % 500) as f64;
                let y = ((i * 37) % 200) as f64;
                Rect::new([x, y], [x + 60.0, y + 25.0])
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_in_input_order() {
        for segment in [false, true] {
            let t = build(segment, 2_500);
            let qs = queries(103); // deliberately not a multiple of any block
            let serial: Vec<Vec<RecordId>> = qs.iter().map(|q| t.search(q)).collect();
            for workers in [1, 2, 3, 8] {
                assert_eq!(
                    t.search_batch_threads(&qs, workers),
                    serial,
                    "segment={segment} workers={workers}"
                );
            }
            assert_eq!(t.search_batch(&qs), serial);
        }
    }

    #[test]
    fn stab_batch_matches_serial() {
        let t = build(true, 2_000);
        let points: Vec<Point<2>> = (0..57)
            .map(|i| Point::new([((i * 97) % 540) as f64, ((i * 13) % 230) as f64]))
            .collect();
        let serial: Vec<Vec<RecordId>> = points.iter().map(|p| t.stab(p)).collect();
        for workers in [1, 4] {
            assert_eq!(t.stab_batch_threads(&points, workers), serial);
        }
    }

    #[test]
    fn batch_stats_aggregate_like_serial() {
        let t = build(true, 1_500);
        let qs = queries(40);
        t.reset_search_stats();
        let serial: Vec<Vec<RecordId>> = qs.iter().map(|q| t.search(q)).collect();
        let serial_snap = t.stats();
        assert_eq!(serial_snap.searches, 40);

        t.reset_search_stats();
        let batched = t.search_batch_threads(&qs, 4);
        let batch_snap = t.stats();
        assert_eq!(batched, serial);
        assert_eq!(batch_snap.searches, serial_snap.searches);
        assert_eq!(
            batch_snap.search_node_accesses,
            serial_snap.search_node_accesses
        );
        assert_eq!(batch_snap.search_results, serial_snap.search_results);
    }

    #[test]
    fn empty_batches_and_empty_tree() {
        let t = build(false, 100);
        assert!(t.search_batch(&[]).is_empty());
        assert!(t.stab_batch_threads(&[], 4).is_empty());
        let empty: Tree<2> = Tree::new(IndexConfig::rtree());
        let qs = queries(5);
        assert_eq!(empty.search_batch(&qs), vec![Vec::new(); 5]);
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let t = build(true, 800);
        let qs = queries(3);
        let serial: Vec<Vec<RecordId>> = qs.iter().map(|q| t.search(q)).collect();
        assert_eq!(t.search_batch_threads(&qs, 64), serial);
    }
}
