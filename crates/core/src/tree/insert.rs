//! Insertion: ChooseLeaf descent, spanning-record placement, record
//! cutting, region adjustment, and demotion (paper §3.1.1).

use super::Tree;
use crate::entry::{LeafEntry, SpanningEntry};
use crate::id::{NodeId, RecordId};
use segidx_geom::{scan_min_enlargement, Rect};

impl<const D: usize> Tree<D> {
    /// Inserts a record.
    ///
    /// In segment (SR) mode the record is stored as a spanning index record
    /// on the highest-level node with a branch region it spans; if it
    /// extends beyond that node's own region it is cut into a spanning
    /// portion and remnant portions (paper §3.1.1, Figures 2–3). Otherwise
    /// it descends to a leaf by Guttman's least-enlargement rule.
    pub fn insert(&mut self, rect: Rect<D>, record: RecordId) {
        let t0 = self.obs_start();
        let _sp = segidx_obs::trace::span("tree.insert");
        self.len += 1;
        self.reinsert_armed = self.config.forced_reinsert.is_some();
        self.insert_portion(rect, record);
        self.drain_pending();
        self.inserts_since_coalesce += 1;
        if let Some(cfg) = self.config.coalesce {
            if self.inserts_since_coalesce >= cfg.check_interval {
                self.inserts_since_coalesce = 0;
                self.coalesce_pass(cfg);
            }
        }
        self.obs_record(|o| &o.insert, t0);
    }

    /// Inserts one physical record portion (no pending drain, no coalesce
    /// trigger) — the building block shared by `insert`, remnant
    /// reinsertion, demotion, and condensation.
    pub(crate) fn insert_portion(&mut self, rect: Rect<D>, record: RecordId) {
        self.insert_portion_inner(rect, record, true);
    }

    /// As [`insert_portion`](Self::insert_portion), with spanning placement
    /// optionally disabled: pressure-relief demotions go straight to a leaf
    /// so they cannot bounce back onto the node that evicted them.
    pub(crate) fn insert_portion_inner(
        &mut self,
        rect: Rect<D>,
        record: RecordId,
        allow_spanning: bool,
    ) {
        let mut n = self.root;
        loop {
            self.touch_maintenance(n);
            if self.node(n).is_leaf() {
                self.insert_into_leaf(n, rect, record);
                return;
            }
            if self.config.segment && allow_spanning {
                if let Some(branch_idx) = self.find_spanned_branch(n, &rect) {
                    if self.can_host_spanning(n, &rect) {
                        self.insert_spanning(n, branch_idx, rect, record);
                        return;
                    }
                    // The node is full of larger spanning records: this one
                    // descends like an ordinary record (it may still find a
                    // spanning slot at a lower level). This keeps each
                    // non-leaf node holding its region's *largest*
                    // intervals, which is the design goal, without cutting
                    // records that would immediately be evicted.
                }
            }
            n = self.choose_branch(n, &rect);
        }
    }

    /// The first branch of `n` whose region the record spans (intersects
    /// and covers in at least one dimension).
    fn find_spanned_branch(&self, n: NodeId, rect: &Rect<D>) -> Option<usize> {
        let branches = self.node(n).branches();
        (0..branches.len()).find(|&i| rect.spans_any_dim(&branches.rect(i)))
    }

    /// Whether node `n` should accept `rect` as a spanning record: it has a
    /// free entry slot, or `rect` is decisively larger than the smallest
    /// spanning record currently stored (which will then be evicted
    /// downward). The 1.5× hysteresis dampens displacement churn — each
    /// admission cuts the record against the node's region, so admitting a
    /// record that will soon be displaced wastes space on remnants.
    fn can_host_spanning(&self, n: NodeId, rect: &Rect<D>) -> bool {
        const DISPLACEMENT_HYSTERESIS: f64 = 1.5;
        let node = self.node(n);
        if node.occupancy() < self.config.capacity(node.level) {
            return true;
        }
        node.spanning()
            .iter()
            .any(|s| s.rect.margin() * DISPLACEMENT_HYSTERESIS < rect.margin())
    }

    /// Guttman's ChooseLeaf step: the branch needing least area enlargement
    /// to cover the record, ties broken by smallest area. With
    /// `choose_subtree_overlap` set (R\* mode), the level directly above
    /// the leaves instead minimizes *overlap* enlargement.
    ///
    /// Runs [`scan_min_enlargement`] over the branch store's coordinate
    /// planes — one straight-line arithmetic pass, no per-branch `Rect`
    /// reconstruction.
    pub(crate) fn choose_branch(&self, n: NodeId, rect: &Rect<D>) -> NodeId {
        if self.config.choose_subtree_overlap && self.node(n).level == 1 {
            return self.choose_branch_min_overlap(n, rect);
        }
        let branches = self.node(n).branches();
        debug_assert!(!branches.is_empty(), "internal node without branches");
        let (los, his) = branches.planes();
        let (best, _, _) =
            scan_min_enlargement(rect, los, his).expect("internal node without branches");
        branches.child(best)
    }

    /// R\* ChooseSubtree at the leaf level: the branch whose expansion to
    /// cover the record increases its overlap with the sibling branches
    /// least; ties by least area enlargement, then smallest area.
    fn choose_branch_min_overlap(&self, n: NodeId, rect: &Rect<D>) -> NodeId {
        let branches = self.node(n).branches();
        debug_assert!(!branches.is_empty(), "internal node without branches");
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for i in 0..branches.len() {
            let b_rect = branches.rect(i);
            let expanded = b_rect.union(rect);
            let mut overlap_delta = 0.0;
            for j in 0..branches.len() {
                if i != j {
                    let other = branches.rect(j);
                    overlap_delta += expanded.overlap_area(&other) - b_rect.overlap_area(&other);
                }
            }
            let key = (overlap_delta, b_rect.enlargement(rect), b_rect.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        branches.child(best)
    }

    /// Stores a spanning index record on `n`, linked to branch
    /// `branch_idx`, cutting it first if it exceeds `n`'s own region.
    fn insert_spanning(&mut self, n: NodeId, branch_idx: usize, rect: Rect<D>, record: RecordId) {
        let linked_child = self.node(n).branches().child(branch_idx);
        let stored_rect = match self.region_of(n) {
            Some(region) if !region.contains_rect(&rect) => {
                // Cut into a spanning portion (clipped to n's region, so the
                // containment invariant holds) and remnant portions that are
                // reinserted from the root (paper Figure 3).
                let cut = rect.cut(&region);
                self.stats.cuts += 1;
                self.emit(segidx_obs::EventKind::Cut, n);
                // Remnants are reinserted at the leaf level, as in the
                // paper's Figure 3 (the remnant portion "is stored in leaf
                // node E"). Letting remnants re-enter spanning placement
                // can dice one record into thousands of portions when host
                // regions are much smaller than the record.
                for remnant in cut.remnants {
                    self.stats.remnants_inserted += 1;
                    self.queue_leaf_reinsert(remnant, record);
                }
                cut.spanning
                    .expect("record spans a branch inside the region, so the clip is non-empty")
            }
            // Contained, or stored on the root (which every search visits,
            // so no containment constraint applies).
            _ => rect,
        };
        debug_assert!(
            stored_rect.spans_any_dim(&self.node(n).branches().rect(branch_idx)),
            "clipped spanning portion must still span the linked branch"
        );
        let node = self.node_mut(n);
        node.spanning_mut().push(SpanningEntry {
            rect: stored_rect,
            record,
            linked_child,
        });
        node.touch_modified();
        self.entry_count += 1;
        self.stats.spanning_stores += 1;
        self.handle_overflow(n);
    }

    /// Adds a record to a leaf, expands stored regions up the path, runs
    /// demotion checks on expanded nodes, and resolves overflow.
    fn insert_into_leaf(&mut self, leaf: NodeId, rect: Rect<D>, record: RecordId) {
        let node = self.node_mut(leaf);
        node.entries_mut().push(LeafEntry { rect, record });
        node.touch_modified();
        self.entry_count += 1;
        self.adjust_upward(leaf, &rect);
        self.handle_overflow(leaf);
    }

    /// Expands stored regions from `start` to the root so they cover
    /// `rect`. Each expansion may break former spanning relationships on the
    /// parent, so expanded branches get a demotion check (paper §3.1.1:
    /// "possible demotion of spanning index records").
    pub(crate) fn adjust_upward(&mut self, start: NodeId, rect: &Rect<D>) {
        let mut child = start;
        while let Some(parent) = self.node(child).parent {
            self.touch_maintenance(parent);
            let bi = self
                .node(parent)
                .branch_index_of(child)
                .expect("parent pointer without matching branch");
            let old = self.node(parent).branches().rect(bi);
            if old.contains_rect(rect) {
                // Stored regions nest upward, so every ancestor already
                // covers the record.
                break;
            }
            let expanded = old.union(rect);
            self.node_mut(parent).branches_mut().set_rect(bi, &expanded);
            if self.config.segment {
                self.recheck_spanning_links(parent, child);
            }
            child = parent;
        }
    }

    /// Re-checks spanning records linked to the just-expanded branch
    /// (pointing at `expanded_child`) on node `parent`. Records that no
    /// longer span it are relinked to another branch they still span, or
    /// removed and queued for reinsertion (demotion).
    pub(crate) fn recheck_spanning_links(&mut self, parent: NodeId, expanded_child: NodeId) {
        let branch_rects: Vec<(NodeId, Rect<D>)> = self
            .node(parent)
            .branches()
            .iter()
            .map(|b| (b.child, b.rect))
            .collect();
        let expanded_rect = branch_rects
            .iter()
            .find(|(c, _)| *c == expanded_child)
            .expect("expanded branch present")
            .1;

        let mut i = 0;
        let mut modified = false;
        while i < self.node(parent).spanning().len() {
            let s = self.node(parent).spanning().get(i);
            if s.linked_child != expanded_child || s.rect.spans_any_dim(&expanded_rect) {
                i += 1;
                continue;
            }
            // Former spanning record: try to relink before demoting.
            let relink = branch_rects
                .iter()
                .find(|(c, r)| *c != expanded_child && s.rect.spans_any_dim(r));
            match relink {
                Some((child, _)) => {
                    self.node_mut(parent)
                        .spanning_mut()
                        .set_linked_child(i, *child);
                    self.stats.relinks += 1;
                    self.emit(segidx_obs::EventKind::Relink, parent);
                    i += 1;
                }
                None => {
                    self.node_mut(parent).spanning_mut().swap_remove(i);
                    self.entry_count -= 1;
                    self.stats.demotions += 1;
                    self.emit(segidx_obs::EventKind::Demotion, parent);
                    self.queue_reinsert(s.rect, s.record);
                    modified = true;
                }
            }
        }
        if modified {
            self.node_mut(parent).touch_modified();
        }
    }
}
