//! Structural inspection: per-level statistics and Graphviz export.
//!
//! The paper's analysis of Graphs 1–6 reasons about node *shapes* —
//! "mostly horizontal node regions", "a high degree of overlap", aspect
//! ratios the Skeleton keeps regular (§4). [`TreeReport`] quantifies those
//! properties so the same reasoning can be applied to a live index.

use super::Tree;
use crate::node::NodeKind;
use segidx_geom::Rect;
use std::fmt;
use std::fmt::Write as _;

/// Statistics for one level of the tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelReport {
    /// Level number (0 = leaves).
    pub level: u32,
    /// Nodes at this level.
    pub nodes: usize,
    /// Leaf entries (level 0) or branches (higher levels).
    pub structural_entries: usize,
    /// Spanning index records stored at this level.
    pub spanning_entries: usize,
    /// Mean occupancy as a fraction of node capacity.
    pub utilization: f64,
    /// Mean horizontal-to-vertical aspect ratio of the stored regions
    /// (2-D interpretation: extent(0) / extent(1); `NaN` when degenerate).
    pub mean_aspect_ratio: f64,
    /// Total pairwise overlap area between the stored regions of the
    /// level's nodes, divided by the total region area — the paper's
    /// "degree of overlap" (0 = perfectly disjoint like a fresh Skeleton).
    pub overlap_factor: f64,
}

/// A full structural report (one entry per level, leaves first).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeReport {
    /// Per-level statistics.
    pub levels: Vec<LevelReport>,
}

impl fmt::Display for TreeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>5} {:>7} {:>9} {:>9} {:>6} {:>8} {:>8}",
            "level", "nodes", "entries", "spanning", "util", "aspect", "overlap"
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "{:>5} {:>7} {:>9} {:>9} {:>5.0}% {:>8.2} {:>8.3}",
                l.level,
                l.nodes,
                l.structural_entries,
                l.spanning_entries,
                l.utilization * 100.0,
                l.mean_aspect_ratio,
                l.overlap_factor
            )?;
        }
        Ok(())
    }
}

impl<const D: usize> Tree<D> {
    /// Builds a structural report of the tree.
    pub fn report(&self) -> TreeReport {
        let height = self.height();
        let mut levels: Vec<LevelReport> = (0..height)
            .map(|level| LevelReport {
                level,
                ..LevelReport::default()
            })
            .collect();
        // Stored regions per level (from parents; the root has none).
        let mut regions: Vec<Vec<Rect<D>>> = vec![Vec::new(); height as usize];
        let mut occupancy_sum = vec![0.0f64; height as usize];

        for (id, node) in self.arena.iter() {
            let l = node.level as usize;
            levels[l].nodes += 1;
            occupancy_sum[l] += node.occupancy() as f64 / self.config.capacity(node.level) as f64;
            match &node.kind {
                NodeKind::Leaf { entries } => levels[l].structural_entries += entries.len(),
                NodeKind::Internal { branches, spanning } => {
                    levels[l].structural_entries += branches.len();
                    levels[l].spanning_entries += spanning.len();
                }
            }
            if let Some(region) = self.region_of(id) {
                regions[l].push(region);
            } else if let Some(mbr) = node.content_mbr() {
                regions[l].push(mbr); // the root: use its content MBR
            }
        }

        for (l, report) in levels.iter_mut().enumerate() {
            report.utilization = if report.nodes > 0 {
                occupancy_sum[l] / report.nodes as f64
            } else {
                0.0
            };
            let rs = &regions[l];
            // Mean aspect ratio over the first two dimensions.
            if D >= 2 {
                let ratios: Vec<f64> = rs
                    .iter()
                    .filter(|r| r.extent(1) > 0.0)
                    .map(|r| r.extent(0) / r.extent(1))
                    .collect();
                report.mean_aspect_ratio = if ratios.is_empty() {
                    f64::NAN
                } else {
                    ratios.iter().sum::<f64>() / ratios.len() as f64
                };
            } else {
                report.mean_aspect_ratio = f64::NAN;
            }
            // Pairwise overlap factor (quadratic; inspection is offline).
            let total_area: f64 = rs.iter().map(|r| r.area()).sum();
            let mut overlap = 0.0;
            for (i, a) in rs.iter().enumerate() {
                for b in rs.iter().skip(i + 1) {
                    overlap += a.overlap_area(b);
                }
            }
            report.overlap_factor = if total_area > 0.0 {
                overlap / total_area
            } else {
                0.0
            };
        }
        TreeReport { levels }
    }

    /// Renders the tree as a Graphviz `dot` digraph (node regions and entry
    /// counts; spanning records annotate their host). Intended for small
    /// trees during debugging.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph segidx {\n  node [shape=box, fontsize=9];\n");
        for (id, node) in self.arena.iter() {
            let label = match &node.kind {
                NodeKind::Leaf { entries } => {
                    format!("leaf {:?}\\n{} entries", id, entries.len())
                }
                NodeKind::Internal { branches, spanning } => format!(
                    "L{} {:?}\\n{} branches, {} spanning",
                    node.level,
                    id,
                    branches.len(),
                    spanning.len()
                ),
            };
            let _ = writeln!(out, "  n{} [label=\"{}\"];", id.raw(), label);
            if let NodeKind::Internal { branches, .. } = &node.kind {
                for b in branches.iter() {
                    let _ = writeln!(out, "  n{} -> n{};", id.raw(), b.child.raw());
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::skeleton::{build_skeleton, SkeletonSpec};
    use crate::tree::Tree;
    use segidx_geom::Rect;

    #[test]
    fn report_counts_match_tree() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        for i in 0..800u64 {
            let x = ((i * 37) % 2_000) as f64;
            let y = ((i * 97) % 2_000) as f64;
            let len = if i % 10 == 0 { 900.0 } else { 5.0 };
            t.insert(Rect::new([x, y], [x + len, y]), RecordId(i));
        }
        let report = t.report();
        let total_nodes: usize = report.levels.iter().map(|l| l.nodes).sum();
        assert_eq!(total_nodes, t.node_count());
        let total_entries: usize = report
            .levels
            .iter()
            .map(|l| l.spanning_entries)
            .sum::<usize>()
            + report.levels[0].structural_entries;
        assert_eq!(total_entries, t.entry_count());
        assert!(report.levels[0].utilization > 0.2);
        assert!(report.levels[0].utilization <= 1.0);
        // Renders without panicking.
        let text = format!("{report}");
        assert!(text.contains("level"));
    }

    #[test]
    fn fresh_skeleton_has_zero_overlap() {
        let spec = SkeletonSpec::uniform(Rect::new([0.0, 0.0], [1000.0, 1000.0]), 5_000);
        let t = build_skeleton(IndexConfig::rtree(), &spec);
        let report = t.report();
        // Pre-partitioned tiles are disjoint at every level.
        for l in &report.levels {
            assert!(
                l.overlap_factor < 1e-9,
                "level {} overlap {}",
                l.level,
                l.overlap_factor
            );
        }
    }

    #[test]
    fn dot_export_contains_all_nodes() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..60u64 {
            t.insert(
                Rect::new([i as f64, 0.0], [i as f64 + 1.0, 1.0]),
                RecordId(i),
            );
        }
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(
            dot.matches("label=").count(),
            t.node_count(),
            "one labeled node per tree node"
        );
        assert_eq!(
            dot.matches(" -> ").count(),
            t.node_count() - 1,
            "tree edges"
        );
    }
}
