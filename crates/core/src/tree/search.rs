//! Search (paper §3.1.3).
//!
//! The SR-Tree search descends only branches intersecting the query, exactly
//! like the R-Tree, and additionally examines the spanning index records of
//! every node it visits. Because spanning records stored on a node `N` are
//! wholly contained by `N` (the cutting invariant), every qualifying
//! spanning record is guaranteed to be found.

use super::Tree;
use crate::id::RecordId;
use crate::node::NodeKind;
use segidx_geom::{Point, Rect};

impl<const D: usize> Tree<D> {
    /// Returns the ids of all records whose geometry intersects `query`,
    /// deduplicated (a cut record is reported once even when several of its
    /// portions qualify) and sorted by id.
    ///
    /// Every node visited increments the search node-access counter — the
    /// paper's performance metric.
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let mut out: Vec<RecordId> = self
            .search_entries(query)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Like [`Tree::search`], but returns the raw matching index records
    /// (portion rectangles included, no deduplication).
    pub fn search_entries(&self, query: &Rect<D>) -> Vec<(Rect<D>, RecordId)> {
        self.stats.record_search();
        let mut results = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            self.stats.record_search_access();
            let node = self.node(n);
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    for e in entries {
                        if e.rect.intersects(query) {
                            results.push((e.rect, e.record));
                        }
                    }
                }
                NodeKind::Internal { branches, spanning } => {
                    for s in spanning {
                        if s.rect.intersects(query) {
                            results.push((s.rect, s.record));
                        }
                    }
                    for b in branches {
                        if b.rect.intersects(query) {
                            stack.push(b.child);
                        }
                    }
                }
            }
        }
        results
    }

    /// All records whose geometry contains the point `p` — the "stabbing
    /// query" central to interval indexing (e.g. "which salary periods were
    /// in effect at time t?").
    pub fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        self.search(&Rect::from_point(*p))
    }

    /// Number of index nodes a search for `query` accesses, without
    /// disturbing the cumulative statistics beyond recording the search.
    pub fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
        let before = self.stats.snapshot().search_node_accesses;
        let _ = self.search_entries(query);
        self.stats.snapshot().search_node_accesses - before
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::{Point, Rect};

    fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
        Rect::new([x0, y], [x1, y])
    }

    #[test]
    fn empty_tree_searches_cleanly() {
        let t: Tree<2> = Tree::new(IndexConfig::rtree());
        assert!(t.search(&Rect::new([0.0, 0.0], [1.0, 1.0])).is_empty());
        let snap = t.stats();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.search_node_accesses, 1, "root is always visited");
    }

    #[test]
    fn finds_inserted_segments() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..100u64 {
            let x = i as f64 * 10.0;
            t.insert(seg(x, x + 5.0, i as f64), RecordId(i));
        }
        assert_eq!(t.len(), 100);
        // A query over x in [100, 120] at any y hits segments 10, 11, 12.
        let hits = t.search(&Rect::new([100.0, 0.0], [120.0, 100.0]));
        assert_eq!(hits, vec![RecordId(10), RecordId(11), RecordId(12)]);
    }

    #[test]
    fn stab_query_finds_covering_intervals() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        t.insert(seg(0.0, 100.0, 5.0), RecordId(1));
        t.insert(seg(40.0, 60.0, 5.0), RecordId(2));
        t.insert(seg(80.0, 90.0, 5.0), RecordId(3));
        let hits = t.stab(&Point::new([50.0, 5.0]));
        assert_eq!(hits, vec![RecordId(1), RecordId(2)]);
    }

    #[test]
    fn search_deduplicates_cut_records() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        // Enough data to build a multi-level tree, plus one very long
        // segment that will be stored as spanning portions.
        for i in 0..500u64 {
            let x = (i % 50) as f64 * 10.0;
            let y = (i / 50) as f64 * 10.0;
            t.insert(seg(x, x + 4.0, y), RecordId(i));
        }
        t.insert(seg(0.0, 500.0, 45.0), RecordId(9999));
        let hits = t.search(&Rect::new([0.0, 0.0], [500.0, 100.0]));
        let nines = hits.iter().filter(|r| r.0 == 9999).count();
        assert_eq!(nines, 1, "cut portions deduplicated");
    }

    #[test]
    fn access_counting_is_per_search() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..200u64 {
            t.insert(seg(i as f64, i as f64 + 1.0, i as f64), RecordId(i));
        }
        t.reset_search_stats();
        let q = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let a1 = t.count_search_accesses(&q);
        assert!(a1 >= 2, "multi-level tree visits more than the root");
        let snap = t.stats();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.search_node_accesses, a1);
    }
}
