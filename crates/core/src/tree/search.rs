//! Search (paper §3.1.3) — allocation-free kernel plus reusable cursors.
//!
//! The SR-Tree search descends only branches intersecting the query, exactly
//! like the R-Tree, and additionally examines the spanning index records of
//! every node it visits. Because spanning records stored on a node `N` are
//! wholly contained by `N` (the cutting invariant), every qualifying
//! spanning record is guaranteed to be found.
//!
//! ## Hot-path discipline
//!
//! All traversal state (the DFS stack) and result storage live in a
//! [`SearchCursor`], so a cursor reused across queries performs **zero heap
//! allocation** once its buffers have grown to the workload's high-water
//! mark. Node accesses are accumulated in a local counter and flushed to
//! [`TreeStats`](crate::stats::TreeStats) once per search — concurrent
//! readers never ping-pong the shared counter cache line inside the
//! traversal loop. The batched, parallel entry points built on these
//! kernels live in [`batch`](super::batch).

use super::Tree;
use crate::id::{NodeId, RecordId};
use crate::node::NodeKind;
use segidx_geom::{scan_intersects, scan_stab, Point, Rect};
use segidx_obs::trace::{self, Dim, MAX_LEVELS};

/// Reusable scratch state for the search kernels.
///
/// Holds the traversal stack and result buffers so repeated
/// [`Tree::search_with`] / [`Tree::stab_with`] /
/// [`Tree::search_entries_with`] calls on one thread do no heap allocation
/// after warm-up. One cursor serves one thread; the batch engine creates one
/// cursor per worker.
///
/// ```
/// use segidx_core::{IndexConfig, RecordId, SearchCursor, Tree};
/// use segidx_geom::Rect;
///
/// let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
/// t.insert(Rect::new([0.0, 0.0], [5.0, 0.0]), RecordId(1));
/// let mut cursor = SearchCursor::new();
/// for _ in 0..1_000 {
///     // Allocation-free after the first iteration.
///     let hits = t.search_with(&mut cursor, &Rect::new([1.0, 0.0], [2.0, 1.0]));
///     assert_eq!(hits, [RecordId(1)]);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SearchCursor<const D: usize> {
    /// DFS stack of nodes still to visit.
    stack: Vec<NodeId>,
    /// Raw matching index records of the latest query.
    entries: Vec<(Rect<D>, RecordId)>,
    /// Sorted (and, in segment mode, deduplicated) ids of the latest query.
    ids: Vec<RecordId>,
    /// Per-node scratch: indexes matched by the plane-scan kernels.
    matches: Vec<u32>,
}

impl<const D: usize> SearchCursor<D> {
    /// An empty cursor; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cursor whose result buffers are pre-sized for `expected_hits`
    /// matches per query (e.g. from a selectivity estimate).
    pub fn with_capacity(expected_hits: usize) -> Self {
        Self {
            stack: Vec::with_capacity(16),
            entries: Vec::with_capacity(expected_hits),
            ids: Vec::with_capacity(expected_hits),
            matches: Vec::with_capacity(expected_hits),
        }
    }
}

impl<const D: usize> Tree<D> {
    /// The traversal kernel shared by every search entry point: fills
    /// `cursor.entries` with the raw matching index records and returns the
    /// number of nodes accessed. Performs no allocation beyond growing the
    /// cursor's buffers and touches no shared state.
    ///
    /// Each node is tested with [`scan_intersects`] over its contiguous
    /// coordinate planes — one branchless pass per store — and only the
    /// matching indexes gather rectangles and payloads afterwards.
    ///
    /// Tracing is monomorphized out: one [`trace::active`] check per call
    /// dispatches to a `TRACED = false` instantiation that is bit-identical
    /// to the uninstrumented kernel, so untraced searches pay no per-node
    /// cost (the PR 3 "one null check" contract, extended to traces).
    pub(crate) fn search_kernel(&self, query: &Rect<D>, cursor: &mut SearchCursor<D>) -> u64 {
        if trace::active() {
            self.search_kernel_impl::<true>(query, cursor)
        } else {
            self.search_kernel_impl::<false>(query, cursor)
        }
    }

    /// The uninstrumented kernel instantiation, exposed for the
    /// `trace_profile` overhead gate's no-telemetry baseline.
    #[doc(hidden)]
    pub fn search_kernel_untraced(&self, query: &Rect<D>, cursor: &mut SearchCursor<D>) -> u64 {
        self.search_kernel_impl::<false>(query, cursor)
    }

    fn search_kernel_impl<const TRACED: bool>(
        &self,
        query: &Rect<D>,
        cursor: &mut SearchCursor<D>,
    ) -> u64 {
        cursor.entries.clear();
        cursor.stack.clear();
        cursor.stack.push(self.root);
        let mut accesses: u64 = 0;
        let mut level_visits = [0u64; MAX_LEVELS];
        let mut kernel_calls: u64 = 0;
        let mut scanned: u64 = 0;
        while let Some(n) = cursor.stack.pop() {
            accesses += 1;
            let node = self.node(n);
            if TRACED {
                level_visits[(node.level as usize).min(MAX_LEVELS - 1)] += 1;
            }
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    cursor.matches.clear();
                    let (los, his) = entries.planes();
                    scan_intersects(query, los, his, &mut cursor.matches);
                    if TRACED {
                        kernel_calls += 1;
                        scanned += entries.len() as u64;
                    }
                    for &i in &cursor.matches {
                        let i = i as usize;
                        cursor.entries.push((entries.rect(i), entries.record(i)));
                    }
                }
                NodeKind::Internal { branches, spanning } => {
                    cursor.matches.clear();
                    let (los, his) = spanning.planes();
                    scan_intersects(query, los, his, &mut cursor.matches);
                    for &i in &cursor.matches {
                        let i = i as usize;
                        cursor.entries.push((spanning.rect(i), spanning.record(i)));
                    }
                    cursor.matches.clear();
                    let (los, his) = branches.planes();
                    scan_intersects(query, los, his, &mut cursor.matches);
                    if TRACED {
                        kernel_calls += 2;
                        scanned += (spanning.len() + branches.len()) as u64;
                    }
                    for &i in &cursor.matches {
                        cursor.stack.push(branches.child(i as usize));
                    }
                }
            }
        }
        if TRACED {
            trace::level_visits(&level_visits);
            trace::add(Dim::KernelInvocations, kernel_calls);
            trace::add(Dim::KernelEntriesScanned, scanned);
        }
        accesses
    }

    /// Stabbing-query kernel: like [`Tree::search_kernel`] with the
    /// degenerate rectangle at `p`, but driven by [`scan_stab`] so no
    /// rectangle is materialized and each plane is tested against a single
    /// coordinate. Same monomorphized tracing split as the search kernel.
    pub(crate) fn stab_kernel(&self, p: &Point<D>, cursor: &mut SearchCursor<D>) -> u64 {
        if trace::active() {
            self.stab_kernel_impl::<true>(p, cursor)
        } else {
            self.stab_kernel_impl::<false>(p, cursor)
        }
    }

    /// The uninstrumented stab kernel, exposed for the `trace_profile`
    /// overhead gate's no-telemetry baseline.
    #[doc(hidden)]
    pub fn stab_kernel_untraced(&self, p: &Point<D>, cursor: &mut SearchCursor<D>) -> u64 {
        self.stab_kernel_impl::<false>(p, cursor)
    }

    fn stab_kernel_impl<const TRACED: bool>(
        &self,
        p: &Point<D>,
        cursor: &mut SearchCursor<D>,
    ) -> u64 {
        cursor.entries.clear();
        cursor.stack.clear();
        cursor.stack.push(self.root);
        let mut accesses: u64 = 0;
        let mut level_visits = [0u64; MAX_LEVELS];
        let mut kernel_calls: u64 = 0;
        let mut scanned: u64 = 0;
        while let Some(n) = cursor.stack.pop() {
            accesses += 1;
            let node = self.node(n);
            if TRACED {
                level_visits[(node.level as usize).min(MAX_LEVELS - 1)] += 1;
            }
            match &node.kind {
                NodeKind::Leaf { entries } => {
                    cursor.matches.clear();
                    let (los, his) = entries.planes();
                    scan_stab(p, los, his, &mut cursor.matches);
                    if TRACED {
                        kernel_calls += 1;
                        scanned += entries.len() as u64;
                    }
                    for &i in &cursor.matches {
                        let i = i as usize;
                        cursor.entries.push((entries.rect(i), entries.record(i)));
                    }
                }
                NodeKind::Internal { branches, spanning } => {
                    cursor.matches.clear();
                    let (los, his) = spanning.planes();
                    scan_stab(p, los, his, &mut cursor.matches);
                    for &i in &cursor.matches {
                        let i = i as usize;
                        cursor.entries.push((spanning.rect(i), spanning.record(i)));
                    }
                    cursor.matches.clear();
                    let (los, his) = branches.planes();
                    scan_stab(p, los, his, &mut cursor.matches);
                    if TRACED {
                        kernel_calls += 2;
                        scanned += (spanning.len() + branches.len()) as u64;
                    }
                    for &i in &cursor.matches {
                        cursor.stack.push(branches.child(i as usize));
                    }
                }
            }
        }
        if TRACED {
            trace::level_visits(&level_visits);
            trace::add(Dim::KernelInvocations, kernel_calls);
            trace::add(Dim::KernelEntriesScanned, scanned);
        }
        accesses
    }

    /// Extracts sorted ids from the kernel's raw entries. The `dedup` pass
    /// runs only in segment mode: without cutting, every logical record is
    /// stored exactly once, so duplicates are impossible.
    fn finish_ids<'c>(&self, cursor: &'c mut SearchCursor<D>) -> &'c [RecordId] {
        cursor.ids.clear();
        cursor.ids.extend(cursor.entries.iter().map(|(_, r)| *r));
        cursor.ids.sort_unstable();
        if self.config.segment {
            cursor.ids.dedup();
        }
        &cursor.ids
    }

    /// Returns the ids of all records whose geometry intersects `query`.
    ///
    /// # Guarantees
    ///
    /// * **Deterministic order**: results are always sorted ascending by
    ///   [`RecordId`], independent of traversal order, tree shape, or
    ///   variant — so all four paper variants return bit-identical results
    ///   for the same logical contents.
    /// * **Duplicate-free**: in segment (SR) mode, a cut record is reported
    ///   once even when several of its portions qualify. In non-segment
    ///   (R-Tree) mode no cutting occurs, every logical record is stored
    ///   exactly once, and the dedup pass is skipped entirely — results are
    ///   duplicate-free provided inserted ids were unique.
    ///
    /// Every node visited counts one search node access — the paper's
    /// performance metric — accumulated locally and flushed to the shared
    /// counters once per search.
    pub fn search(&self, query: &Rect<D>) -> Vec<RecordId> {
        let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
        self.search_with(&mut cursor, query).to_vec()
    }

    /// Like [`Tree::search`], but reuses `cursor`'s buffers and returns a
    /// slice borrowed from it — zero heap allocation after warm-up. Same
    /// ordering and deduplication guarantees as [`Tree::search`].
    pub fn search_with<'c>(
        &self,
        cursor: &'c mut SearchCursor<D>,
        query: &Rect<D>,
    ) -> &'c [RecordId] {
        let t0 = self.obs_start();
        let sp = trace::span("tree.search");
        let accesses = self.search_kernel(query, cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        let ids = self.finish_ids(cursor);
        sp.items(ids.len() as u64);
        trace::add(Dim::ResultRecords, ids.len() as u64);
        drop(sp);
        self.obs_record(|o| &o.search, t0);
        ids
    }

    /// [`Tree::search_with`] minus every telemetry touch point — the
    /// no-telemetry baseline the `trace_profile` overhead gate compares
    /// the instrumented path against. Not part of the public API.
    #[doc(hidden)]
    pub fn bench_search_untraced<'c>(
        &self,
        cursor: &'c mut SearchCursor<D>,
        query: &Rect<D>,
    ) -> &'c [RecordId] {
        let accesses = self.search_kernel_untraced(query, cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        self.finish_ids(cursor)
    }

    /// Like [`Tree::search`], but returns the raw matching index records
    /// (portion rectangles included, no deduplication, unspecified order).
    pub fn search_entries(&self, query: &Rect<D>) -> Vec<(Rect<D>, RecordId)> {
        let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
        self.search_entries_with(&mut cursor, query).to_vec()
    }

    /// Like [`Tree::search_entries`], but reuses `cursor`'s buffers and
    /// returns a slice borrowed from it — zero heap allocation after
    /// warm-up.
    pub fn search_entries_with<'c>(
        &self,
        cursor: &'c mut SearchCursor<D>,
        query: &Rect<D>,
    ) -> &'c [(Rect<D>, RecordId)] {
        let t0 = self.obs_start();
        let sp = trace::span("tree.search_entries");
        let accesses = self.search_kernel(query, cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        sp.items(cursor.entries.len() as u64);
        drop(sp);
        self.obs_record(|o| &o.search, t0);
        &cursor.entries
    }

    /// All records whose geometry contains the point `p` — the "stabbing
    /// query" central to interval indexing (e.g. "which salary periods were
    /// in effect at time t?").
    pub fn stab(&self, p: &Point<D>) -> Vec<RecordId> {
        let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
        self.stab_with(&mut cursor, p).to_vec()
    }

    /// Like [`Tree::stab`], but reuses `cursor`'s buffers — zero heap
    /// allocation after warm-up.
    pub fn stab_with<'c>(&self, cursor: &'c mut SearchCursor<D>, p: &Point<D>) -> &'c [RecordId] {
        let t0 = self.obs_start();
        let sp = trace::span("tree.stab");
        let accesses = self.stab_kernel(p, cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        let ids = self.finish_ids(cursor);
        sp.items(ids.len() as u64);
        trace::add(Dim::ResultRecords, ids.len() as u64);
        drop(sp);
        self.obs_record(|o| &o.stab, t0);
        ids
    }

    /// [`Tree::stab_with`] minus every telemetry touch point (see
    /// [`Tree::bench_search_untraced`]).
    #[doc(hidden)]
    pub fn bench_stab_untraced<'c>(
        &self,
        cursor: &'c mut SearchCursor<D>,
        p: &Point<D>,
    ) -> &'c [RecordId] {
        let accesses = self.stab_kernel_untraced(p, cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        self.finish_ids(cursor)
    }

    /// Number of index nodes a search for `query` accesses, without
    /// disturbing the cumulative statistics beyond recording the search.
    ///
    /// The count is accumulated locally inside the kernel and returned
    /// directly, so a concurrent search on another thread cannot corrupt
    /// it (it is *not* derived by diffing the shared counter).
    pub fn count_search_accesses(&self, query: &Rect<D>) -> u64 {
        let mut cursor = SearchCursor::with_capacity(self.stats.hits_estimate());
        let t0 = self.obs_start();
        let accesses = self.search_kernel(query, &mut cursor);
        self.stats
            .flush_search(accesses, cursor.entries.len() as u64);
        self.obs_record(|o| &o.search, t0);
        accesses
    }
}

#[cfg(test)]
mod tests {
    use super::SearchCursor;
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::{Point, Rect};

    fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
        Rect::new([x0, y], [x1, y])
    }

    #[test]
    fn empty_tree_searches_cleanly() {
        let t: Tree<2> = Tree::new(IndexConfig::rtree());
        assert!(t.search(&Rect::new([0.0, 0.0], [1.0, 1.0])).is_empty());
        let snap = t.stats();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.search_node_accesses, 1, "root is always visited");
    }

    #[test]
    fn finds_inserted_segments() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..100u64 {
            let x = i as f64 * 10.0;
            t.insert(seg(x, x + 5.0, i as f64), RecordId(i));
        }
        assert_eq!(t.len(), 100);
        // A query over x in [100, 120] at any y hits segments 10, 11, 12.
        let hits = t.search(&Rect::new([100.0, 0.0], [120.0, 100.0]));
        assert_eq!(hits, vec![RecordId(10), RecordId(11), RecordId(12)]);
    }

    #[test]
    fn stab_query_finds_covering_intervals() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        t.insert(seg(0.0, 100.0, 5.0), RecordId(1));
        t.insert(seg(40.0, 60.0, 5.0), RecordId(2));
        t.insert(seg(80.0, 90.0, 5.0), RecordId(3));
        let hits = t.stab(&Point::new([50.0, 5.0]));
        assert_eq!(hits, vec![RecordId(1), RecordId(2)]);
    }

    #[test]
    fn search_deduplicates_cut_records() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        // Enough data to build a multi-level tree, plus one very long
        // segment that will be stored as spanning portions.
        for i in 0..500u64 {
            let x = (i % 50) as f64 * 10.0;
            let y = (i / 50) as f64 * 10.0;
            t.insert(seg(x, x + 4.0, y), RecordId(i));
        }
        t.insert(seg(0.0, 500.0, 45.0), RecordId(9999));
        let hits = t.search(&Rect::new([0.0, 0.0], [500.0, 100.0]));
        let nines = hits.iter().filter(|r| r.0 == 9999).count();
        assert_eq!(nines, 1, "cut portions deduplicated");
    }

    #[test]
    fn rtree_mode_is_duplicate_free_without_dedup() {
        // Pins the invariant that lets non-segment search skip its dedup
        // pass: without cutting, every logical record surfaces exactly once
        // even in a deep multi-level tree.
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..2_000u64 {
            let x = (i % 40) as f64 * 12.0;
            let y = (i / 40) as f64 * 8.0;
            let len = if i % 9 == 0 { 400.0 } else { 5.0 };
            t.insert(seg(x, x + len, y), RecordId(i));
        }
        assert_eq!(t.stats().cuts, 0, "no cutting outside segment mode");
        let everything = Rect::new([-1.0, -1.0], [1_000.0, 1_000.0]);
        // The raw entries — before any sort/dedup — already carry unique ids.
        let entries = t.search_entries(&everything);
        let mut raw_ids: Vec<RecordId> = entries.iter().map(|(_, r)| *r).collect();
        let raw_len = raw_ids.len();
        raw_ids.sort_unstable();
        raw_ids.dedup();
        assert_eq!(raw_ids.len(), raw_len, "raw R-Tree entries are unique");
        // And the public result equals them, sorted.
        assert_eq!(t.search(&everything), raw_ids);
    }

    #[test]
    fn cursor_reuse_matches_fresh_searches() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        for i in 0..1_000u64 {
            let x = (i % 50) as f64 * 10.0;
            let y = (i / 50) as f64 * 10.0;
            let len = if i % 7 == 0 { 300.0 } else { 4.0 };
            t.insert(seg(x, x + len, y), RecordId(i));
        }
        let mut cursor = SearchCursor::new();
        for qi in 0..20u64 {
            let x = (qi * 23) as f64;
            let q = Rect::new([x, 0.0], [x + 80.0, 200.0]);
            assert_eq!(t.search_with(&mut cursor, &q), t.search(&q), "query {qi}");
            let p = Point::new([x, 50.0]);
            assert_eq!(t.stab_with(&mut cursor, &p), t.stab(&p));
        }
    }

    #[test]
    fn access_counting_is_per_search() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        for i in 0..200u64 {
            t.insert(seg(i as f64, i as f64 + 1.0, i as f64), RecordId(i));
        }
        t.reset_search_stats();
        let q = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let a1 = t.count_search_accesses(&q);
        assert!(a1 >= 2, "multi-level tree visits more than the root");
        let snap = t.stats();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.search_node_accesses, a1);
    }
}
