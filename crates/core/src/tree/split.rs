//! Node splitting (Guttman 1984 §3.5) with the SR-Tree extensions of paper
//! §3.1.2: spanning records are carried over with their branches, and are
//! promoted to the parent when they span one of the two result nodes.

use super::Tree;
use crate::config::SplitAlgorithm;
use crate::entry::Branch;
use crate::id::NodeId;
use crate::node::Node;
use segidx_geom::Rect;

impl<const D: usize> Tree<D> {
    /// Whether `n` exceeds its capacity: "every entry in use and an attempt
    /// is made to insert a new entry" (paper §3.1.2). An SR-Tree node may
    /// overflow from either a new branch or a new spanning record; both
    /// count against the same total capacity. (The `branch_fraction`
    /// reservation affects only Skeleton fanout sizing, not the dynamic
    /// overflow rule — with no spanning records an SR-Tree therefore
    /// behaves *identically* to an R-Tree, as the paper's Graphs 1, 2, and
    /// 5 report.)
    pub(crate) fn is_overflowing(&self, n: NodeId) -> bool {
        let node = self.node(n);
        node.occupancy() > self.config.capacity(node.level)
    }

    /// Resolves overflow on `n`, propagating to ancestors.
    ///
    /// Leaves, and internal nodes whose *branches* alone exceed capacity,
    /// are split (Guttman). An internal node that overflows only because of
    /// its spanning-record load sheds **spanning pressure** instead: the
    /// smallest spanning records are demoted to the leaf level until the
    /// node fits. This realizes the paper's reservation of a fraction of
    /// each non-leaf node for spanning records (§2.1.2, §5 — "reserving 1/3
    /// of the entries to store spanning index records") while keeping the
    /// *largest* intervals in non-leaf nodes, which is the design goal
    /// ("large spanning rectangles were stored in non-leaf nodes", §5.1.
    /// Splitting such a node instead would halve its region and re-cut its
    /// records, cascading into an internal-node tower that destroys the
    /// benefit). A node that can neither split nor shed is allowed to
    /// overflow elastically and counted in the statistics.
    pub(crate) fn handle_overflow(&mut self, n: NodeId) {
        while self.is_overflowing(n) {
            if self.shed_spanning_pressure(n) {
                continue;
            }
            if self.try_forced_reinsert(n) {
                continue;
            }
            if self.config.coalesce.is_some() && self.try_redistribute_leaf(n) {
                continue;
            }
            match self.split_node(n) {
                Some(parent) => self.handle_overflow(parent),
                None => {
                    self.stats.elastic_overflows += 1;
                    self.emit(segidx_obs::EventKind::ElasticOverflow, n);
                    return;
                }
            }
        }
    }

    /// R\*-style forced reinsertion: on the *first* leaf overflow of the
    /// current mutating operation, remove the configured fraction of the
    /// leaf's entries — those whose centers lie farthest from the node's
    /// center — and queue them for reinsertion instead of splitting
    /// (Beckmann et al. 1990 §4.3; disabled in the paper's configurations).
    fn try_forced_reinsert(&mut self, n: NodeId) -> bool {
        let Some(fraction) = self.config.forced_reinsert else {
            return false;
        };
        if !self.reinsert_armed || !self.node(n).is_leaf() {
            return false;
        }
        let Some(mbr) = self.node(n).content_mbr() else {
            return false;
        };
        self.reinsert_armed = false;
        let center = mbr.center();
        let count = ((self.config.capacity(0) as f64 * fraction).ceil() as usize)
            .min(self.node(n).entries().len().saturating_sub(1))
            .max(1);
        // Sort indices by descending distance from the node center.
        let mut order: Vec<(f64, usize)> = self
            .node(n)
            .entries()
            .iter()
            .enumerate()
            .map(|(i, e)| (e.rect.center().distance(&center), i))
            .collect();
        order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        let mut victims: Vec<usize> = order.iter().take(count).map(|&(_, i)| i).collect();
        victims.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        for i in victims {
            let e = self.node_mut(n).entries_mut().swap_remove(i);
            self.entry_count -= 1;
            self.stats.forced_reinserts += 1;
            self.emit(segidx_obs::EventKind::ForcedReinsert, n);
            self.queue_reinsert(e.rect, e.record);
        }
        self.node_mut(n).touch_modified();
        true
    }

    /// Deferred splitting for Skeleton indexes: before splitting an
    /// overflowing leaf, try to move its most outlying entry to an adjacent
    /// sibling with room. Splitting a pre-partitioned tile leaves both
    /// halves half-full and permanently degrades the Skeleton's utilization;
    /// redistribution keeps the pre-allocated grid intact, in the spirit of
    /// the paper's "high-density regions are made finer grained … sparsely
    /// populated regions are merged" adaptation (§4). Enabled together with
    /// coalescing (i.e. for the Skeleton variants only, so the R-Tree
    /// baseline stays pure Guttman).
    fn try_redistribute_leaf(&mut self, n: NodeId) -> bool {
        let node = self.node(n);
        if !node.is_leaf() || node.parent.is_none() {
            return false;
        }
        let parent = node.parent.expect("checked above");
        let leaf_cap = self.config.capacity(0);

        // Best (sibling, entry) pair: the move that enlarges the sibling's
        // region least.
        let mut best: Option<(NodeId, usize, usize, f64)> = None;
        for b in self.node(parent).branches().iter() {
            if b.child == n {
                continue;
            }
            let sib = self.node(b.child);
            if !sib.is_leaf() || sib.entries().len() + 1 > leaf_cap {
                continue;
            }
            for (ei, e) in self.node(n).entries().iter().enumerate() {
                let enlargement = b.rect.enlargement(&e.rect);
                if best.as_ref().map_or(true, |(.., d)| enlargement < *d) {
                    let bi = self
                        .node(parent)
                        .branch_index_of(b.child)
                        .expect("branch present");
                    best = Some((b.child, bi, ei, enlargement));
                }
            }
        }
        let Some((sibling, sibling_bi, entry_idx, enlargement)) = best else {
            return false;
        };
        // Refuse moves that would balloon the sibling's region: a split is
        // better than creating heavy overlap.
        let sib_rect = self.node(parent).branches().rect(sibling_bi);
        if enlargement > sib_rect.area().max(1.0) {
            return false;
        }

        let entry = self.node_mut(n).entries_mut().swap_remove(entry_idx);
        self.node_mut(n).touch_modified();
        let sib_node = self.node_mut(sibling);
        sib_node.entries_mut().push(entry);
        sib_node.touch_modified();
        self.stats.redistributions += 1;
        self.emit(segidx_obs::EventKind::Redistribution, n);
        // Expand the sibling's stored regions (and recheck spanning links)
        // up the path.
        self.adjust_upward(sibling, &entry.rect);
        true
    }

    /// If `n` is an internal node whose overflow is caused by spanning
    /// records, demotes its smallest spanning record to the leaf level and
    /// returns `true`. A node genuinely crowded with *branches* splits
    /// instead — carrying its spanning records with their branches and
    /// promoting the ones that span a half (paper §3.1.2, Figure 4).
    ///
    /// The shed regime extends halfway from the reserved branch fraction to
    /// full capacity: Skeleton grids slightly exceed the reservation by
    /// grid-rounding (e.g. 36 branches against a 2/3 × 51 = 34 reservation)
    /// and must stay in the shed regime, or spanning pressure would split
    /// the pre-partitioned tiles and re-cut every resident record.
    fn shed_spanning_pressure(&mut self, n: NodeId) -> bool {
        let node = self.node(n);
        if node.is_leaf() || node.spanning().is_empty() {
            return false;
        }
        let shed_limit =
            (self.config.branch_capacity(node.level) + self.config.capacity(node.level)) / 2;
        if node.branches().len() > shed_limit {
            return false;
        }
        let (idx, _) = self
            .node(n)
            .spanning()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.rect.margin().total_cmp(&b.rect.margin()))
            .expect("non-empty spanning list");
        let s = self.node_mut(n).spanning_mut().swap_remove(idx);
        self.node_mut(n).touch_modified();
        self.entry_count -= 1;
        self.stats.spanning_evictions += 1;
        self.emit(segidx_obs::EventKind::SpanningEviction, n);
        self.queue_leaf_reinsert(s.rect, s.record);
        true
    }

    /// Splits `n` into itself plus a new sibling, installing the sibling in
    /// the parent (growing the tree at the root). Returns the parent that
    /// received the new branch, or `None` if the node cannot be split.
    fn split_node(&mut self, n: NodeId) -> Option<NodeId> {
        self.touch_maintenance(n);
        let level = self.node(n).level;
        let is_leaf = self.node(n).is_leaf();

        let sibling = if is_leaf {
            let entries = self.node_mut(n).entries_mut().take_vec();
            if entries.len() < 2 {
                self.node_mut(n).entries_mut().assign(entries);
                return None;
            }
            let min_fill = self
                .config
                .min_fill(level, true)
                .min(entries.len() / 2)
                .max(1);
            let (g1, g2) = split_items(entries, |e| e.rect, min_fill, self.config.split);
            self.node_mut(n).entries_mut().assign(g1);
            let mut sib = Node::leaf();
            sib.entries_mut().assign(g2);
            self.stats.leaf_splits += 1;
            self.emit(segidx_obs::EventKind::LeafSplit, n);
            sib
        } else {
            let branches = self.node_mut(n).branches_mut().take_vec();
            if branches.len() < 2 {
                self.node_mut(n).branches_mut().assign(branches);
                return None;
            }
            let min_fill = self
                .config
                .min_fill(level, false)
                .min(branches.len() / 2)
                .max(1);
            let (b1, b2) = split_items(branches, |b| b.rect, min_fill, self.config.split);
            // Spanning records are "carried over" with the branch they are
            // linked to (paper §3.1.2, Figure 4).
            let moved: Vec<NodeId> = b2.iter().map(|b| b.child).collect();
            let spanning = self.node_mut(n).spanning_mut().take_vec();
            let (s2, s1): (Vec<_>, Vec<_>) = spanning
                .into_iter()
                .partition(|s| moved.contains(&s.linked_child));
            self.node_mut(n).branches_mut().assign(b1);
            self.node_mut(n).spanning_mut().assign(s1);
            let mut sib = Node::internal(level);
            sib.branches_mut().assign(b2);
            sib.spanning_mut().assign(s2);
            self.stats.internal_splits += 1;
            self.emit(segidx_obs::EventKind::InternalSplit, n);
            sib
        };

        let sibling_id = self.arena.alloc(sibling);
        self.node_mut(n).touch_modified();
        // Children moved to the sibling need their parent pointers updated.
        if !is_leaf {
            let children: Vec<NodeId> = self.node(sibling_id).branches().children().to_vec();
            for c in children {
                self.node_mut(c).parent = Some(sibling_id);
            }
        }

        let r1 = self.node(n).content_mbr().expect("split half is non-empty");
        let r2 = self
            .node(sibling_id)
            .content_mbr()
            .expect("split half is non-empty");

        let parent = match self.node(n).parent {
            Some(p) => {
                self.touch_maintenance(p);
                let bi = self
                    .node(p)
                    .branch_index_of(n)
                    .expect("parent pointer without matching branch");
                self.node_mut(p).branches_mut().set_rect(bi, &r1);
                self.node_mut(p).branches_mut().push(Branch {
                    rect: r2,
                    child: sibling_id,
                });
                self.node_mut(p).touch_modified();
                self.node_mut(sibling_id).parent = Some(p);
                p
            }
            None => {
                // Root split: the tree grows a level (Guttman's I4).
                let mut root = Node::internal(level + 1);
                root.branches_mut().push(Branch { rect: r1, child: n });
                root.branches_mut().push(Branch {
                    rect: r2,
                    child: sibling_id,
                });
                let root_id = self.arena.alloc(root);
                self.node_mut(n).parent = Some(root_id);
                self.node_mut(sibling_id).parent = Some(root_id);
                self.root = root_id;
                root_id
            }
        };

        if self.config.segment {
            if !is_leaf {
                // Promotion must run before containment cutting so a record
                // that spans a whole half keeps its full extent as it moves
                // up (paper §3.1.2: "possible promotion of spanning index
                // records").
                self.promote_spanning(n, sibling_id, parent);
                self.enforce_spanning_containment(n);
                self.enforce_spanning_containment(sibling_id);
            }
            // The stored region of n shrank from the pre-split region to r1,
            // which can break the *intersection* half of the spanning
            // predicate for records on the parent linked to n.
            self.recheck_spanning_links(parent, n);
        }
        Some(parent)
    }

    /// Moves spanning records on the two split halves up to `parent` when
    /// they span the region of either half (paper §3.1.2).
    fn promote_spanning(&mut self, n: NodeId, sibling: NodeId, parent: NodeId) {
        let rn = self.region_of(n).expect("split node has a stored region");
        let rs = self
            .region_of(sibling)
            .expect("new sibling has a stored region");
        for host in [n, sibling] {
            let mut i = 0;
            while i < self.node(host).spanning().len() {
                let s = self.node(host).spanning().get(i);
                let target = if s.rect.spans_any_dim(&rn) {
                    Some(n)
                } else if s.rect.spans_any_dim(&rs) {
                    Some(sibling)
                } else {
                    None
                };
                match target {
                    Some(spanned_child) => {
                        self.node_mut(host).spanning_mut().swap_remove(i);
                        let mut entry = s;
                        entry.linked_child = spanned_child;
                        self.node_mut(parent).spanning_mut().push(entry);
                        self.node_mut(parent).touch_modified();
                        self.stats.promotions += 1;
                        self.emit(segidx_obs::EventKind::Promotion, parent);
                    }
                    None => i += 1,
                }
            }
        }
    }

    /// Restores the invariant that spanning records on `node` lie within its
    /// stored region, cutting any that stick out (clip in place, queue the
    /// remnants for reinsertion).
    pub(crate) fn enforce_spanning_containment(&mut self, node: NodeId) {
        let Some(region) = self.region_of(node) else {
            return; // the root has no stored region
        };
        let mut i = 0;
        while i < self.node(node).spanning().len() {
            let s = self.node(node).spanning().get(i);
            if region.contains_rect(&s.rect) {
                i += 1;
                continue;
            }
            let cut = s.rect.cut(&region);
            self.stats.cuts += 1;
            self.emit(segidx_obs::EventKind::Cut, node);
            // Split-time remnants reinsert at the leaf level only: letting
            // them re-enter spanning placement lets a shrink-cut-readmit
            // loop amplify one record into thousands of portions.
            for remnant in &cut.remnants {
                self.stats.remnants_inserted += 1;
                self.queue_leaf_reinsert(*remnant, s.record);
            }
            let linked_rect = self
                .node(node)
                .branch_index_of(s.linked_child)
                .map(|bi| self.node(node).branches().rect(bi));
            match (cut.spanning, linked_rect) {
                (Some(clipped), Some(branch_rect)) if clipped.spans_any_dim(&branch_rect) => {
                    self.node_mut(node).spanning_mut().set_rect(i, &clipped);
                    i += 1;
                }
                _ => {
                    // The clipped portion lost its spanning relationship;
                    // demote it to the leaf level instead of keeping a
                    // dangling record (or re-entering spanning placement).
                    self.node_mut(node).spanning_mut().swap_remove(i);
                    self.entry_count -= 1;
                    self.stats.demotions += 1;
                    self.emit(segidx_obs::EventKind::Demotion, node);
                    if let Some(clipped) = cut.spanning {
                        self.queue_leaf_reinsert(clipped, s.record);
                    }
                }
            }
            self.node_mut(node).touch_modified();
        }
    }
}

/// Distributes `items` into two groups per the configured split algorithm,
/// each group holding at least `min_fill` items.
pub(crate) fn split_items<T, const D: usize>(
    items: Vec<T>,
    rect_of: impl Fn(&T) -> Rect<D>,
    min_fill: usize,
    algorithm: SplitAlgorithm,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    if algorithm == SplitAlgorithm::RStar {
        return rstar_split(items, rect_of, min_fill);
    }
    let (seed1, seed2) = match algorithm {
        SplitAlgorithm::Quadratic => pick_seeds_quadratic(&items, &rect_of),
        SplitAlgorithm::Linear => pick_seeds_linear(&items, &rect_of),
        SplitAlgorithm::RStar => unreachable!("handled above"),
    };

    let total = items.len();
    let mut g1: Vec<T> = Vec::with_capacity(total);
    let mut g2: Vec<T> = Vec::with_capacity(total);
    let mut rest: Vec<T> = Vec::with_capacity(total);
    for (i, item) in items.into_iter().enumerate() {
        if i == seed1 {
            g1.push(item);
        } else if i == seed2 {
            g2.push(item);
        } else {
            rest.push(item);
        }
    }
    let mut mbr1 = rect_of(&g1[0]);
    let mut mbr2 = rect_of(&g2[0]);

    while !rest.is_empty() {
        // Min-fill forcing: if one group needs every remaining item to reach
        // the minimum, assign them all (Guttman's QS2).
        if g1.len() + rest.len() == min_fill {
            for item in rest.drain(..) {
                mbr1.expand_to_cover(&rect_of(&item));
                g1.push(item);
            }
            break;
        }
        if g2.len() + rest.len() == min_fill {
            for item in rest.drain(..) {
                mbr2.expand_to_cover(&rect_of(&item));
                g2.push(item);
            }
            break;
        }

        // PickNext: the entry with the greatest preference for one group
        // (quadratic); linear split just takes them in arbitrary order.
        let pick = match algorithm {
            SplitAlgorithm::RStar => unreachable!("RStar split handled separately"),
            SplitAlgorithm::Quadratic => {
                let mut best = 0;
                let mut best_diff = -1.0;
                for (i, item) in rest.iter().enumerate() {
                    let r = rect_of(item);
                    let d1 = mbr1.enlargement(&r);
                    let d2 = mbr2.enlargement(&r);
                    let diff = (d1 - d2).abs();
                    if diff > best_diff {
                        best_diff = diff;
                        best = i;
                    }
                }
                best
            }
            SplitAlgorithm::Linear => rest.len() - 1,
        };
        let item = rest.swap_remove(pick);
        let r = rect_of(&item);
        let d1 = mbr1.enlargement(&r);
        let d2 = mbr2.enlargement(&r);
        // Resolve ties by smaller area, then fewer entries (Guttman QS3).
        let to_first = match d1.total_cmp(&d2) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match mbr1.area().total_cmp(&mbr2.area()) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => g1.len() <= g2.len(),
            },
        };
        if to_first {
            mbr1.expand_to_cover(&r);
            g1.push(item);
        } else {
            mbr2.expand_to_cover(&r);
            g2.push(item);
        }
    }
    (g1, g2)
}

/// Guttman's quadratic PickSeeds: the pair wasting the most area if grouped
/// together.
#[allow(clippy::needless_range_loop)] // pairwise index loop is the clearest form
fn pick_seeds_quadratic<T, const D: usize>(
    items: &[T],
    rect_of: &impl Fn(&T) -> Rect<D>,
) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..items.len() {
        let ri = rect_of(&items[i]);
        for j in (i + 1)..items.len() {
            let rj = rect_of(&items[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Guttman's linear PickSeeds: per dimension, the entry with the highest low
/// side and the entry with the lowest high side; take the dimension with the
/// greatest separation normalized by the total width.
fn pick_seeds_linear<T, const D: usize>(
    items: &[T],
    rect_of: &impl Fn(&T) -> Rect<D>,
) -> (usize, usize) {
    let mut best: Option<(usize, usize)> = None;
    let mut best_norm = f64::NEG_INFINITY;
    for d in 0..D {
        let mut highest_low = (0, f64::NEG_INFINITY);
        let mut lowest_high = (0, f64::INFINITY);
        let mut min_lo = f64::INFINITY;
        let mut max_hi = f64::NEG_INFINITY;
        for (i, item) in items.iter().enumerate() {
            let r = rect_of(item);
            if r.lo(d) > highest_low.1 {
                highest_low = (i, r.lo(d));
            }
            if r.hi(d) < lowest_high.1 {
                lowest_high = (i, r.hi(d));
            }
            min_lo = min_lo.min(r.lo(d));
            max_hi = max_hi.max(r.hi(d));
        }
        let width = max_hi - min_lo;
        if width <= 0.0 || highest_low.0 == lowest_high.0 {
            continue;
        }
        let norm = (highest_low.1 - lowest_high.1) / width;
        if norm > best_norm {
            best_norm = norm;
            best = Some((lowest_high.0, highest_low.0));
        }
    }
    // Degenerate inputs (all rects identical): fall back to the first pair.
    best.unwrap_or((0, 1))
}

/// The R\*-Tree topological split: pick the axis with minimum total margin
/// over all valid distributions (sorted by low then by high side), then the
/// distribution on that axis with minimum overlap (ties: minimum total
/// area).
fn rstar_split<T, const D: usize>(
    items: Vec<T>,
    rect_of: impl Fn(&T) -> Rect<D>,
    min_fill: usize,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    let m = min_fill.clamp(1, n / 2);
    let rects: Vec<Rect<D>> = items.iter().map(&rect_of).collect();

    // For a sorted order, prefix[i] = MBR of the first i+1 rects and
    // suffix[i] = MBR of rects i.. .
    let sweep = |order: &[usize]| -> (Vec<Rect<D>>, Vec<Rect<D>>) {
        let mut prefix = Vec::with_capacity(n);
        let mut acc = rects[order[0]];
        for &i in order {
            acc.expand_to_cover(&rects[i]);
            prefix.push(acc);
        }
        let mut suffix = vec![rects[order[n - 1]]; n];
        let mut acc = rects[order[n - 1]];
        for k in (0..n).rev() {
            acc.expand_to_cover(&rects[order[k]]);
            suffix[k] = acc;
        }
        (prefix, suffix)
    };

    let mut best_axis_orders: Vec<Vec<usize>> = Vec::new();
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0f64;
        let mut orders: Vec<Vec<usize>> = Vec::with_capacity(2);
        for by_hi in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by(|&a, &b| {
                let (ka, kb) = if by_hi {
                    (rects[a].hi(axis), rects[b].hi(axis))
                } else {
                    (rects[a].lo(axis), rects[b].lo(axis))
                };
                ka.total_cmp(&kb)
            });
            let (prefix, suffix) = sweep(&order);
            for k in m..=(n - m) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
            orders.push(order);
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis_orders = orders;
        }
    }

    // On the chosen axis: the distribution with minimum overlap, ties by
    // minimum total area.
    let mut best: Option<(f64, f64, usize, usize)> = None; // (overlap, area, order_idx, k)
    for (oi, order) in best_axis_orders.iter().enumerate() {
        let (prefix, suffix) = sweep(order);
        for k in m..=(n - m) {
            let a = prefix[k - 1];
            let b = suffix[k];
            let overlap = a.overlap_area(&b);
            let area = a.area() + b.area();
            let better = match &best {
                None => true,
                Some((bo, ba, ..)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, oi, k));
            }
        }
    }
    let (_, _, oi, k) = best.expect("at least one distribution exists");
    let order = &best_axis_orders[oi];
    let in_first: Vec<bool> = {
        let mut v = vec![false; n];
        for &i in &order[..k] {
            v[i] = true;
        }
        v
    };
    let mut g1 = Vec::with_capacity(k);
    let mut g2 = Vec::with_capacity(n - k);
    for (i, item) in items.into_iter().enumerate() {
        if in_first[i] {
            g1.push(item);
        } else {
            g2.push(item);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, x1: f64, y0: f64, y1: f64) -> Rect<2> {
        Rect::new([x0, y0], [x1, y1])
    }

    #[test]
    fn quadratic_separates_clusters() {
        let items = vec![
            r(0.0, 1.0, 0.0, 1.0),
            r(0.5, 1.5, 0.0, 1.0),
            r(100.0, 101.0, 0.0, 1.0),
            r(100.5, 101.5, 0.0, 1.0),
        ];
        let (g1, g2) = split_items(items, |x| *x, 2, SplitAlgorithm::Quadratic);
        assert_eq!(g1.len(), 2);
        assert_eq!(g2.len(), 2);
        let mbr = |g: &[Rect<2>]| g.iter().skip(1).fold(g[0], |a, b| a.union(b));
        assert_eq!(mbr(&g1).overlap_area(&mbr(&g2)), 0.0);
    }

    #[test]
    fn linear_separates_clusters() {
        let items = vec![
            r(0.0, 1.0, 0.0, 1.0),
            r(0.5, 1.5, 0.0, 1.0),
            r(100.0, 101.0, 0.0, 1.0),
            r(100.5, 101.5, 0.0, 1.0),
        ];
        let (g1, g2) = split_items(items, |x| *x, 2, SplitAlgorithm::Linear);
        assert_eq!(g1.len() + g2.len(), 4);
        assert!(g1.len() >= 2 - 1 && !g2.is_empty());
        let mbr = |g: &[Rect<2>]| g.iter().skip(1).fold(g[0], |a, b| a.union(b));
        assert!(mbr(&g1).overlap_area(&mbr(&g2)) < 1.0);
    }

    #[test]
    fn min_fill_respected() {
        // One far-away outlier: min fill forces balanced-enough groups.
        let mut items = vec![r(1000.0, 1001.0, 0.0, 1.0)];
        for i in 0..9 {
            let x = i as f64;
            items.push(r(x, x + 0.5, 0.0, 1.0));
        }
        for algo in [SplitAlgorithm::Quadratic, SplitAlgorithm::Linear] {
            let (g1, g2) = split_items(items.clone(), |x| *x, 3, algo);
            assert!(g1.len() >= 3, "{algo:?}: {} < 3", g1.len());
            assert!(g2.len() >= 3, "{algo:?}: {} < 3", g2.len());
            assert_eq!(g1.len() + g2.len(), 10);
        }
    }

    #[test]
    fn identical_rects_still_split() {
        let items = vec![r(0.0, 1.0, 0.0, 1.0); 6];
        for algo in [SplitAlgorithm::Quadratic, SplitAlgorithm::Linear] {
            let (g1, g2) = split_items(items.clone(), |x| *x, 2, algo);
            assert!(g1.len() >= 2 && g2.len() >= 2, "{algo:?}");
            assert_eq!(g1.len() + g2.len(), 6);
        }
    }

    #[test]
    fn two_items_split_one_each() {
        let items = vec![r(0.0, 1.0, 0.0, 1.0), r(5.0, 6.0, 0.0, 1.0)];
        let (g1, g2) = split_items(items, |x| *x, 1, SplitAlgorithm::Quadratic);
        assert_eq!(g1.len(), 1);
        assert_eq!(g2.len(), 1);
    }
}
