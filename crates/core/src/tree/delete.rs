//! Deletion.
//!
//! The paper notes that historical data indexes "only need to support
//! insertion and search operations" (§3.1.1) and gives no delete algorithm;
//! this module provides one as a library extension. A logical record may be
//! physically stored as several portions (the spanning portion plus remnants
//! of cuts), all of which lie inside the record's original rectangle — so a
//! traversal constrained to that rectangle finds every portion.
//!
//! Under-full leaves are condensed by reinsertion (Guttman's CondenseTree);
//! emptied internal nodes are removed, and a single-branch internal root is
//! collapsed. Stored regions are *not* shrunk on deletion: covering regions
//! remain conservative, which preserves all search and spanning invariants
//! at the cost of some precision after heavy deletion.

use super::Tree;
use crate::id::{NodeId, RecordId};
use crate::node::NodeKind;
use segidx_geom::Rect;

impl<const D: usize> Tree<D> {
    /// Removes the record `record`, whose original geometry was `rect`.
    ///
    /// Returns `true` if any portion of the record was found and removed.
    /// All physical portions (spanning and remnant) are removed in one call.
    pub fn delete(&mut self, rect: &Rect<D>, record: RecordId) -> bool {
        let t0 = self.obs_start();
        let _sp = segidx_obs::trace::span("tree.delete");
        self.reinsert_armed = self.config.forced_reinsert.is_some();
        let mut removed = 0usize;
        let mut touched_leaves: Vec<NodeId> = Vec::new();

        // Constrained traversal: every portion of `record` lies inside
        // `rect`, and stored regions cover their contents, so it suffices to
        // descend branches intersecting `rect`.
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            self.touch_maintenance(n);
            let node = self.node_mut(n);
            match &mut node.kind {
                NodeKind::Leaf { entries } => {
                    let before = entries.len();
                    entries.retain(|e| e.record != record);
                    let taken = before - entries.len();
                    if taken > 0 {
                        node.mod_count += 1;
                        removed += taken;
                        touched_leaves.push(n);
                    }
                }
                NodeKind::Internal { branches, spanning } => {
                    let before = spanning.len();
                    spanning.retain(|s| s.record != record);
                    let taken = before - spanning.len();
                    if taken > 0 {
                        node.mod_count += 1;
                        removed += taken;
                    }
                    for b in branches.iter() {
                        if b.rect.intersects(rect) {
                            stack.push(b.child);
                        }
                    }
                }
            }
        }
        if removed == 0 {
            self.obs_record(|o| &o.delete, t0);
            return false;
        }
        self.entry_count -= removed;
        self.len -= 1;

        for leaf in touched_leaves {
            self.condense_leaf(leaf);
        }
        self.collapse_root();
        self.drain_pending();
        self.obs_record(|o| &o.delete, t0);
        true
    }

    /// Condenses an under-full leaf: its remaining entries are queued for
    /// reinsertion and the leaf is unlinked (unless it is the root).
    fn condense_leaf(&mut self, leaf: NodeId) {
        let min_fill = self.config.min_fill(0, true);
        let node = self.node(leaf);
        if node.parent.is_none() || node.entries().len() >= min_fill {
            return;
        }
        let entries = self.node_mut(leaf).entries_mut().take_vec();
        self.entry_count -= entries.len();
        for e in entries {
            self.queue_reinsert(e.rect, e.record);
        }
        self.unlink_child(leaf);
    }

    /// Removes `child` from its parent, handling spanning records linked to
    /// its branch and recursively removing internal nodes left empty.
    pub(crate) fn unlink_child(&mut self, child: NodeId) {
        let Some(parent) = self.node(child).parent else {
            return;
        };
        let bi = self
            .node(parent)
            .branch_index_of(child)
            .expect("parent pointer without matching branch");
        self.node_mut(parent).branches_mut().swap_remove(bi);
        self.node_mut(parent).touch_modified();
        self.arena.dealloc(child);

        // Spanning records linked to the removed branch are relinked to
        // another branch they span, or demoted.
        let branch_rects: Vec<(NodeId, Rect<D>)> = self
            .node(parent)
            .branches()
            .iter()
            .map(|b| (b.child, b.rect))
            .collect();
        let mut i = 0;
        while i < self.node(parent).spanning().len() {
            let s = self.node(parent).spanning().get(i);
            if s.linked_child != child {
                i += 1;
                continue;
            }
            match branch_rects.iter().find(|(_, r)| s.rect.spans_any_dim(r)) {
                Some((new_child, _)) => {
                    self.node_mut(parent)
                        .spanning_mut()
                        .set_linked_child(i, *new_child);
                    self.stats.relinks += 1;
                    self.emit(segidx_obs::EventKind::Relink, parent);
                    i += 1;
                }
                None => {
                    self.node_mut(parent).spanning_mut().swap_remove(i);
                    self.entry_count -= 1;
                    self.stats.demotions += 1;
                    self.emit(segidx_obs::EventKind::Demotion, parent);
                    self.queue_reinsert(s.rect, s.record);
                }
            }
        }

        if self.node(parent).branches().is_empty() {
            // Queue any stranded spanning records and remove the node.
            let spanning = self.node_mut(parent).spanning_mut().take_vec();
            self.entry_count -= spanning.len();
            for s in spanning {
                self.queue_reinsert(s.rect, s.record);
            }
            if self.node(parent).parent.is_some() {
                self.unlink_child(parent);
            } else {
                // Empty internal root: reset to an empty leaf.
                let root = self.root;
                self.arena.dealloc(root);
                let new_root = self.arena.alloc(crate::node::Node::leaf());
                self.root = new_root;
            }
        }
    }

    /// Collapses a single-branch internal root (Guttman's D3), repeatedly.
    fn collapse_root(&mut self) {
        loop {
            let root = self.root;
            let node = self.node(root);
            if node.is_leaf() || node.branches().len() != 1 {
                return;
            }
            // Spanning records on the root move down with the collapse only
            // if they still make sense; otherwise reinsert them.
            let spanning = self.node_mut(root).spanning_mut().take_vec();
            self.entry_count -= spanning.len();
            for s in spanning {
                self.queue_reinsert(s.rect, s.record);
            }
            let child = self.node(root).branches().child(0);
            self.node_mut(child).parent = None;
            self.arena.dealloc(root);
            self.root = child;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::IndexConfig;
    use crate::id::RecordId;
    use crate::tree::Tree;
    use segidx_geom::Rect;

    fn seg(x0: f64, x1: f64, y: f64) -> Rect<2> {
        Rect::new([x0, y], [x1, y])
    }

    #[test]
    fn delete_from_single_leaf() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        let r = seg(0.0, 10.0, 5.0);
        t.insert(r, RecordId(1));
        assert!(t.delete(&r, RecordId(1)));
        assert!(t.is_empty());
        assert_eq!(t.entry_count(), 0);
        assert!(!t.delete(&r, RecordId(1)), "already gone");
        assert!(t.search(&r).is_empty());
    }

    #[test]
    fn delete_leaves_others_intact() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        let rects: Vec<_> = (0..300u64)
            .map(|i| {
                let r = seg((i % 20) as f64 * 5.0, (i % 20) as f64 * 5.0 + 3.0, i as f64);
                t.insert(r, RecordId(i));
                r
            })
            .collect();
        for i in (0..300u64).step_by(3) {
            assert!(t.delete(&rects[i as usize], RecordId(i)), "delete {i}");
        }
        assert_eq!(t.len(), 200);
        let all = t.search(&Rect::new([0.0, 0.0], [1e6, 1e6]));
        assert_eq!(all.len(), 200);
        assert!(all.iter().all(|r| r.raw() % 3 != 0));
    }

    #[test]
    fn delete_removes_all_cut_portions() {
        let mut t: Tree<2> = Tree::new(IndexConfig::srtree());
        for i in 0..600u64 {
            let x = (i % 30) as f64 * 10.0;
            let y = (i / 30) as f64 * 10.0;
            t.insert(seg(x, x + 4.0, y), RecordId(i));
        }
        // On a data row so it intersects (and spans) existing node regions.
        let long = seg(0.0, 300.0, 50.0);
        t.insert(long, RecordId(7777));
        let stats = t.stats();
        assert!(stats.spanning_stores > 0, "long segment stored as spanning");
        assert!(t.delete(&long, RecordId(7777)));
        let hits = t.search(&Rect::new([0.0, 0.0], [1000.0, 1000.0]));
        assert!(!hits.contains(&RecordId(7777)));
        assert_eq!(t.len(), 600);
    }

    #[test]
    fn tree_shrinks_back_to_leaf() {
        let mut t: Tree<2> = Tree::new(IndexConfig::rtree());
        let rects: Vec<_> = (0..200u64)
            .map(|i| {
                let r = seg(i as f64, i as f64 + 0.5, i as f64);
                t.insert(r, RecordId(i));
                r
            })
            .collect();
        assert!(t.height() > 1);
        for (i, r) in rects.iter().enumerate() {
            assert!(t.delete(r, RecordId(i as u64)));
        }
        assert!(t.is_empty());
        assert_eq!(t.entry_count(), 0);
        assert!(t.height() <= 2, "tree collapsed, got height {}", t.height());
        // And remains usable.
        t.insert(seg(1.0, 2.0, 1.0), RecordId(999));
        assert_eq!(t.search(&seg(0.0, 3.0, 1.0)), vec![RecordId(999)]);
    }
}
