//! Index node entries: leaf records, branches, and spanning records.

use crate::id::{NodeId, RecordId};
use segidx_geom::Rect;

/// An external index record on a leaf node: a rectangle plus the id of the
/// data record it describes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeafEntry<const D: usize> {
    /// The indexed geometry (a point, segment, or box).
    pub rect: Rect<D>,
    /// The data record this entry points at.
    pub record: RecordId,
}

/// An internal branch on a non-leaf node: the stored covering region of a
/// child node plus the child's id.
///
/// In plain R-Trees the stored region is the minimal bounding rectangle of
/// the child's contents; in Skeleton indexes it may be a larger pre-allocated
/// tile (paper §4). Search correctness only requires that the stored region
/// covers everything reachable through the child.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Branch<const D: usize> {
    /// Covering region of the child.
    pub rect: Rect<D>,
    /// The child node.
    pub child: NodeId,
}

/// A *spanning index record* stored on a non-leaf node (paper §3.1.1,
/// Figure 2): an external record that spans the region of one of the node's
/// branches, linked to that branch.
///
/// Invariants maintained by the tree:
/// * `rect` spans (in at least one dimension) and intersects the region of
///   the branch whose child is [`SpanningEntry::linked_child`];
/// * `rect` is wholly contained by the region of the node storing the entry
///   (enforced by cutting; not applicable to the root, which has no stored
///   region).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpanningEntry<const D: usize> {
    /// The (possibly cut) indexed geometry.
    pub rect: Rect<D>,
    /// The data record this entry points at.
    pub record: RecordId,
    /// The child id of the branch this entry is linked to.
    pub linked_child: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_small() {
        // The paper derives node capacities from a fixed entry size; keep
        // the in-memory representations compact as well.
        assert!(std::mem::size_of::<LeafEntry<2>>() <= 40);
        assert!(std::mem::size_of::<Branch<2>>() <= 40);
        assert!(std::mem::size_of::<SpanningEntry<2>>() <= 48);
    }
}
