//! Index node entries: leaf records, branches, and spanning records —
//! plus the structure-of-arrays stores that hold them inside nodes.
//!
//! Nodes do **not** store `Vec<LeafEntry>` etc. directly. Each store keeps
//! the entry rectangles as per-dimension `lo`/`hi` coordinate planes
//! (see [`RectSoA`]) alongside parallel payload arrays, so the search hot
//! loops can hand contiguous `&[f64]` planes straight to the branchless
//! scan kernels in `segidx_geom`. The entry structs ([`LeafEntry`],
//! [`Branch`], [`SpanningEntry`]) survive as *views*: mutation paths and
//! invariant logic work with whole entries reconstructed on demand, which
//! keeps them readable while the layout stays scan-friendly.

use crate::id::{NodeId, RecordId};
use segidx_geom::{Coord, Rect};

/// An external index record on a leaf node: a rectangle plus the id of the
/// data record it describes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeafEntry<const D: usize> {
    /// The indexed geometry (a point, segment, or box).
    pub rect: Rect<D>,
    /// The data record this entry points at.
    pub record: RecordId,
}

/// An internal branch on a non-leaf node: the stored covering region of a
/// child node plus the child's id.
///
/// In plain R-Trees the stored region is the minimal bounding rectangle of
/// the child's contents; in Skeleton indexes it may be a larger pre-allocated
/// tile (paper §4). Search correctness only requires that the stored region
/// covers everything reachable through the child.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Branch<const D: usize> {
    /// Covering region of the child.
    pub rect: Rect<D>,
    /// The child node.
    pub child: NodeId,
}

/// A *spanning index record* stored on a non-leaf node (paper §3.1.1,
/// Figure 2): an external record that spans the region of one of the node's
/// branches, linked to that branch.
///
/// Invariants maintained by the tree:
/// * `rect` spans (in at least one dimension) and intersects the region of
///   the branch whose child is [`SpanningEntry::linked_child`];
/// * `rect` is wholly contained by the region of the node storing the entry
///   (enforced by cutting; not applicable to the root, which has no stored
///   region).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpanningEntry<const D: usize> {
    /// The (possibly cut) indexed geometry.
    pub rect: Rect<D>,
    /// The data record this entry points at.
    pub record: RecordId,
    /// The child id of the branch this entry is linked to.
    pub linked_child: NodeId,
}

/// Rectangles stored as structure-of-arrays coordinate planes: entry
/// `i`'s bounds in dimension `d` are `los[d][i]` / `his[d][i]`, each
/// plane a contiguous `Vec<f64>`. Intersection-style scans touch only
/// the planes they test, never the payload they don't.
#[derive(Clone, Debug, PartialEq)]
pub struct RectSoA<const D: usize> {
    los: [Vec<Coord>; D],
    his: [Vec<Coord>; D],
}

impl<const D: usize> RectSoA<D> {
    /// An empty plane set.
    pub fn new() -> Self {
        Self {
            los: std::array::from_fn(|_| Vec::new()),
            his: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Number of rectangles stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.los[0].len()
    }

    /// Whether no rectangles are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.los[0].is_empty()
    }

    /// Reconstructs rectangle `i` from the planes.
    #[inline]
    pub fn get(&self, i: usize) -> Rect<D> {
        Rect::new(
            std::array::from_fn(|d| self.los[d][i]),
            std::array::from_fn(|d| self.his[d][i]),
        )
    }

    /// Appends a rectangle.
    #[inline]
    pub fn push(&mut self, rect: &Rect<D>) {
        for d in 0..D {
            self.los[d].push(rect.lo(d));
            self.his[d].push(rect.hi(d));
        }
    }

    /// Overwrites rectangle `i`.
    #[inline]
    pub fn set(&mut self, i: usize, rect: &Rect<D>) {
        for d in 0..D {
            self.los[d][i] = rect.lo(d);
            self.his[d][i] = rect.hi(d);
        }
    }

    /// Removes rectangle `i` by swapping in the last one.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> Rect<D> {
        Rect::new(
            std::array::from_fn(|d| self.los[d].swap_remove(i)),
            std::array::from_fn(|d| self.his[d].swap_remove(i)),
        )
    }

    /// Drops all rectangles, keeping allocations.
    pub fn clear(&mut self) {
        for d in 0..D {
            self.los[d].clear();
            self.his[d].clear();
        }
    }

    /// The `(lo, hi)` planes, ready for the `segidx_geom` scan kernels.
    #[inline]
    pub fn planes(&self) -> ([&[Coord]; D], [&[Coord]; D]) {
        (
            std::array::from_fn(|d| self.los[d].as_slice()),
            std::array::from_fn(|d| self.his[d].as_slice()),
        )
    }

    /// Union of all stored rectangles, `None` when empty.
    pub fn union_all(&self) -> Option<Rect<D>> {
        if self.is_empty() {
            return None;
        }
        let lo = std::array::from_fn(|d| self.los[d].iter().copied().fold(f64::INFINITY, f64::min));
        let hi = std::array::from_fn(|d| {
            self.his[d]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        });
        Some(Rect::new(lo, hi))
    }
}

impl<const D: usize> Default for RectSoA<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// Generates the shared Vec-like entry-view API for one store type. Each
/// store pairs a [`RectSoA`] with parallel payload columns; the macro
/// wires the entry struct (the *view*) to the columns so mutation code
/// reads like it did when nodes held `Vec<Entry>`.
macro_rules! soa_store {
    (
        $(#[$doc:meta])*
        $store:ident, $entry:ident, $rect_field:ident,
        { $( $(#[$fdoc:meta])* $field:ident : $fty:ty ),+ $(,)? }
    ) => {
        $(#[$doc])*
        #[derive(Clone, Debug, Default, PartialEq)]
        pub struct $store<const D: usize> {
            rects: RectSoA<D>,
            $( $field: Vec<$fty>, )+
        }

        impl<const D: usize> $store<D> {
            /// An empty store.
            pub fn new() -> Self {
                Self::default()
            }

            /// Number of entries.
            #[inline]
            pub fn len(&self) -> usize {
                self.rects.len()
            }

            /// Whether the store is empty.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.rects.is_empty()
            }

            /// Entry `i` as a by-value view.
            #[inline]
            pub fn get(&self, i: usize) -> $entry<D> {
                $entry {
                    $rect_field: self.rects.get(i),
                    $( $field: self.$field[i], )+
                }
            }

            /// Rectangle of entry `i` (no payload gather).
            #[inline]
            pub fn rect(&self, i: usize) -> Rect<D> {
                self.rects.get(i)
            }

            /// Overwrites the rectangle of entry `i`.
            #[inline]
            pub fn set_rect(&mut self, i: usize, rect: &Rect<D>) {
                self.rects.set(i, rect);
            }

            /// Appends an entry.
            #[inline]
            pub fn push(&mut self, e: $entry<D>) {
                self.rects.push(&e.$rect_field);
                $( self.$field.push(e.$field); )+
            }

            /// Removes entry `i` by swapping in the last one.
            #[inline]
            pub fn swap_remove(&mut self, i: usize) -> $entry<D> {
                $entry {
                    $rect_field: self.rects.swap_remove(i),
                    $( $field: self.$field.swap_remove(i), )+
                }
            }

            /// Drops all entries, keeping allocations.
            pub fn clear(&mut self) {
                self.rects.clear();
                $( self.$field.clear(); )+
            }

            /// Iterates entry views in storage order.
            pub fn iter(&self) -> impl Iterator<Item = $entry<D>> + '_ {
                (0..self.len()).map(move |i| self.get(i))
            }

            /// Keeps only entries satisfying `pred`, preserving order.
            pub fn retain(&mut self, mut pred: impl FnMut(&$entry<D>) -> bool) {
                let mut kept = 0;
                for i in 0..self.len() {
                    let e = self.get(i);
                    if pred(&e) {
                        if kept != i {
                            self.rects.set(kept, &e.$rect_field);
                            $( self.$field[kept] = e.$field; )+
                        }
                        kept += 1;
                    }
                }
                self.truncate(kept);
            }

            /// Shortens the store to `len` entries.
            pub fn truncate(&mut self, len: usize) {
                for d in 0..D {
                    let (los, his) = self.rects.planes_mut_internal();
                    los[d].truncate(len);
                    his[d].truncate(len);
                }
                $( self.$field.truncate(len); )+
            }

            /// Moves all entries out into a `Vec` of views (for
            /// redistribution algorithms that shuffle whole entries),
            /// leaving the store empty with capacity intact.
            pub fn take_vec(&mut self) -> Vec<$entry<D>> {
                let out: Vec<$entry<D>> = self.iter().collect();
                self.clear();
                out
            }

            /// Replaces the store's contents with `entries`.
            pub fn assign(&mut self, entries: Vec<$entry<D>>) {
                self.clear();
                self.extend(entries);
            }

            /// The `(lo, hi)` coordinate planes for scan kernels.
            #[inline]
            pub fn planes(&self) -> ([&[Coord]; D], [&[Coord]; D]) {
                self.rects.planes()
            }

            /// Union of all entry rectangles, `None` when empty.
            pub fn union_all(&self) -> Option<Rect<D>> {
                self.rects.union_all()
            }
        }

        impl<const D: usize> Extend<$entry<D>> for $store<D> {
            fn extend<I: IntoIterator<Item = $entry<D>>>(&mut self, iter: I) {
                for e in iter {
                    self.push(e);
                }
            }
        }

        impl<const D: usize> FromIterator<$entry<D>> for $store<D> {
            fn from_iter<I: IntoIterator<Item = $entry<D>>>(iter: I) -> Self {
                let mut s = Self::new();
                s.extend(iter);
                s
            }
        }
    };
}

impl<const D: usize> RectSoA<D> {
    /// Internal mutable plane access for the store macro.
    #[inline]
    fn planes_mut_internal(&mut self) -> (&mut [Vec<Coord>; D], &mut [Vec<Coord>; D]) {
        (&mut self.los, &mut self.his)
    }
}

soa_store!(
    /// SoA store of a leaf's index records: coordinate planes plus the
    /// parallel record-id column.
    LeafStore, LeafEntry, rect,
    {
        record: RecordId,
    }
);

soa_store!(
    /// SoA store of an internal node's branches: coordinate planes plus
    /// the parallel child-id column.
    BranchStore, Branch, rect,
    {
        child: NodeId,
    }
);

soa_store!(
    /// SoA store of an internal node's spanning records: coordinate
    /// planes plus record-id and linked-child columns.
    SpanningStore, SpanningEntry, rect,
    {
        record: RecordId,
        linked_child: NodeId,
    }
);

impl<const D: usize> LeafStore<D> {
    /// The record-id payload column.
    #[inline]
    pub fn records(&self) -> &[RecordId] {
        &self.record
    }

    /// Record id of entry `i`.
    #[inline]
    pub fn record(&self, i: usize) -> RecordId {
        self.record[i]
    }
}

impl<const D: usize> BranchStore<D> {
    /// The child-id payload column.
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.child
    }

    /// Child id of branch `i`.
    #[inline]
    pub fn child(&self, i: usize) -> NodeId {
        self.child[i]
    }

    /// Index of the branch pointing at `child`, if present.
    #[inline]
    pub fn position_of_child(&self, child: NodeId) -> Option<usize> {
        self.child.iter().position(|&c| c == child)
    }
}

impl<const D: usize> SpanningStore<D> {
    /// Record id of entry `i`.
    #[inline]
    pub fn record(&self, i: usize) -> RecordId {
        self.record[i]
    }

    /// Linked child of entry `i`.
    #[inline]
    pub fn linked_child(&self, i: usize) -> NodeId {
        self.linked_child[i]
    }

    /// Relinks entry `i` to another branch's child.
    #[inline]
    pub fn set_linked_child(&mut self, i: usize, child: NodeId) {
        self.linked_child[i] = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_small() {
        // The paper derives node capacities from a fixed entry size; keep
        // the in-memory representations compact as well.
        assert!(std::mem::size_of::<LeafEntry<2>>() <= 40);
        assert!(std::mem::size_of::<Branch<2>>() <= 40);
        assert!(std::mem::size_of::<SpanningEntry<2>>() <= 48);
    }

    fn entry(x0: f64, x1: f64, id: u64) -> LeafEntry<2> {
        LeafEntry {
            rect: Rect::new([x0, 0.0], [x1, 1.0]),
            record: RecordId(id),
        }
    }

    #[test]
    fn store_roundtrips_entries() {
        let mut s: LeafStore<2> = LeafStore::new();
        for i in 0..10 {
            s.push(entry(i as f64, i as f64 + 2.0, i));
        }
        assert_eq!(s.len(), 10);
        for i in 0..10 {
            assert_eq!(s.get(i), entry(i as f64, i as f64 + 2.0, i as u64));
        }
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[3], s.get(3));
    }

    #[test]
    fn planes_are_parallel_and_contiguous() {
        let mut s: LeafStore<2> = LeafStore::new();
        s.push(entry(1.0, 4.0, 1));
        s.push(entry(2.0, 6.0, 2));
        let (los, his) = s.planes();
        assert_eq!(los[0], &[1.0, 2.0]);
        assert_eq!(his[0], &[4.0, 6.0]);
        assert_eq!(los[1], &[0.0, 0.0]);
        assert_eq!(his[1], &[1.0, 1.0]);
        assert_eq!(s.records(), &[RecordId(1), RecordId(2)]);
    }

    #[test]
    fn swap_remove_and_retain_match_vec_semantics() {
        let mut s: LeafStore<2> = LeafStore::new();
        let mut model: Vec<LeafEntry<2>> = Vec::new();
        for i in 0..12 {
            let e = entry(i as f64, i as f64 + 1.0, i);
            s.push(e);
            model.push(e);
        }
        assert_eq!(s.swap_remove(4), model.swap_remove(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), model);
        s.retain(|e| e.record.0 % 3 != 0);
        model.retain(|e| e.record.0 % 3 != 0);
        assert_eq!(s.iter().collect::<Vec<_>>(), model);
    }

    #[test]
    fn take_vec_empties_the_store() {
        let mut s: LeafStore<2> = LeafStore::new();
        s.push(entry(0.0, 1.0, 7));
        s.push(entry(5.0, 9.0, 8));
        let v = s.take_vec();
        assert_eq!(v.len(), 2);
        assert!(s.is_empty());
        s.extend(v);
        assert_eq!(s.len(), 2);
        assert_eq!(s.record(1), RecordId(8));
    }

    #[test]
    fn set_rect_and_union_all() {
        let mut s: BranchStore<2> = BranchStore::new();
        s.push(Branch {
            rect: Rect::new([0.0, 0.0], [1.0, 1.0]),
            child: NodeId(1),
        });
        s.push(Branch {
            rect: Rect::new([5.0, 5.0], [6.0, 6.0]),
            child: NodeId(2),
        });
        s.set_rect(0, &Rect::new([-1.0, 0.0], [2.0, 1.0]));
        assert_eq!(s.rect(0), Rect::new([-1.0, 0.0], [2.0, 1.0]));
        assert_eq!(s.child(0), NodeId(1));
        assert_eq!(s.union_all(), Some(Rect::new([-1.0, 0.0], [6.0, 6.0])));
        assert_eq!(s.position_of_child(NodeId(2)), Some(1));
        assert_eq!(s.position_of_child(NodeId(9)), None);
    }

    #[test]
    fn spanning_store_relinks() {
        let mut s: SpanningStore<2> = SpanningStore::new();
        s.push(SpanningEntry {
            rect: Rect::new([0.0, 0.0], [10.0, 0.0]),
            record: RecordId(3),
            linked_child: NodeId(1),
        });
        s.set_linked_child(0, NodeId(4));
        assert_eq!(s.linked_child(0), NodeId(4));
        assert_eq!(s.record(0), RecordId(3));
    }
}
