//! Static bulk loading (Sort-Tile-Recursive packing).
//!
//! The paper contrasts its *dynamic* Skeleton approach with static packing
//! algorithms "such as that suggested by \[ROUS85\]", which require all data
//! up front (§4). This module provides such a packed R-Tree builder as a
//! baseline for that comparison: it produces a fully packed, balanced tree
//! with near-100% node utilization.

use crate::config::IndexConfig;
use crate::entry::{Branch, LeafEntry};
use crate::id::{NodeId, RecordId};
use crate::node::{Arena, Node};
use crate::tree::Tree;
use segidx_geom::Rect;

/// Builds a packed R-Tree over `items` (Sort-Tile-Recursive).
///
/// The resulting tree is a perfectly valid dynamic index — further inserts
/// and deletes behave normally — but its initial layout is the static
/// optimum the paper's dynamic structures are measured against. The
/// `segment` flag of `config` is ignored during packing (all records go to
/// leaves, as \[ROUS85\] prescribes); subsequent inserts honor it.
pub fn bulk_load<const D: usize>(config: IndexConfig, items: Vec<(Rect<D>, RecordId)>) -> Tree<D> {
    bulk_load_inner(config, items, None)
}

/// Like [`bulk_load`], but installs `telemetry` on the result and records
/// the packing wall time into its `bulk_load` histogram.
pub fn bulk_load_with_telemetry<const D: usize>(
    config: IndexConfig,
    items: Vec<(Rect<D>, RecordId)>,
    telemetry: std::sync::Arc<crate::telemetry::TreeTelemetry>,
) -> Tree<D> {
    bulk_load_inner(config, items, Some(telemetry))
}

fn bulk_load_inner<const D: usize>(
    config: IndexConfig,
    items: Vec<(Rect<D>, RecordId)>,
    telemetry: Option<std::sync::Arc<crate::telemetry::TreeTelemetry>>,
) -> Tree<D> {
    let t0 = telemetry.as_ref().map(|_| std::time::Instant::now());
    let mut tree = pack(config, items);
    if let (Some(obs), Some(t0)) = (telemetry, t0) {
        obs.bulk_load.record_duration(t0.elapsed());
        tree.set_telemetry(Some(obs));
    }
    tree
}

fn pack<const D: usize>(config: IndexConfig, items: Vec<(Rect<D>, RecordId)>) -> Tree<D> {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid index config: {e}"));
    if items.is_empty() {
        return Tree::new(config);
    }
    let total = items.len();
    let mut arena: Arena<D> = Arena::new();

    // Pack leaves at ~100% of leaf capacity.
    let leaf_cap = config.capacity(0);
    let chunks = str_chunks(items, leaf_cap, |(r, _): &(Rect<D>, RecordId)| *r, 0);
    let mut level_nodes: Vec<(Rect<D>, NodeId)> = chunks
        .into_iter()
        .map(|chunk| {
            let mut leaf = Node::leaf();
            *leaf.entries_mut() = chunk
                .into_iter()
                .map(|(rect, record)| LeafEntry { rect, record })
                .collect();
            let mbr = leaf.content_mbr().expect("non-empty chunk");
            (mbr, arena.alloc(leaf))
        })
        .collect();

    // Pack upper levels until a single root remains.
    let mut level: u32 = 1;
    while level_nodes.len() > 1 {
        let cap = config.branch_capacity(level);
        let chunks = str_chunks(level_nodes, cap, |(r, _): &(Rect<D>, NodeId)| *r, 0);
        level_nodes = chunks
            .into_iter()
            .map(|chunk| {
                let mut node = Node::internal(level);
                *node.branches_mut() = chunk
                    .iter()
                    .map(|(rect, child)| Branch {
                        rect: *rect,
                        child: *child,
                    })
                    .collect();
                let mbr = node.content_mbr().expect("non-empty chunk");
                let id = arena.alloc(node);
                for (_, child) in &chunk {
                    arena.get_mut(*child).parent = Some(id);
                }
                (mbr, id)
            })
            .collect();
        level += 1;
    }

    let root = level_nodes[0].1;
    let mut tree = Tree::from_parts(config, arena, root);
    tree.len = total;
    tree.entry_count = total;
    tree
}

/// Sort-Tile-Recursive grouping: slices `items` into groups of at most
/// `cap`, tiling dimension `dim` first and recursing on the rest.
fn str_chunks<T, const D: usize>(
    mut items: Vec<T>,
    cap: usize,
    rect_of: impl Fn(&T) -> Rect<D> + Copy,
    dim: usize,
) -> Vec<Vec<T>> {
    debug_assert!(cap >= 1);
    let n = items.len();
    if n <= cap {
        return vec![items];
    }
    items.sort_unstable_by(|a, b| rect_of(a).center()[dim].total_cmp(&rect_of(b).center()[dim]));
    if dim == D - 1 {
        // Final dimension: fixed-size runs. Consume through the iterator —
        // `split_off` here would recopy the remainder per run, turning the
        // pack quadratic in the slab size.
        let mut out = Vec::with_capacity(n.div_ceil(cap));
        let mut it = items.into_iter();
        loop {
            let run: Vec<T> = it.by_ref().take(cap).collect();
            if run.is_empty() {
                return out;
            }
            out.push(run);
        }
    }
    // Slab count: S = ceil(P^(1/dims_left)) with P = ceil(n/cap).
    let pages = n.div_ceil(cap);
    let dims_left = (D - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / dims_left).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut out = Vec::new();
    let mut it = items.into_iter();
    loop {
        let slab: Vec<T> = it.by_ref().take(slab_size).collect();
        if slab.is_empty() {
            return out;
        }
        out.extend(str_chunks(slab, cap, rect_of, dim + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> Vec<(Rect<2>, RecordId)> {
        (0..n)
            .map(|i| {
                let x = ((i * 61) % 1000) as f64;
                let y = ((i * 29) % 1000) as f64;
                (Rect::new([x, y], [x + 2.0, y + 2.0]), RecordId(i))
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let t = bulk_load::<2>(IndexConfig::rtree(), vec![]);
        assert!(t.is_empty());
        t.assert_invariants();
    }

    #[test]
    fn bulk_load_is_valid_and_complete() {
        let t = bulk_load(IndexConfig::rtree(), items(5_000));
        t.assert_invariants();
        assert_eq!(t.len(), 5_000);
        let all = t.search(&Rect::new([0.0, 0.0], [2000.0, 2000.0]));
        assert_eq!(all.len(), 5_000);
    }

    #[test]
    fn packed_utilization_is_high() {
        let t = bulk_load(IndexConfig::rtree(), items(10_000));
        let leaf_cap = t.config().capacity(0);
        let min_leaves = 10_000usize.div_ceil(leaf_cap);
        let leaves = t.level_profile()[0];
        assert!(
            leaves <= min_leaves + min_leaves / 10,
            "packed tree uses {leaves} leaves, optimum {min_leaves}"
        );
    }

    #[test]
    fn single_page_input() {
        let t = bulk_load(IndexConfig::rtree(), items(10));
        assert_eq!(t.height(), 1);
        t.assert_invariants();
        assert_eq!(t.search(&Rect::new([0.0, 0.0], [2000.0, 2000.0])).len(), 10);
    }

    #[test]
    fn bulk_loaded_tree_accepts_dynamic_inserts() {
        let mut t = bulk_load(IndexConfig::srtree(), items(2_000));
        for i in 0..500u64 {
            let x = (i * 2) as f64;
            t.insert(
                Rect::new([x, 500.0], [x + 800.0, 500.0]),
                RecordId(100_000 + i),
            );
        }
        t.assert_invariants();
        assert_eq!(t.len(), 2_500);
    }
}
