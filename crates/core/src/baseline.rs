//! Memory-resident computational-geometry baselines (paper §1).
//!
//! The paper positions Segment Indexes against "main memory resident data
//! structures used in Computational Geometry" — Segment Trees, Interval
//! Trees, Priority Search Trees — which are binary structures that "have
//! not been extended to multi-way trees that may be efficiently paged onto
//! secondary storage" (§1). This module provides the classic **centered
//! interval tree** \[EDEL80\] as a correctness reference and comparison
//! baseline for one-dimensional interval workloads: it answers the same
//! stabbing and overlap queries as a 1-D SR-Tree, in `O(log n + k)`, but is
//! static (built once over all data) and pointer-structured rather than
//! paged.

use crate::id::RecordId;
use segidx_geom::Interval;

/// One indexed interval.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Item {
    interval: Interval,
    record: RecordId,
}

/// A node of the centered interval tree: intervals containing the center
/// point are stored here (sorted by both endpoints); the rest recurse left
/// or right of the center.
#[derive(Debug)]
struct IntervalNode {
    center: f64,
    /// Intervals containing `center`, sorted ascending by low endpoint.
    by_lo: Vec<Item>,
    /// The same intervals, sorted descending by high endpoint.
    by_hi: Vec<Item>,
    left: Option<Box<IntervalNode>>,
    right: Option<Box<IntervalNode>>,
}

/// A static, memory-resident centered interval tree over 1-D intervals.
///
/// Build once with [`IntervalTree::build`]; query with
/// [`IntervalTree::stab`] and [`IntervalTree::overlapping`]. For a dynamic,
/// paged equivalent use `SRTree<1>`.
#[derive(Debug, Default)]
pub struct IntervalTree {
    root: Option<Box<IntervalNode>>,
    len: usize,
}

impl IntervalTree {
    /// Builds the tree over `(interval, record)` pairs.
    pub fn build(items: impl IntoIterator<Item = (Interval, RecordId)>) -> Self {
        let items: Vec<Item> = items
            .into_iter()
            .map(|(interval, record)| Item { interval, record })
            .collect();
        let len = items.len();
        Self {
            root: build_node(items),
            len,
        }
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All records whose interval contains `p`, sorted by id.
    pub fn stab(&self, p: f64) -> Vec<RecordId> {
        let mut out = Vec::new();
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if p < n.center {
                // Center intervals whose low end is ≤ p contain p.
                for item in &n.by_lo {
                    if item.interval.lo() <= p {
                        out.push(item.record);
                    } else {
                        break;
                    }
                }
                node = n.left.as_deref();
            } else {
                // p ≥ center: center intervals whose high end is ≥ p match.
                for item in &n.by_hi {
                    if item.interval.hi() >= p {
                        out.push(item.record);
                    } else {
                        break;
                    }
                }
                node = n.right.as_deref();
            }
        }
        out.sort_unstable();
        out
    }

    /// All records whose interval overlaps `query` (closed-interval
    /// semantics, like the paged indexes), sorted by id.
    pub fn overlapping(&self, query: &Interval) -> Vec<RecordId> {
        let mut out = Vec::new();
        collect_overlaps(self.root.as_deref(), query, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn build_node(mut items: Vec<Item>) -> Option<Box<IntervalNode>> {
    if items.is_empty() {
        return None;
    }
    // Center on the median endpoint for balance.
    let mut endpoints: Vec<f64> = items
        .iter()
        .flat_map(|i| [i.interval.lo(), i.interval.hi()])
        .collect();
    endpoints.sort_unstable_by(f64::total_cmp);
    let center = endpoints[endpoints.len() / 2];

    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for item in items.drain(..) {
        if item.interval.hi() < center {
            left.push(item);
        } else if item.interval.lo() > center {
            right.push(item);
        } else {
            here.push(item);
        }
    }
    // Degenerate distributions (all intervals containing the center) still
    // terminate: left/right strictly shrink.
    let mut by_lo = here.clone();
    by_lo.sort_unstable_by(|a, b| a.interval.lo().total_cmp(&b.interval.lo()));
    let mut by_hi = here;
    by_hi.sort_unstable_by(|a, b| b.interval.hi().total_cmp(&a.interval.hi()));

    Some(Box::new(IntervalNode {
        center,
        by_lo,
        by_hi,
        left: build_node(left),
        right: build_node(right),
    }))
}

fn collect_overlaps(node: Option<&IntervalNode>, query: &Interval, out: &mut Vec<RecordId>) {
    let Some(n) = node else {
        return;
    };
    // Center intervals: all contain n.center; they overlap the query iff
    // lo ≤ query.hi and hi ≥ query.lo.
    if query.contains(n.center) {
        out.extend(n.by_lo.iter().map(|i| i.record));
    } else if n.center < query.lo() {
        for item in &n.by_hi {
            if item.interval.hi() >= query.lo() {
                out.push(item.record);
            } else {
                break;
            }
        }
    } else {
        for item in &n.by_lo {
            if item.interval.lo() <= query.hi() {
                out.push(item.record);
            } else {
                break;
            }
        }
    }
    if query.lo() < n.center {
        collect_overlaps(n.left.as_deref(), query, out);
    }
    if query.hi() > n.center {
        collect_overlaps(n.right.as_deref(), query, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{IntervalIndex, SRTree};
    use segidx_geom::Rect;

    fn mixed_intervals(n: u64) -> Vec<(Interval, RecordId)> {
        (0..n)
            .map(|i| {
                let lo = ((i * 131) % 9_000) as f64;
                let len = match i % 10 {
                    0 => 0.0,
                    1 => 4_000.0,
                    _ => 10.0 + (i % 300) as f64,
                };
                (Interval::new(lo, lo + len), RecordId(i))
            })
            .collect()
    }

    #[test]
    fn stab_matches_brute_force() {
        let items = mixed_intervals(3_000);
        let tree = IntervalTree::build(items.clone());
        assert_eq!(tree.len(), 3_000);
        for p in [0.0, 500.0, 4_321.5, 8_999.0, 12_000.0, -5.0] {
            let mut expected: Vec<RecordId> = items
                .iter()
                .filter(|(iv, _)| iv.contains(p))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            assert_eq!(tree.stab(p), expected, "stab at {p}");
        }
    }

    #[test]
    fn overlap_matches_brute_force() {
        let items = mixed_intervals(3_000);
        let tree = IntervalTree::build(items.clone());
        for (lo, hi) in [
            (0.0, 100.0),
            (4_000.0, 4_500.0),
            (8_000.0, 20_000.0),
            (42.0, 42.0),
        ] {
            let q = Interval::new(lo, hi);
            let mut expected: Vec<RecordId> = items
                .iter()
                .filter(|(iv, _)| iv.intersects(&q))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            assert_eq!(tree.overlapping(&q), expected, "overlap {q}");
        }
    }

    #[test]
    fn agrees_with_one_dimensional_sr_tree() {
        // The paper's point of comparison: the memory-resident structure
        // and the paged SR-Tree answer identically.
        let items = mixed_intervals(2_000);
        let tree = IntervalTree::build(items.clone());
        let mut sr: SRTree<1> = SRTree::new();
        for (iv, id) in &items {
            sr.insert(Rect::from_intervals([*iv]), *id);
        }
        for (lo, hi) in [(0.0, 50.0), (3_000.0, 3_100.0), (0.0, 10_000.0)] {
            let q = Interval::new(lo, hi);
            assert_eq!(
                tree.overlapping(&q),
                sr.search(&Rect::from_intervals([q])),
                "query {q}"
            );
        }
        for p in [123.0, 4_567.0, 8_900.0] {
            assert_eq!(
                tree.stab(p),
                sr.search(&Rect::from_intervals([Interval::point(p)]))
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let tree = IntervalTree::build(Vec::new());
        assert!(tree.is_empty());
        assert!(tree.stab(1.0).is_empty());
        assert!(tree.overlapping(&Interval::new(0.0, 10.0)).is_empty());

        let tree = IntervalTree::build(vec![(Interval::new(5.0, 9.0), RecordId(1))]);
        assert_eq!(tree.stab(7.0), vec![RecordId(1)]);
        assert!(tree.stab(4.9).is_empty());
        assert_eq!(
            tree.overlapping(&Interval::new(9.0, 20.0)),
            vec![RecordId(1)]
        );
    }

    #[test]
    fn duplicate_heavy_input_terminates() {
        // All intervals identical: everything lands on one center node.
        let items: Vec<_> = (0..500u64)
            .map(|i| (Interval::new(10.0, 20.0), RecordId(i)))
            .collect();
        let tree = IntervalTree::build(items);
        assert_eq!(tree.stab(15.0).len(), 500);
        assert_eq!(tree.stab(9.0).len(), 0);
    }
}
