//! Index nodes and the node arena.

use crate::entry::{BranchStore, LeafStore, SpanningStore};
use crate::id::NodeId;
use segidx_geom::Rect;
use std::sync::Arc;

/// The level-dependent contents of a node. Entries live in
/// structure-of-arrays stores (see [`crate::entry`]): per-dimension
/// coordinate planes plus parallel payload columns, so search scans run
/// over contiguous `&[f64]` slices via the `segidx_geom` kernels.
#[derive(Clone, Debug)]
pub enum NodeKind<const D: usize> {
    /// A leaf holds external index records only.
    Leaf {
        /// The leaf's index records.
        entries: LeafStore<D>,
    },
    /// A non-leaf holds branches and — in segment (SR) mode — spanning
    /// index records linked to those branches.
    Internal {
        /// Pointers to child nodes with their covering regions.
        branches: BranchStore<D>,
        /// Spanning index records (empty unless segment mode).
        spanning: SpanningStore<D>,
    },
}

/// An index node.
#[derive(Clone, Debug)]
pub struct Node<const D: usize> {
    /// Level in the tree; 0 = leaf.
    pub level: u32,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Contents.
    pub kind: NodeKind<D>,
    /// Number of times this node's contents were modified — the
    /// "least frequently modified" statistic driving coalescing (paper §4).
    pub mod_count: u64,
}

impl<const D: usize> Node<D> {
    /// Creates an empty leaf.
    pub fn leaf() -> Self {
        Self {
            level: 0,
            parent: None,
            kind: NodeKind::Leaf {
                entries: LeafStore::new(),
            },
            mod_count: 0,
        }
    }

    /// Creates an empty internal node at `level ≥ 1`.
    pub fn internal(level: u32) -> Self {
        debug_assert!(level >= 1);
        Self {
            level,
            parent: None,
            kind: NodeKind::Internal {
                branches: BranchStore::new(),
                spanning: SpanningStore::new(),
            },
            mod_count: 0,
        }
    }

    /// Whether this is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Leaf entry store (panics on internal nodes).
    pub fn entries(&self) -> &LeafStore<D> {
        match &self.kind {
            NodeKind::Leaf { entries } => entries,
            NodeKind::Internal { .. } => panic!("entries() on internal node"),
        }
    }

    /// Mutable leaf entry store (panics on internal nodes).
    pub fn entries_mut(&mut self) -> &mut LeafStore<D> {
        match &mut self.kind {
            NodeKind::Leaf { entries } => entries,
            NodeKind::Internal { .. } => panic!("entries_mut() on internal node"),
        }
    }

    /// Branch store (panics on leaves).
    pub fn branches(&self) -> &BranchStore<D> {
        match &self.kind {
            NodeKind::Internal { branches, .. } => branches,
            NodeKind::Leaf { .. } => panic!("branches() on leaf node"),
        }
    }

    /// Mutable branch store (panics on leaves).
    pub fn branches_mut(&mut self) -> &mut BranchStore<D> {
        match &mut self.kind {
            NodeKind::Internal { branches, .. } => branches,
            NodeKind::Leaf { .. } => panic!("branches_mut() on leaf node"),
        }
    }

    /// Spanning record store (panics on leaves).
    pub fn spanning(&self) -> &SpanningStore<D> {
        match &self.kind {
            NodeKind::Internal { spanning, .. } => spanning,
            NodeKind::Leaf { .. } => panic!("spanning() on leaf node"),
        }
    }

    /// Mutable spanning record store (panics on leaves).
    pub fn spanning_mut(&mut self) -> &mut SpanningStore<D> {
        match &mut self.kind {
            NodeKind::Internal { spanning, .. } => spanning,
            NodeKind::Leaf { .. } => panic!("spanning_mut() on leaf node"),
        }
    }

    /// Total occupied entry slots: leaf entries, or branches plus spanning
    /// records. This is what is compared against the node capacity.
    pub fn occupancy(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries } => entries.len(),
            NodeKind::Internal { branches, spanning } => branches.len() + spanning.len(),
        }
    }

    /// The branch index pointing at `child`, if present.
    pub fn branch_index_of(&self, child: NodeId) -> Option<usize> {
        self.branches().position_of_child(child)
    }

    /// Minimal bounding rectangle of the node's *structural* contents: leaf
    /// entries for leaves, branch regions for internal nodes. Spanning
    /// records are excluded — they are kept within the node's region by
    /// cutting, never by stretching the region (paper §3.1.1).
    ///
    /// Returns `None` for an empty node.
    pub fn content_mbr(&self) -> Option<Rect<D>> {
        match &self.kind {
            NodeKind::Leaf { entries } => entries.union_all(),
            NodeKind::Internal { branches, .. } => branches.union_all(),
        }
    }

    /// Records a structural modification (for LFM tracking).
    #[inline]
    pub fn touch_modified(&mut self) {
        self.mod_count += 1;
    }
}

/// A slab arena of nodes with id stability and slot reuse.
///
/// Slots hold `Arc<Node>` so an arena clone is a *structural-sharing
/// snapshot*: cloning copies one refcounted pointer per node (no entry
/// data), and subsequent mutation through [`Arena::get_mut`] copies only
/// the nodes it actually touches (copy-on-write via [`Arc::make_mut`]).
/// While an arena is uniquely owned — the common case, with no snapshot
/// outstanding — `get_mut` degrades to a refcount check and mutates in
/// place, so the single-owner write path stays allocation-free.
#[derive(Clone, Debug, Default)]
pub struct Arena<const D: usize> {
    slots: Vec<Option<Arc<Node<D>>>>,
    free: Vec<NodeId>,
    live: usize,
}

impl<const D: usize> Arena<D> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a node, returning its id.
    pub fn alloc(&mut self, node: Node<D>) -> NodeId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id.index()] = Some(Arc::new(node));
            id
        } else {
            let id = NodeId(self.slots.len() as u32);
            self.slots.push(Some(Arc::new(node)));
            id
        }
    }

    /// Removes a node, freeing its slot.
    pub fn dealloc(&mut self, id: NodeId) -> Node<D> {
        let node = self.slots[id.index()]
            .take()
            .expect("dealloc of free arena slot");
        self.free.push(id);
        self.live -= 1;
        // A snapshot may still share this node; in that case detach a copy
        // and leave the snapshot's Arc untouched.
        Arc::try_unwrap(node).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, id: NodeId) -> &Node<D> {
        self.slots[id.index()].as_ref().expect("use of freed node")
    }

    /// Exclusive access. Copy-on-write: if the node is shared with a
    /// snapshot, it is cloned once and the arena points at the copy.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<D> {
        Arc::make_mut(self.slots[id.index()].as_mut().expect("use of freed node"))
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the arena has no live nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<D>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (NodeId(i as u32), n.as_ref())))
    }

    /// Number of live nodes whose storage is shared with another arena
    /// clone (refcount > 1). Zero when no snapshot is outstanding.
    pub fn shared_nodes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|n| Arc::strong_count(n) > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{Branch, SpanningEntry};
    use crate::id::RecordId;

    fn rect(x0: f64, x1: f64) -> Rect<2> {
        Rect::new([x0, 0.0], [x1, 1.0])
    }

    #[test]
    fn arena_alloc_dealloc_reuses_slots() {
        let mut arena: Arena<2> = Arena::new();
        let a = arena.alloc(Node::leaf());
        let b = arena.alloc(Node::leaf());
        assert_eq!(arena.len(), 2);
        arena.dealloc(a);
        assert_eq!(arena.len(), 1);
        let c = arena.alloc(Node::internal(1));
        assert_eq!(c, a, "slot reused");
        assert_eq!(arena.len(), 2);
        assert!(!arena.get(c).is_leaf());
        let ids: Vec<_> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 2);
        let _ = b;
    }

    #[test]
    #[should_panic]
    fn use_after_free_panics() {
        let mut arena: Arena<2> = Arena::new();
        let a = arena.alloc(Node::leaf());
        arena.dealloc(a);
        let _ = arena.get(a);
    }

    #[test]
    fn occupancy_counts_branches_and_spanning() {
        let mut n: Node<2> = Node::internal(1);
        n.branches_mut().push(Branch {
            rect: rect(0.0, 1.0),
            child: NodeId(5),
        });
        n.spanning_mut().push(SpanningEntry {
            rect: rect(0.0, 1.0),
            record: RecordId(1),
            linked_child: NodeId(5),
        });
        n.spanning_mut().push(SpanningEntry {
            rect: rect(0.2, 0.9),
            record: RecordId(2),
            linked_child: NodeId(5),
        });
        assert_eq!(n.occupancy(), 3);
        assert_eq!(n.branch_index_of(NodeId(5)), Some(0));
        assert_eq!(n.branch_index_of(NodeId(6)), None);
    }

    #[test]
    fn content_mbr_ignores_spanning() {
        let mut n: Node<2> = Node::internal(1);
        n.branches_mut().push(Branch {
            rect: rect(0.0, 1.0),
            child: NodeId(1),
        });
        n.branches_mut().push(Branch {
            rect: rect(2.0, 3.0),
            child: NodeId(2),
        });
        n.spanning_mut().push(SpanningEntry {
            rect: rect(-100.0, 100.0),
            record: RecordId(9),
            linked_child: NodeId(1),
        });
        assert_eq!(n.content_mbr(), Some(rect(0.0, 3.0)));
    }

    #[test]
    fn empty_node_has_no_mbr() {
        let n: Node<2> = Node::leaf();
        assert!(n.content_mbr().is_none());
        let n: Node<2> = Node::internal(1);
        assert!(n.content_mbr().is_none());
    }
}
