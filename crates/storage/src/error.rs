//! Storage error types.

use crate::page::{PageId, SizeClass};
use std::fmt;
use std::io;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the paged storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A page id is not present in the page directory.
    PageNotFound(PageId),
    /// A page failed validation on read (bad magic, checksum, or length).
    Corrupt {
        /// The page that failed validation.
        page: PageId,
        /// What failed.
        reason: String,
    },
    /// A payload does not fit within the page's size class.
    PayloadTooLarge {
        /// Requested payload length in bytes.
        requested: usize,
        /// Maximum payload capacity of the size class.
        capacity: usize,
        /// The size class in question.
        size_class: SizeClass,
    },
    /// A metadata file is malformed or from an incompatible version.
    BadMeta(String),
    /// The buffer pool cannot evict anything (every frame is pinned).
    PoolExhausted,
    /// A decoding operation ran past the end of its input.
    Decode(String),
    /// The operation is not supported by this engine (e.g. checkpointing a
    /// main-memory-only index).
    Unsupported(String),
}

impl StorageError {
    /// Whether this error originates from a corrupted on-disk image (torn
    /// write, bit rot, partial meta) rather than from misuse or transient
    /// I/O. Corruption errors are the ones recovery
    /// ([`DiskManager::open_repair`](crate::DiskManager::open_repair)) can
    /// act on.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StorageError::Corrupt { .. } | StorageError::BadMeta(_) | StorageError::Decode(_)
        )
    }

    /// Whether this error was produced by a [`crate::FaultInjector`] rather
    /// than by the real I/O stack. Crash harnesses use this to tell a
    /// simulated power cut from a genuine storage bug.
    pub fn is_injected(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.to_string().contains(crate::fault::INJECTED_MARKER))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageNotFound(id) => write!(f, "page {id:?} not found"),
            StorageError::Corrupt { page, reason } => {
                write!(f, "page {page:?} corrupt: {reason}")
            }
            StorageError::PayloadTooLarge {
                requested,
                capacity,
                size_class,
            } => write!(
                f,
                "payload of {requested} bytes exceeds {capacity}-byte capacity of {size_class:?}"
            ),
            StorageError::BadMeta(msg) => write!(f, "bad metadata: {msg}"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all pages pinned)"),
            StorageError::Decode(msg) => write!(f, "decode error: {msg}"),
            StorageError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StorageError::PageNotFound(PageId(7));
        assert!(e.to_string().contains("not found"));
        let e = StorageError::PayloadTooLarge {
            requested: 2000,
            capacity: 1000,
            size_class: SizeClass::new(0),
        };
        assert!(e.to_string().contains("2000"));
    }

    #[test]
    fn io_error_source_preserved() {
        let e: StorageError = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn corruption_and_injection_classifiers() {
        let corrupt = StorageError::Corrupt {
            page: PageId(1),
            reason: "checksum".into(),
        };
        assert!(corrupt.is_corruption());
        assert!(!corrupt.is_injected());
        assert!(StorageError::BadMeta("torn".into()).is_corruption());
        let real_io: StorageError = io::Error::other("boom").into();
        assert!(!real_io.is_corruption());
        assert!(!real_io.is_injected());
        let injected: StorageError = crate::fault::injected_error("torn write").into();
        assert!(injected.is_injected());
    }
}
