//! The slotted page file.

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, SizeClass, BASE_PAGE_SIZE, MAX_SIZE_CLASS};
use crate::stats::{IoLatency, IoStats};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const META_MAGIC: u32 = 0x5347_4d45; // "SGME"
const META_VERSION: u32 = 1;

/// Configuration for [`DiskManager`].
#[derive(Debug, Clone)]
pub struct DiskManagerConfig {
    /// Whether to fsync the data file on [`DiskManager::sync`].
    pub fsync: bool,
}

impl Default for DiskManagerConfig {
    fn default() -> Self {
        Self { fsync: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageLoc {
    slot: u64,
    size_class: SizeClass,
}

#[derive(Debug)]
struct DiskInner {
    file: File,
    directory: HashMap<PageId, PageLoc>,
    free_lists: Vec<Vec<u64>>,
    next_slot: u64,
    next_page_id: u64,
    dirty_meta: bool,
}

/// A page file supporting **variable page sizes**.
///
/// Space is managed in base-size (1 KB) slots; a page of [`SizeClass`] `c`
/// occupies `2^c` contiguous slots, so the paper's "node size doubles at each
/// level" layout (§2.1.2) maps directly onto the file. Freed extents are
/// recycled through per-class free lists.
///
/// Metadata (the page directory, free lists, and allocation cursor) is
/// persisted to a sidecar `<path>.meta` file, written atomically
/// (temp file + rename) on [`DiskManager::sync`].
#[derive(Debug)]
pub struct DiskManager {
    path: PathBuf,
    config: DiskManagerConfig,
    inner: Mutex<DiskInner>,
    stats: Arc<IoStats>,
    latency: Arc<IoLatency>,
}

impl DiskManager {
    /// Creates a new, empty page file at `path`, truncating any existing one.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Self::create_with(path, DiskManagerConfig::default())
    }

    /// Creates a new page file with explicit configuration.
    pub fn create_with(path: impl AsRef<Path>, config: DiskManagerConfig) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mgr = Self {
            path,
            config,
            inner: Mutex::new(DiskInner {
                file,
                directory: HashMap::new(),
                free_lists: vec![Vec::new(); usize::from(MAX_SIZE_CLASS) + 1],
                next_slot: 0,
                next_page_id: 0,
                dirty_meta: true,
            }),
            stats: Arc::new(IoStats::new()),
            latency: Arc::new(IoLatency::new()),
        };
        mgr.sync()?;
        Ok(mgr)
    }

    /// Opens an existing page file and its metadata.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, DiskManagerConfig::default())
    }

    /// Opens an existing page file with explicit configuration.
    pub fn open_with(path: impl AsRef<Path>, config: DiskManagerConfig) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let meta = read_meta(&meta_path(&path))?;
        Ok(Self {
            path,
            config,
            inner: Mutex::new(DiskInner {
                file,
                directory: meta.directory,
                free_lists: meta.free_lists,
                next_slot: meta.next_slot,
                next_page_id: meta.next_page_id,
                dirty_meta: false,
            }),
            stats: Arc::new(IoStats::new()),
            latency: Arc::new(IoLatency::new()),
        })
    }

    /// Shared physical I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Shared page read/write latency histograms.
    pub fn latency(&self) -> Arc<IoLatency> {
        Arc::clone(&self.latency)
    }

    /// The data-file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live pages.
    pub fn page_count(&self) -> usize {
        self.inner.lock().directory.len()
    }

    /// All live page ids with their size classes, in id order.
    pub fn pages(&self) -> Vec<(PageId, SizeClass)> {
        let inner = self.inner.lock();
        let mut v: Vec<_> = inner
            .directory
            .iter()
            .map(|(&id, loc)| (id, loc.size_class))
            .collect();
        v.sort_by_key(|&(id, _)| id);
        v
    }

    /// The size class of a live page.
    pub fn size_class_of(&self, id: PageId) -> Result<SizeClass> {
        self.inner
            .lock()
            .directory
            .get(&id)
            .map(|loc| loc.size_class)
            .ok_or(StorageError::PageNotFound(id))
    }

    /// Allocates a new page of the given size class and returns its id.
    /// The page contents are undefined until the first write.
    pub fn allocate(&self, size_class: SizeClass) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let slot = match inner.free_lists[usize::from(size_class.raw())].pop() {
            Some(slot) => slot,
            None => {
                let slot = inner.next_slot;
                inner.next_slot += size_class.slots();
                slot
            }
        };
        let id = PageId(inner.next_page_id);
        inner.next_page_id += 1;
        inner.directory.insert(id, PageLoc { slot, size_class });
        inner.dirty_meta = true;
        self.stats.record_alloc();
        Ok(id)
    }

    /// Frees a page, recycling its extent.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let loc = inner
            .directory
            .remove(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        inner.free_lists[usize::from(loc.size_class.raw())].push(loc.slot);
        inner.dirty_meta = true;
        self.stats.record_free();
        Ok(())
    }

    /// Writes a page to its extent.
    ///
    /// The page must have been allocated by this manager and its size class
    /// must match the allocation.
    pub fn write_page(&self, page: &Page) -> Result<()> {
        let mut inner = self.inner.lock();
        let loc = *inner
            .directory
            .get(&page.id())
            .ok_or(StorageError::PageNotFound(page.id()))?;
        if loc.size_class != page.size_class() {
            return Err(StorageError::Corrupt {
                page: page.id(),
                reason: format!(
                    "write with size class {:?}, allocated as {:?}",
                    page.size_class(),
                    loc.size_class
                ),
            });
        }
        let bytes = page.to_disk_bytes();
        let t0 = std::time::Instant::now();
        inner
            .file
            .seek(SeekFrom::Start(loc.slot * BASE_PAGE_SIZE as u64))?;
        inner.file.write_all(&bytes)?;
        self.latency.write.record_duration(t0.elapsed());
        self.stats.record_write(bytes.len());
        Ok(())
    }

    /// Reads and validates a page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        let loc = *inner
            .directory
            .get(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        let size = loc.size_class.page_size();
        let mut buf = vec![0u8; size];
        let t0 = std::time::Instant::now();
        inner
            .file
            .seek(SeekFrom::Start(loc.slot * BASE_PAGE_SIZE as u64))?;
        inner.file.read_exact(&mut buf)?;
        self.latency.read.record_duration(t0.elapsed());
        self.stats.record_read(size);
        Page::from_disk_bytes(id, loc.size_class, &buf)
    }

    /// Rewrites all live pages contiguously at the front of the file,
    /// truncating freed space. Page ids are preserved; only their physical
    /// extents move. Returns the number of bytes reclaimed.
    ///
    /// Intended for offline maintenance after heavy frees (an index rebuilt
    /// many times into one file); readers must not hold stale page data
    /// across a compaction (the [`crate::BufferPool`] must be flushed and
    /// dropped first).
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let old_end = inner.next_slot * BASE_PAGE_SIZE as u64;

        // Relocate pages in slot order so moves never overwrite unread data.
        let mut pages: Vec<(PageId, PageLoc)> = inner
            .directory
            .iter()
            .map(|(&id, &loc)| (id, loc))
            .collect();
        pages.sort_by_key(|(_, loc)| loc.slot);

        let mut cursor: u64 = 0;
        for (id, loc) in pages {
            let size = loc.size_class.page_size();
            if loc.slot != cursor {
                debug_assert!(cursor < loc.slot, "compaction moves pages backwards only");
                let mut buf = vec![0u8; size];
                inner
                    .file
                    .seek(SeekFrom::Start(loc.slot * BASE_PAGE_SIZE as u64))?;
                inner.file.read_exact(&mut buf)?;
                inner
                    .file
                    .seek(SeekFrom::Start(cursor * BASE_PAGE_SIZE as u64))?;
                inner.file.write_all(&buf)?;
                self.stats.record_read(size);
                self.stats.record_write(size);
                inner.directory.get_mut(&id).expect("live page").slot = cursor;
            }
            cursor += loc.size_class.slots();
        }
        for list in inner.free_lists.iter_mut() {
            list.clear();
        }
        inner.next_slot = cursor;
        inner.dirty_meta = true;
        let new_end = cursor * BASE_PAGE_SIZE as u64;
        inner.file.set_len(new_end)?;
        drop(inner);
        self.sync()?;
        Ok(old_end.saturating_sub(new_end))
    }

    /// Reads and validates every live page, returning the list of pages
    /// that failed (empty = file is clean). An `fsck`-style full scan:
    /// checks magic, size class, payload length, and checksum per page.
    pub fn verify_all(&self) -> Vec<(PageId, String)> {
        let mut bad = Vec::new();
        for (id, _) in self.pages() {
            if let Err(e) = self.read_page(id) {
                bad.push((id, e.to_string()));
            }
        }
        bad
    }

    /// Persists metadata (atomically) and optionally fsyncs the data file.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if self.config.fsync {
            inner.file.sync_all()?;
        } else {
            inner.file.flush()?;
        }
        if inner.dirty_meta {
            write_meta(&meta_path(&self.path), &inner)?;
            inner.dirty_meta = false;
        }
        Ok(())
    }
}

fn meta_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".meta");
    PathBuf::from(p)
}

struct Meta {
    directory: HashMap<PageId, PageLoc>,
    free_lists: Vec<Vec<u64>>,
    next_slot: u64,
    next_page_id: u64,
}

fn write_meta(path: &Path, inner: &DiskInner) -> Result<()> {
    use crate::serialize::ByteWriter;
    let mut w = ByteWriter::with_capacity(64 + inner.directory.len() * 17);
    w.put_u32(META_MAGIC);
    w.put_u32(META_VERSION);
    w.put_u64(inner.next_slot);
    w.put_u64(inner.next_page_id);
    w.put_u64(inner.directory.len() as u64);
    let mut entries: Vec<_> = inner.directory.iter().collect();
    entries.sort_by_key(|(id, _)| **id);
    for (id, loc) in entries {
        w.put_u64(id.raw());
        w.put_u64(loc.slot);
        w.put_u8(loc.size_class.raw());
    }
    w.put_u8(inner.free_lists.len() as u8);
    for list in &inner.free_lists {
        w.put_u64(list.len() as u64);
        for &slot in list {
            w.put_u64(slot);
        }
    }

    let tmp = path.with_extension("meta.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(w.as_bytes())?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn read_meta(path: &Path) -> Result<Meta> {
    use crate::serialize::ByteReader;
    let bytes = std::fs::read(path)?;
    let mut r = ByteReader::new(&bytes);
    let magic = r.get_u32()?;
    if magic != META_MAGIC {
        return Err(StorageError::BadMeta(format!("bad magic {magic:#x}")));
    }
    let version = r.get_u32()?;
    if version != META_VERSION {
        return Err(StorageError::BadMeta(format!(
            "unsupported version {version}"
        )));
    }
    let next_slot = r.get_u64()?;
    let next_page_id = r.get_u64()?;
    let n = r.get_u64()? as usize;
    let mut directory = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = PageId(r.get_u64()?);
        let slot = r.get_u64()?;
        let class = r.get_u8()?;
        let size_class = SizeClass::checked(class)
            .ok_or_else(|| StorageError::BadMeta(format!("bad size class {class}")))?;
        directory.insert(id, PageLoc { slot, size_class });
    }
    let lists = r.get_u8()? as usize;
    let mut free_lists = vec![Vec::new(); usize::from(MAX_SIZE_CLASS) + 1];
    for list in free_lists.iter_mut().take(lists) {
        let len = r.get_u64()? as usize;
        list.reserve(len);
        for _ in 0..len {
            list.push(r.get_u64()?);
        }
    }
    Ok(Meta {
        directory,
        free_lists,
        next_slot,
        next_page_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "segidx-disk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn page_with(id: PageId, class: SizeClass, payload: &[u8]) -> Page {
        let mut p = Page::new(id, class);
        p.set_payload(payload).unwrap();
        p
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tempdir().join("rt.db");
        let dm = DiskManager::create(&path).unwrap();
        let id0 = dm.allocate(SizeClass::new(0)).unwrap();
        let id1 = dm.allocate(SizeClass::new(2)).unwrap();
        dm.write_page(&page_with(id0, SizeClass::new(0), b"leaf"))
            .unwrap();
        dm.write_page(&page_with(id1, SizeClass::new(2), b"root"))
            .unwrap();
        assert_eq!(dm.read_page(id0).unwrap().payload(), b"leaf");
        assert_eq!(dm.read_page(id1).unwrap().payload(), b"root");
        assert_eq!(dm.page_count(), 2);
        let snap = dm.stats().snapshot();
        assert_eq!(snap.allocations, 2);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 2);
    }

    #[test]
    fn variable_sizes_do_not_overlap() {
        let path = tempdir().join("sizes.db");
        let dm = DiskManager::create(&path).unwrap();
        let ids: Vec<_> = (0..20)
            .map(|i| {
                let class = SizeClass::new((i % 4) as u8);
                let id = dm.allocate(class).unwrap();
                let payload = vec![i as u8; class.payload_capacity() / 2];
                dm.write_page(&page_with(id, class, &payload)).unwrap();
                (id, class, payload)
            })
            .collect();
        for (id, _, payload) in &ids {
            assert_eq!(dm.read_page(*id).unwrap().payload(), payload.as_slice());
        }
    }

    #[test]
    fn free_recycles_extents() {
        let path = tempdir().join("free.db");
        let dm = DiskManager::create(&path).unwrap();
        let a = dm.allocate(SizeClass::new(1)).unwrap();
        let before = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        dm.free(a).unwrap();
        let b = dm.allocate(SizeClass::new(1)).unwrap();
        assert_ne!(a, b, "page ids are never reused");
        let after = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        assert_eq!(before, after, "extent was recycled, not re-grown");
        assert!(matches!(
            dm.read_page(a),
            Err(StorageError::PageNotFound(_))
        ));
    }

    #[test]
    fn persist_and_reopen() {
        let path = tempdir().join("reopen.db");
        let (id0, id1);
        {
            let dm = DiskManager::create(&path).unwrap();
            id0 = dm.allocate(SizeClass::new(0)).unwrap();
            id1 = dm.allocate(SizeClass::new(3)).unwrap();
            dm.write_page(&page_with(id0, SizeClass::new(0), b"persisted-leaf"))
                .unwrap();
            dm.write_page(&page_with(id1, SizeClass::new(3), b"persisted-root"))
                .unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 2);
        assert_eq!(dm.read_page(id0).unwrap().payload(), b"persisted-leaf");
        assert_eq!(dm.read_page(id1).unwrap().payload(), b"persisted-root");
        assert_eq!(dm.size_class_of(id1).unwrap(), SizeClass::new(3));
        // Allocation continues after the persisted cursor.
        let id2 = dm.allocate(SizeClass::new(0)).unwrap();
        assert!(id2 > id1);
    }

    #[test]
    fn size_class_mismatch_on_write_rejected() {
        let path = tempdir().join("mismatch.db");
        let dm = DiskManager::create(&path).unwrap();
        let id = dm.allocate(SizeClass::new(0)).unwrap();
        let err = dm
            .write_page(&page_with(id, SizeClass::new(1), b"x"))
            .unwrap_err();
        assert!(err.to_string().contains("size class"));
    }

    #[test]
    fn unknown_page_errors() {
        let path = tempdir().join("unknown.db");
        let dm = DiskManager::create(&path).unwrap();
        assert!(matches!(
            dm.read_page(PageId(99)),
            Err(StorageError::PageNotFound(PageId(99)))
        ));
        assert!(dm.free(PageId(99)).is_err());
    }

    #[test]
    fn compact_reclaims_space_and_preserves_pages() {
        let path = tempdir().join("compact.db");
        let dm = DiskManager::create(&path).unwrap();
        // Interleave allocations of different sizes, then free every other
        // page to fragment the file.
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for i in 0..40u8 {
            let class = SizeClass::new(i % 3);
            let id = dm.allocate(class).unwrap();
            dm.write_page(&page_with(id, class, &[i; 200])).unwrap();
            if i % 2 == 0 {
                live.push((id, class, [i; 200]));
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            dm.free(id).unwrap();
        }
        let reclaimed = dm.compact().unwrap();
        assert!(reclaimed > 0, "fragmented file must shrink");
        // File size equals the sum of live extents.
        let live_bytes: u64 = live.iter().map(|(_, c, _)| c.page_size() as u64).sum();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), live_bytes);
        // Every live page still reads back intact…
        for (id, _, payload) in &live {
            assert_eq!(dm.read_page(*id).unwrap().payload(), &payload[..]);
        }
        assert!(dm.verify_all().is_empty());
        // …and survives a reopen.
        dm.sync().unwrap();
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        for (id, _, payload) in &live {
            assert_eq!(dm.read_page(*id).unwrap().payload(), &payload[..]);
        }
        // New allocations extend past the compacted end, damaging nothing.
        let id = dm.allocate(SizeClass::new(2)).unwrap();
        dm.write_page(&page_with(id, SizeClass::new(2), b"post-compact"))
            .unwrap();
        assert!(dm.verify_all().is_empty());
    }

    #[test]
    fn compact_empty_and_unfragmented_files() {
        let dm = DiskManager::create(tempdir().join("compact-empty.db")).unwrap();
        assert_eq!(dm.compact().unwrap(), 0);
        let a = dm.allocate(SizeClass::new(0)).unwrap();
        dm.write_page(&page_with(a, SizeClass::new(0), b"x"))
            .unwrap();
        assert_eq!(dm.compact().unwrap(), 0, "contiguous file: nothing to do");
        assert_eq!(dm.read_page(a).unwrap().payload(), b"x");
    }

    #[test]
    fn meta_free_lists_survive_reopen() {
        let path = tempdir().join("freelists.db");
        {
            let dm = DiskManager::create(&path).unwrap();
            let a = dm.allocate(SizeClass::new(2)).unwrap();
            let _b = dm.allocate(SizeClass::new(2)).unwrap();
            dm.free(a).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        let inner_next = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        let _c = dm.allocate(SizeClass::new(2)).unwrap();
        let after = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        assert_eq!(inner_next, after, "free list used after reopen");
    }
}
