//! The slotted page file.

use crate::checksum::xxh64;
use crate::error::{Result, StorageError};
use crate::fault::{injected_error, FaultInjector, SyncFault, SyncKind, WriteFault, WriteKind};
use crate::page::{Page, PageId, SizeClass, BASE_PAGE_SIZE, MAX_SIZE_CLASS};
use crate::stats::{IoLatency, IoStats};
use parking_lot::Mutex;
use segidx_obs::{Event, EventKind, ObsSink};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const META_MAGIC: u32 = 0x5347_4d45; // "SGME"
const META_VERSION: u32 = 2;
/// Seed for the metadata checksum, distinct from the page-checksum seed so a
/// meta image can never validate as a page (or vice versa).
const META_CHECKSUM_SEED: u64 = 0x5347_4d45_5347_4d45;
/// Sentinel for "no committed root pointer".
const NO_ROOT: u64 = u64::MAX;

/// Configuration for [`DiskManager`].
#[derive(Debug, Clone)]
pub struct DiskManagerConfig {
    /// Whether to fsync the data file on [`DiskManager::sync`].
    pub fsync: bool,
    /// Optional deterministic fault injector consulted before every write
    /// and durability barrier (see [`crate::ScriptedFault`]). `None` — the
    /// production default — performs all I/O unconditionally.
    pub fault_injector: Option<Arc<dyn FaultInjector>>,
}

impl Default for DiskManagerConfig {
    fn default() -> Self {
        Self {
            fsync: true,
            fault_injector: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageLoc {
    slot: u64,
    size_class: SizeClass,
}

#[derive(Debug)]
struct DiskInner {
    file: File,
    directory: HashMap<PageId, PageLoc>,
    free_lists: Vec<Vec<u64>>,
    /// Extents freed since the last durable meta commit. They join the
    /// recyclable `free_lists` only once a meta epoch that no longer maps
    /// them has been committed: recycling earlier would let a torn write
    /// land inside a page the *previous* (still-recoverable) epoch
    /// considers live.
    pending_free: Vec<(u64, SizeClass)>,
    next_slot: u64,
    next_page_id: u64,
    /// Monotonic commit counter, bumped by every durable meta commit.
    epoch: u64,
    /// Application root pointer committed atomically with the directory.
    root: Option<PageId>,
    dirty_meta: bool,
}

/// What [`commit_meta`] achieved.
enum CommitOutcome {
    /// The rename happened: the new epoch is durable.
    Committed,
    /// The injector dropped the commit barrier; the metadata stays dirty
    /// and the commit is retried on the next sync.
    Deferred,
}

/// Outcome of [`DiskManager::open_repair`]: which pages failed validation
/// and were quarantined (dropped from the page directory, extents left
/// unrecycled).
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Pages that failed validation, with the reason, in id order.
    pub quarantined: Vec<(PageId, String)>,
    /// Pages scanned.
    pub pages_checked: usize,
    /// The metadata epoch the file was opened at.
    pub epoch: u64,
}

impl RepairReport {
    /// Whether every page validated.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// A page file supporting **variable page sizes**.
///
/// Space is managed in base-size (1 KB) slots; a page of [`SizeClass`] `c`
/// occupies `2^c` contiguous slots, so the paper's "node size doubles at each
/// level" layout (§2.1.2) maps directly onto the file. Freed extents are
/// recycled through per-class free lists — but only after the free has been
/// part of a durable meta commit, so no write can ever land inside an extent
/// that the last committed directory still maps to a live page.
///
/// Metadata (the page directory, free lists, allocation cursor, a monotonic
/// commit **epoch**, and an application **root pointer**) is persisted to a
/// sidecar `<path>.meta` file, written atomically (checksummed temp file +
/// rename) on [`DiskManager::sync`]: a crash at any byte boundary leaves
/// either the old epoch or the new one on disk, never a torn mixture.
#[derive(Debug)]
pub struct DiskManager {
    path: PathBuf,
    config: DiskManagerConfig,
    inner: Mutex<DiskInner>,
    stats: Arc<IoStats>,
    latency: Arc<IoLatency>,
}

impl DiskManager {
    /// Creates a new, empty page file at `path`, truncating any existing one.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Self::create_with(path, DiskManagerConfig::default())
    }

    /// Creates a new page file with explicit configuration.
    pub fn create_with(path: impl AsRef<Path>, config: DiskManagerConfig) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mgr = Self {
            path,
            config,
            inner: Mutex::new(DiskInner {
                file,
                directory: HashMap::new(),
                free_lists: vec![Vec::new(); usize::from(MAX_SIZE_CLASS) + 1],
                pending_free: Vec::new(),
                next_slot: 0,
                next_page_id: 0,
                epoch: 0,
                root: None,
                dirty_meta: true,
            }),
            stats: Arc::new(IoStats::new()),
            latency: Arc::new(IoLatency::new()),
        };
        mgr.sync()?;
        Ok(mgr)
    }

    /// Opens an existing page file and its metadata.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, DiskManagerConfig::default())
    }

    /// Opens an existing page file with explicit configuration.
    pub fn open_with(path: impl AsRef<Path>, config: DiskManagerConfig) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let meta = read_meta(&meta_path(&path))?;
        Ok(Self {
            path,
            config,
            inner: Mutex::new(DiskInner {
                file,
                directory: meta.directory,
                free_lists: meta.free_lists,
                pending_free: Vec::new(),
                next_slot: meta.next_slot,
                next_page_id: meta.next_page_id,
                epoch: meta.epoch,
                root: meta.root,
                dirty_meta: false,
            }),
            stats: Arc::new(IoStats::new()),
            latency: Arc::new(IoLatency::new()),
        })
    }

    /// Opens an existing page file in **repair mode**: every live page is
    /// read and validated, and pages that fail (torn writes, bit rot,
    /// extents past a truncated end-of-file) are *quarantined* — removed
    /// from the page directory so no later read can return their bytes.
    /// Quarantined extents are deliberately not recycled (their contents
    /// are unknown); [`DiskManager::compact`] reclaims them offline.
    ///
    /// Each quarantined page fires an [`EventKind::PageQuarantined`] event
    /// on `sink` (node = page id, level = size class, detail = slot). The
    /// quarantine takes effect durably at the next [`DiskManager::sync`].
    pub fn open_repair(
        path: impl AsRef<Path>,
        config: DiskManagerConfig,
        sink: Option<Arc<dyn ObsSink>>,
    ) -> Result<(Self, RepairReport)> {
        let mgr = Self::open_with(path, config)?;
        let mut report = RepairReport {
            epoch: mgr.epoch(),
            ..RepairReport::default()
        };
        for (id, class) in mgr.pages() {
            report.pages_checked += 1;
            if let Err(e) = mgr.read_page(id) {
                let slot = {
                    let mut inner = mgr.inner.lock();
                    let loc = inner.directory.remove(&id);
                    inner.dirty_meta = true;
                    loc.map(|l| l.slot).unwrap_or(u64::MAX)
                };
                if let Some(sink) = &sink {
                    sink.event(
                        Event::new(EventKind::PageQuarantined)
                            .node(id.raw())
                            .level(u32::from(class.raw()))
                            .detail(slot),
                    );
                }
                report.quarantined.push((id, e.to_string()));
            }
        }
        Ok((mgr, report))
    }

    /// Shared physical I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Shared page read/write latency histograms.
    pub fn latency(&self) -> Arc<IoLatency> {
        Arc::clone(&self.latency)
    }

    /// The data-file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live pages.
    pub fn page_count(&self) -> usize {
        self.inner.lock().directory.len()
    }

    /// The metadata commit epoch: 0 for a never-synced file, monotonically
    /// increasing across commits and reopens. Two opens observing the same
    /// epoch observe the same directory.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// The committed application root pointer, if any (see
    /// [`DiskManager::set_root`]).
    pub fn root(&self) -> Option<PageId> {
        self.inner.lock().root
    }

    /// Stages `root` as the application root pointer — typically the page
    /// holding an index's own metadata. It becomes durable atomically with
    /// the page directory at the next [`DiskManager::sync`], which is what
    /// makes "which tree was committed?" answerable after a crash.
    pub fn set_root(&self, root: Option<PageId>) {
        let mut inner = self.inner.lock();
        if inner.root != root {
            inner.root = root;
            inner.dirty_meta = true;
        }
    }

    /// All live page ids with their size classes, in id order.
    pub fn pages(&self) -> Vec<(PageId, SizeClass)> {
        let inner = self.inner.lock();
        let mut v: Vec<_> = inner
            .directory
            .iter()
            .map(|(&id, loc)| (id, loc.size_class))
            .collect();
        v.sort_by_key(|&(id, _)| id);
        v
    }

    /// The size class of a live page.
    pub fn size_class_of(&self, id: PageId) -> Result<SizeClass> {
        self.inner
            .lock()
            .directory
            .get(&id)
            .map(|loc| loc.size_class)
            .ok_or(StorageError::PageNotFound(id))
    }

    /// Allocates a new page of the given size class and returns its id.
    /// The page contents are undefined until the first write.
    pub fn allocate(&self, size_class: SizeClass) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let slot = match inner.free_lists[usize::from(size_class.raw())].pop() {
            Some(slot) => slot,
            None => {
                let slot = inner.next_slot;
                inner.next_slot += size_class.slots();
                slot
            }
        };
        let id = PageId(inner.next_page_id);
        inner.next_page_id += 1;
        inner.directory.insert(id, PageLoc { slot, size_class });
        inner.dirty_meta = true;
        self.stats.record_alloc();
        Ok(id)
    }

    /// Frees a page. Its extent is recycled only after the free has been
    /// made durable by a meta commit (see [`DiskManager::sync`]).
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let loc = inner
            .directory
            .remove(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        inner.pending_free.push((loc.slot, loc.size_class));
        inner.dirty_meta = true;
        self.stats.record_free();
        Ok(())
    }

    /// Writes a page to its extent.
    ///
    /// The page must have been allocated by this manager and its size class
    /// must match the allocation.
    pub fn write_page(&self, page: &Page) -> Result<()> {
        let mut inner = self.inner.lock();
        let loc = *inner
            .directory
            .get(&page.id())
            .ok_or(StorageError::PageNotFound(page.id()))?;
        if loc.size_class != page.size_class() {
            return Err(StorageError::Corrupt {
                page: page.id(),
                reason: format!(
                    "write with size class {:?}, allocated as {:?}",
                    page.size_class(),
                    loc.size_class
                ),
            });
        }
        let bytes = page.to_disk_bytes();
        let sp = segidx_obs::trace::span("disk.write_page");
        let t0 = std::time::Instant::now();
        write_extent(
            &mut inner.file,
            self.config.fault_injector.as_deref(),
            loc.slot * BASE_PAGE_SIZE as u64,
            &bytes,
        )?;
        self.latency.write.record_duration(t0.elapsed());
        self.stats.record_write(bytes.len());
        sp.items(bytes.len() as u64);
        segidx_obs::trace::add(segidx_obs::trace::Dim::PageWrites, 1);
        Ok(())
    }

    /// Reads and validates a page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        let loc = *inner
            .directory
            .get(&id)
            .ok_or(StorageError::PageNotFound(id))?;
        let size = loc.size_class.page_size();
        let mut buf = vec![0u8; size];
        let sp = segidx_obs::trace::span("disk.read_page");
        let t0 = std::time::Instant::now();
        inner
            .file
            .seek(SeekFrom::Start(loc.slot * BASE_PAGE_SIZE as u64))?;
        inner.file.read_exact(&mut buf)?;
        self.latency.read.record_duration(t0.elapsed());
        self.stats.record_read(size);
        sp.items(size as u64);
        segidx_obs::trace::add(segidx_obs::trace::Dim::PageReads, 1);
        Page::from_disk_bytes(id, loc.size_class, &buf)
    }

    /// Rewrites all live pages contiguously at the front of the file,
    /// truncating freed space. Page ids are preserved; only their physical
    /// extents move. Returns the number of bytes reclaimed.
    ///
    /// Intended for offline maintenance after heavy frees (an index rebuilt
    /// many times into one file); readers must not hold stale page data
    /// across a compaction (the [`crate::BufferPool`] must be flushed and
    /// dropped first). Unlike normal operation, compaction is **not**
    /// crash-atomic: it moves pages in place, so a crash mid-compact can
    /// lose pages. Take a copy first if the file matters.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let old_end = inner.next_slot * BASE_PAGE_SIZE as u64;

        // Relocate pages in slot order so moves never overwrite unread data.
        let mut pages: Vec<(PageId, PageLoc)> = inner
            .directory
            .iter()
            .map(|(&id, &loc)| (id, loc))
            .collect();
        pages.sort_by_key(|(_, loc)| loc.slot);

        let mut cursor: u64 = 0;
        for (id, loc) in pages {
            let size = loc.size_class.page_size();
            if loc.slot != cursor {
                debug_assert!(cursor < loc.slot, "compaction moves pages backwards only");
                let mut buf = vec![0u8; size];
                inner
                    .file
                    .seek(SeekFrom::Start(loc.slot * BASE_PAGE_SIZE as u64))?;
                inner.file.read_exact(&mut buf)?;
                write_extent(
                    &mut inner.file,
                    self.config.fault_injector.as_deref(),
                    cursor * BASE_PAGE_SIZE as u64,
                    &buf,
                )?;
                self.stats.record_read(size);
                self.stats.record_write(size);
                inner.directory.get_mut(&id).expect("live page").slot = cursor;
            }
            cursor += loc.size_class.slots();
        }
        for list in inner.free_lists.iter_mut() {
            list.clear();
        }
        // Compaction invalidates every freed extent, committed or pending.
        inner.pending_free.clear();
        inner.next_slot = cursor;
        inner.dirty_meta = true;
        let new_end = cursor * BASE_PAGE_SIZE as u64;
        inner.file.set_len(new_end)?;
        drop(inner);
        self.sync()?;
        Ok(old_end.saturating_sub(new_end))
    }

    /// Reads and validates every live page, returning the list of pages
    /// that failed (empty = file is clean). An `fsck`-style full scan:
    /// checks magic, size class, payload length, and checksum per page.
    pub fn verify_all(&self) -> Vec<(PageId, String)> {
        let mut bad = Vec::new();
        for (id, _) in self.pages() {
            if let Err(e) = self.read_page(id) {
                bad.push((id, e.to_string()));
            }
        }
        bad
    }

    /// Persists metadata (atomically) and optionally fsyncs the data file.
    ///
    /// The commit protocol: (1) barrier the data file; (2) serialize the
    /// metadata — with the epoch bumped — to `<path>.meta.tmp`, fsync it;
    /// (3) rename over `<path>.meta`. A crash before (3) leaves the old
    /// epoch; after (3), the new one. Only once (3) succeeds are extents
    /// freed since the previous commit handed to the allocator.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let injector = self.config.fault_injector.clone();
        match consult_sync(injector.as_deref(), SyncKind::Data) {
            SyncFault::Allow => {
                if self.config.fsync {
                    inner.file.sync_all()?;
                } else {
                    inner.file.flush()?;
                }
            }
            SyncFault::Drop => {}
            SyncFault::Fail => return Err(injected_error("data fsync failed").into()),
        }
        if inner.dirty_meta {
            match commit_meta(&meta_path(&self.path), &inner, injector.as_deref())? {
                CommitOutcome::Committed => {
                    inner.epoch += 1;
                    inner.dirty_meta = false;
                    let pending = std::mem::take(&mut inner.pending_free);
                    for (slot, class) in pending {
                        inner.free_lists[usize::from(class.raw())].push(slot);
                    }
                }
                CommitOutcome::Deferred => {}
            }
        }
        Ok(())
    }
}

/// Writes `bytes` at `offset`, consulting the fault injector first.
fn write_extent(
    file: &mut File,
    injector: Option<&dyn FaultInjector>,
    offset: u64,
    bytes: &[u8],
) -> Result<()> {
    let fault = injector
        .map(|i| i.before_write(WriteKind::Page, bytes.len()))
        .unwrap_or(WriteFault::Allow);
    match fault {
        WriteFault::Allow => {
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(bytes)?;
            Ok(())
        }
        WriteFault::Torn { keep } => {
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&bytes[..keep.min(bytes.len())])?;
            Err(injected_error("torn page write").into())
        }
        WriteFault::Fail => Err(injected_error("page write failed").into()),
    }
}

fn consult_sync(injector: Option<&dyn FaultInjector>, kind: SyncKind) -> SyncFault {
    injector
        .map(|i| i.before_sync(kind))
        .unwrap_or(SyncFault::Allow)
}

fn meta_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".meta");
    PathBuf::from(p)
}

struct Meta {
    directory: HashMap<PageId, PageLoc>,
    free_lists: Vec<Vec<u64>>,
    next_slot: u64,
    next_page_id: u64,
    epoch: u64,
    root: Option<PageId>,
}

fn serialize_meta(inner: &DiskInner, epoch: u64) -> Vec<u8> {
    use crate::serialize::ByteWriter;
    let mut w = ByteWriter::with_capacity(96 + inner.directory.len() * 17);
    w.put_u32(META_MAGIC);
    w.put_u32(META_VERSION);
    w.put_u64(epoch);
    w.put_u64(inner.root.map(PageId::raw).unwrap_or(NO_ROOT));
    w.put_u64(inner.next_slot);
    w.put_u64(inner.next_page_id);
    w.put_u64(inner.directory.len() as u64);
    let mut entries: Vec<_> = inner.directory.iter().collect();
    entries.sort_by_key(|(id, _)| **id);
    for (id, loc) in entries {
        w.put_u64(id.raw());
        w.put_u64(loc.slot);
        w.put_u8(loc.size_class.raw());
    }
    // The pending frees are serialized as free: the same meta image removes
    // those pages from the directory, so "free extent" and "page gone"
    // become durable in the same atomic rename.
    w.put_u8(inner.free_lists.len() as u8);
    for (class, list) in inner.free_lists.iter().enumerate() {
        let pending = inner
            .pending_free
            .iter()
            .filter(|(_, c)| usize::from(c.raw()) == class);
        w.put_u64(list.len() as u64 + pending.clone().count() as u64);
        for &slot in list {
            w.put_u64(slot);
        }
        for (slot, _) in pending {
            w.put_u64(*slot);
        }
    }
    let digest = xxh64(w.as_bytes(), META_CHECKSUM_SEED);
    w.put_u64(digest);
    w.into_bytes()
}

fn commit_meta(
    path: &Path,
    inner: &DiskInner,
    injector: Option<&dyn FaultInjector>,
) -> Result<CommitOutcome> {
    let bytes = serialize_meta(inner, inner.epoch + 1);
    let tmp = path.with_extension("meta.tmp");
    let mut f = File::create(&tmp)?;
    let fault = injector
        .map(|i| i.before_write(WriteKind::Meta, bytes.len()))
        .unwrap_or(WriteFault::Allow);
    match fault {
        WriteFault::Allow => f.write_all(&bytes)?,
        WriteFault::Torn { keep } => {
            f.write_all(&bytes[..keep.min(bytes.len())])?;
            let _ = f.sync_all();
            return Err(injected_error("torn meta write").into());
        }
        WriteFault::Fail => return Err(injected_error("meta write failed").into()),
    }
    f.sync_all()?;
    drop(f);
    match consult_sync(injector, SyncKind::MetaCommit) {
        SyncFault::Allow => {}
        SyncFault::Drop => return Ok(CommitOutcome::Deferred),
        SyncFault::Fail => return Err(injected_error("meta commit failed").into()),
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable: fsync the containing directory.
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(CommitOutcome::Committed)
}

fn read_meta(path: &Path) -> Result<Meta> {
    use crate::serialize::ByteReader;
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(StorageError::BadMeta(format!(
            "metadata file truncated to {} bytes",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let actual = xxh64(body, META_CHECKSUM_SEED);
    if stored != actual {
        return Err(StorageError::BadMeta(format!(
            "metadata checksum mismatch (torn or partial meta write?): \
             stored {stored:#x}, computed {actual:#x}"
        )));
    }
    let mut r = ByteReader::new(body);
    let magic = r.get_u32()?;
    if magic != META_MAGIC {
        return Err(StorageError::BadMeta(format!("bad magic {magic:#x}")));
    }
    let version = r.get_u32()?;
    if version != META_VERSION {
        return Err(StorageError::BadMeta(format!(
            "unsupported version {version}"
        )));
    }
    let epoch = r.get_u64()?;
    let root_raw = r.get_u64()?;
    let root = (root_raw != NO_ROOT).then_some(PageId(root_raw));
    let next_slot = r.get_u64()?;
    let next_page_id = r.get_u64()?;
    let n = r.get_u64()? as usize;
    let mut directory = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = PageId(r.get_u64()?);
        let slot = r.get_u64()?;
        let class = r.get_u8()?;
        let size_class = SizeClass::checked(class)
            .ok_or_else(|| StorageError::BadMeta(format!("bad size class {class}")))?;
        directory.insert(id, PageLoc { slot, size_class });
    }
    let lists = r.get_u8()? as usize;
    let mut free_lists = vec![Vec::new(); usize::from(MAX_SIZE_CLASS) + 1];
    for list in free_lists.iter_mut().take(lists) {
        let len = r.get_u64()? as usize;
        list.reserve(len);
        for _ in 0..len {
            list.push(r.get_u64()?);
        }
    }
    Ok(Meta {
        directory,
        free_lists,
        next_slot,
        next_page_id,
        epoch,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ScriptedFault;

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "segidx-disk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn page_with(id: PageId, class: SizeClass, payload: &[u8]) -> Page {
        let mut p = Page::new(id, class);
        p.set_payload(payload).unwrap();
        p
    }

    fn with_injector(f: Arc<ScriptedFault>) -> DiskManagerConfig {
        DiskManagerConfig {
            fault_injector: Some(f),
            ..DiskManagerConfig::default()
        }
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tempdir().join("rt.db");
        let dm = DiskManager::create(&path).unwrap();
        let id0 = dm.allocate(SizeClass::new(0)).unwrap();
        let id1 = dm.allocate(SizeClass::new(2)).unwrap();
        dm.write_page(&page_with(id0, SizeClass::new(0), b"leaf"))
            .unwrap();
        dm.write_page(&page_with(id1, SizeClass::new(2), b"root"))
            .unwrap();
        assert_eq!(dm.read_page(id0).unwrap().payload(), b"leaf");
        assert_eq!(dm.read_page(id1).unwrap().payload(), b"root");
        assert_eq!(dm.page_count(), 2);
        let snap = dm.stats().snapshot();
        assert_eq!(snap.allocations, 2);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 2);
    }

    #[test]
    fn variable_sizes_do_not_overlap() {
        let path = tempdir().join("sizes.db");
        let dm = DiskManager::create(&path).unwrap();
        let ids: Vec<_> = (0..20)
            .map(|i| {
                let class = SizeClass::new((i % 4) as u8);
                let id = dm.allocate(class).unwrap();
                let payload = vec![i as u8; class.payload_capacity() / 2];
                dm.write_page(&page_with(id, class, &payload)).unwrap();
                (id, class, payload)
            })
            .collect();
        for (id, _, payload) in &ids {
            assert_eq!(dm.read_page(*id).unwrap().payload(), payload.as_slice());
        }
    }

    #[test]
    fn free_recycles_extents_after_commit() {
        let path = tempdir().join("free.db");
        let dm = DiskManager::create(&path).unwrap();
        let a = dm.allocate(SizeClass::new(1)).unwrap();
        let before = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        dm.free(a).unwrap();
        // The free is not durable yet: the extent must NOT be recycled.
        let b = dm.allocate(SizeClass::new(1)).unwrap();
        assert_ne!(a, b, "page ids are never reused");
        let grown = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        assert!(
            grown > before,
            "uncommitted free must not recycle the extent"
        );
        // After a durable commit the extent becomes recyclable.
        dm.sync().unwrap();
        let c = dm.allocate(SizeClass::new(1)).unwrap();
        let after = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        assert_eq!(grown, after, "extent recycled after the commit");
        assert_ne!(b, c);
        assert!(matches!(
            dm.read_page(a),
            Err(StorageError::PageNotFound(_))
        ));
    }

    #[test]
    fn persist_and_reopen() {
        let path = tempdir().join("reopen.db");
        let (id0, id1);
        {
            let dm = DiskManager::create(&path).unwrap();
            id0 = dm.allocate(SizeClass::new(0)).unwrap();
            id1 = dm.allocate(SizeClass::new(3)).unwrap();
            dm.write_page(&page_with(id0, SizeClass::new(0), b"persisted-leaf"))
                .unwrap();
            dm.write_page(&page_with(id1, SizeClass::new(3), b"persisted-root"))
                .unwrap();
            dm.set_root(Some(id1));
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 2);
        assert_eq!(dm.read_page(id0).unwrap().payload(), b"persisted-leaf");
        assert_eq!(dm.read_page(id1).unwrap().payload(), b"persisted-root");
        assert_eq!(dm.size_class_of(id1).unwrap(), SizeClass::new(3));
        assert_eq!(dm.root(), Some(id1), "root pointer survives reopen");
        // Allocation continues after the persisted cursor.
        let id2 = dm.allocate(SizeClass::new(0)).unwrap();
        assert!(id2 > id1);
    }

    #[test]
    fn epoch_increases_per_commit_and_survives_reopen() {
        let path = tempdir().join("epoch.db");
        let e1;
        {
            let dm = DiskManager::create(&path).unwrap();
            e1 = dm.epoch();
            assert!(e1 >= 1, "creation commits an initial epoch");
            let id = dm.allocate(SizeClass::new(0)).unwrap();
            dm.write_page(&page_with(id, SizeClass::new(0), b"x"))
                .unwrap();
            dm.sync().unwrap();
            assert_eq!(dm.epoch(), e1 + 1);
            // A clean sync (nothing dirty) does not bump the epoch.
            dm.sync().unwrap();
            assert_eq!(dm.epoch(), e1 + 1);
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.epoch(), e1 + 1, "epoch survives reopen");
    }

    #[test]
    fn size_class_mismatch_on_write_rejected() {
        let path = tempdir().join("mismatch.db");
        let dm = DiskManager::create(&path).unwrap();
        let id = dm.allocate(SizeClass::new(0)).unwrap();
        let err = dm
            .write_page(&page_with(id, SizeClass::new(1), b"x"))
            .unwrap_err();
        assert!(err.to_string().contains("size class"));
    }

    #[test]
    fn unknown_page_errors() {
        let path = tempdir().join("unknown.db");
        let dm = DiskManager::create(&path).unwrap();
        assert!(matches!(
            dm.read_page(PageId(99)),
            Err(StorageError::PageNotFound(PageId(99)))
        ));
        assert!(dm.free(PageId(99)).is_err());
    }

    #[test]
    fn compact_reclaims_space_and_preserves_pages() {
        let path = tempdir().join("compact.db");
        let dm = DiskManager::create(&path).unwrap();
        // Interleave allocations of different sizes, then free every other
        // page to fragment the file.
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for i in 0..40u8 {
            let class = SizeClass::new(i % 3);
            let id = dm.allocate(class).unwrap();
            dm.write_page(&page_with(id, class, &[i; 200])).unwrap();
            if i % 2 == 0 {
                live.push((id, class, [i; 200]));
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            dm.free(id).unwrap();
        }
        let reclaimed = dm.compact().unwrap();
        assert!(reclaimed > 0, "fragmented file must shrink");
        // File size equals the sum of live extents.
        let live_bytes: u64 = live.iter().map(|(_, c, _)| c.page_size() as u64).sum();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), live_bytes);
        // Every live page still reads back intact…
        for (id, _, payload) in &live {
            assert_eq!(dm.read_page(*id).unwrap().payload(), &payload[..]);
        }
        assert!(dm.verify_all().is_empty());
        // …and survives a reopen.
        dm.sync().unwrap();
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        for (id, _, payload) in &live {
            assert_eq!(dm.read_page(*id).unwrap().payload(), &payload[..]);
        }
        // New allocations extend past the compacted end, damaging nothing.
        let id = dm.allocate(SizeClass::new(2)).unwrap();
        dm.write_page(&page_with(id, SizeClass::new(2), b"post-compact"))
            .unwrap();
        assert!(dm.verify_all().is_empty());
    }

    #[test]
    fn compact_empty_and_unfragmented_files() {
        let dm = DiskManager::create(tempdir().join("compact-empty.db")).unwrap();
        assert_eq!(dm.compact().unwrap(), 0);
        let a = dm.allocate(SizeClass::new(0)).unwrap();
        dm.write_page(&page_with(a, SizeClass::new(0), b"x"))
            .unwrap();
        assert_eq!(dm.compact().unwrap(), 0, "contiguous file: nothing to do");
        assert_eq!(dm.read_page(a).unwrap().payload(), b"x");
    }

    #[test]
    fn meta_free_lists_survive_reopen() {
        let path = tempdir().join("freelists.db");
        {
            let dm = DiskManager::create(&path).unwrap();
            let a = dm.allocate(SizeClass::new(2)).unwrap();
            let _b = dm.allocate(SizeClass::new(2)).unwrap();
            dm.free(a).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        let inner_next = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        let _c = dm.allocate(SizeClass::new(2)).unwrap();
        let after = {
            let inner = dm.inner.lock();
            inner.next_slot
        };
        assert_eq!(inner_next, after, "free list used after reopen");
    }

    #[test]
    fn corrupted_meta_file_rejected_typed() {
        let path = tempdir().join("badmeta.db");
        {
            let dm = DiskManager::create(&path).unwrap();
            let id = dm.allocate(SizeClass::new(0)).unwrap();
            dm.write_page(&page_with(id, SizeClass::new(0), b"x"))
                .unwrap();
            dm.sync().unwrap();
        }
        let mp = meta_path(&path);
        let mut bytes = std::fs::read(&mp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&mp, &bytes).unwrap();
        let err = DiskManager::open(&path).unwrap_err();
        assert!(
            matches!(err, StorageError::BadMeta(_)),
            "corrupt meta must be typed: {err}"
        );
        // A truncated (torn) meta file is also typed, never a wrong parse.
        std::fs::write(&mp, &bytes[..mid]).unwrap();
        assert!(matches!(
            DiskManager::open(&path).unwrap_err(),
            StorageError::BadMeta(_)
        ));
    }

    #[test]
    fn torn_page_write_is_detected_on_read() {
        let path = tempdir().join("torn.db");
        // Write counter: #0 = create's meta image, #1 = page a, #2 = page b,
        // #3 = sync's meta image, #4 = the overwrite of b — torn at 100
        // bytes, so b's extent holds a new header + a prefix of the new
        // payload over the tail of the old one.
        let fault = Arc::new(ScriptedFault::power_cut(4, Some(100)));
        let dm = DiskManager::create_with(&path, with_injector(fault)).unwrap();
        let a = dm.allocate(SizeClass::new(0)).unwrap();
        let b = dm.allocate(SizeClass::new(0)).unwrap();
        dm.write_page(&page_with(a, SizeClass::new(0), &[7u8; 500]))
            .unwrap();
        dm.write_page(&page_with(b, SizeClass::new(0), &[9u8; 500]))
            .unwrap();
        dm.sync().unwrap(); // both pages durable in the directory
        let err = dm
            .write_page(&page_with(b, SizeClass::new(0), &[1u8; 500]))
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // Reading the torn page through a clean handle reports corruption —
        // never a partial payload and never the pre-tear contents.
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.read_page(a).unwrap().payload(), &[7u8; 500][..]);
        assert!(matches!(dm.read_page(b), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn dropped_meta_commit_defers_and_retries() {
        let path = tempdir().join("dropsync.db");
        // Barrier counter: sync #0 = create's (Data), #1 = create's
        // MetaCommit, #2 = our sync's Data, #3 = our sync's MetaCommit.
        let fault = Arc::new(ScriptedFault::drop_nth_sync(3));
        let dm = DiskManager::create_with(&path, with_injector(Arc::clone(&fault))).unwrap();
        let e0 = dm.epoch();
        let id = dm.allocate(SizeClass::new(0)).unwrap();
        dm.write_page(&page_with(id, SizeClass::new(0), b"x"))
            .unwrap();
        dm.sync().unwrap(); // meta commit silently dropped
        assert_eq!(dm.epoch(), e0, "dropped commit must not advance the epoch");
        // A crash here reopens at the old epoch: the page is not in the
        // durable directory.
        {
            let reopened = DiskManager::open(&path).unwrap();
            assert_eq!(reopened.epoch(), e0);
            assert!(reopened.read_page(id).is_err());
        }
        // The live handle retries the commit on the next sync.
        dm.sync().unwrap();
        assert_eq!(dm.epoch(), e0 + 1);
        let reopened = DiskManager::open(&path).unwrap();
        assert_eq!(reopened.read_page(id).unwrap().payload(), b"x");
    }

    #[test]
    fn open_repair_quarantines_corrupt_pages() {
        use segidx_obs::RingBufferSink;
        let path = tempdir().join("repair.db");
        let (good, bad);
        {
            let dm = DiskManager::create(&path).unwrap();
            good = dm.allocate(SizeClass::new(0)).unwrap();
            bad = dm.allocate(SizeClass::new(0)).unwrap();
            dm.write_page(&page_with(good, SizeClass::new(0), b"good"))
                .unwrap();
            dm.write_page(&page_with(bad, SizeClass::new(0), &[0xAB; 64]))
                .unwrap();
            dm.sync().unwrap();
        }
        // Corrupt the second page's stored payload on disk (offset 25 =
        // payload byte 5 of the 64-byte payload at slot 1).
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(BASE_PAGE_SIZE as u64 + 25)).unwrap();
            f.write_all(&[0xEE; 8]).unwrap();
        }
        let sink = Arc::new(RingBufferSink::new(8));
        let (dm, report) =
            DiskManager::open_repair(&path, DiskManagerConfig::default(), Some(sink.clone()))
                .unwrap();
        assert_eq!(report.pages_checked, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, bad);
        assert!(!report.is_clean());
        // The quarantined page is gone; the good one is intact.
        assert!(matches!(
            dm.read_page(bad),
            Err(StorageError::PageNotFound(_))
        ));
        assert_eq!(dm.read_page(good).unwrap().payload(), b"good");
        let events = sink.events_of(EventKind::PageQuarantined);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].node, bad.raw());
        // The quarantine becomes durable at the next sync.
        dm.sync().unwrap();
        drop(dm);
        let (_, report) =
            DiskManager::open_repair(&path, DiskManagerConfig::default(), None).unwrap();
        assert!(report.is_clean(), "quarantine persisted: second scan clean");
    }

    #[test]
    fn uncommitted_free_extent_never_reused_across_crash() {
        // The crash-consistency hazard pending frees exist to prevent:
        // free a committed page, recycle its extent before the free is
        // durable, tear a write into it, crash. The old directory still
        // maps the extent → the committed page would be corrupt.
        let path = tempdir().join("pending.db");
        let a;
        {
            let dm = DiskManager::create(&path).unwrap();
            a = dm.allocate(SizeClass::new(0)).unwrap();
            dm.write_page(&page_with(a, SizeClass::new(0), b"committed"))
                .unwrap();
            dm.sync().unwrap();
            // Free `a` but crash before the free commits; meanwhile write
            // a new page (which must NOT land in a's extent).
            dm.free(a).unwrap();
            let b = dm.allocate(SizeClass::new(0)).unwrap();
            dm.write_page(&page_with(b, SizeClass::new(0), b"newcomer"))
                .unwrap();
            // No sync: simulated crash.
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(
            dm.read_page(a).unwrap().payload(),
            b"committed",
            "page live at the last durable epoch must be intact"
        );
        assert!(dm.verify_all().is_empty());
    }
}
